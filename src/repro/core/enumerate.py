"""Exhaustive enumeration of legal single-iteration schedules (Figure 6).

The paper: "the algorithm is not a heuristic... Our applications have a
very small number of tasks.  Even if we include the various data parallel
options for any given task, we still have a manageable number of options.
Since the resulting schedule will be operating for months, we can afford to
evaluate all legal schedules and choose the best one."

This module implements that evaluation as a deterministic branch-and-bound
over

* all precedence-compatible task orders (i.e. every way of picking the next
  ready task),
* every data-parallel variant of every task, and
* every processor placement, canonicalized by two safe symmetry reductions:
  within a node the ``w`` earliest-free processors are chosen (an exchange
  argument shows this never loses an optimal active schedule), and nodes in
  identical resource states are interchangeable so only one representative
  is branched on.

Schedules are *active*: each task starts as early as its resources and its
predecessors (plus communication delay) allow.  The search prunes with a
critical-path lower bound and returns the exact minimal latency **L**
together with the set **S** of distinct optimal schedules (capped at
``max_solutions`` for memory; the total count is still reported).

Three accelerations keep the off-line phase affordable at scale, all of
them semantics-preserving (same L, same set S up to canonical order):

* **warm start** — the HEFT-style list scheduler
  (:mod:`repro.sched.listsched`) provides an incumbent upper bound before
  the search begins, so the lower-bound prune bites from node 1 instead of
  only after the first complete leaf;
* **transposition table** — different interleavings of independent tasks
  reach the *same* partial placement; each such state is explored once
  (the dominance cut keyed on the full canonicalized placement set is
  exact, so no member of S is lost);
* **hoisted inner loops** — candidate nodes, per-node processor orders and
  per-speed variant durations are computed once per ready-task expansion
  instead of once per placement attempt.

The search core (:func:`search_schedules`) operates on a pure-data
:class:`SearchProblem` snapshot in which every cost callable has already
been evaluated, so problems pickle cheaply for the process-pool fan-out in
:mod:`repro.core.parallel` and digest stably for the on-disk cache in
:mod:`repro.core.cache`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.errors import InfeasibleSchedule, ReproError, ScheduleError
from repro.core.schedule import IterationSchedule, Placement
from repro.graph.task import Variant
from repro.graph.taskgraph import TaskGraph
from repro.sim.cluster import ClusterSpec
from repro.sim.network import CommModel
from repro.state import State

__all__ = [
    "EnumerationResult",
    "SearchProblem",
    "enumerate_schedules",
    "search_schedules",
    "static_lower_bound",
    "warm_incumbent",
]

_EPS = 1e-9
# Relative inflation applied to the warm-start incumbent before it is used
# as a pruning bound: the list scheduler accumulates the same schedule's
# finish times in a different order, so its float latency can sit a few
# ulps below what the search arithmetic would compute for that schedule.
_INCUMBENT_MARGIN = 1e-12


@dataclass
class EnumerationResult:
    """Outcome of :func:`enumerate_schedules`.

    Attributes
    ----------
    latency:
        The minimal single-iteration latency L.
    schedules:
        Distinct optimal :class:`IterationSchedule` objects (the set S),
        capped at the requested maximum.
    optimal_count:
        Total number of distinct optimal schedules found (>= len(schedules)).
    explored:
        Branch-and-bound nodes visited — a cost diagnostic.
    state:
        The application state the enumeration was run for.
    elapsed_s:
        Wall-clock seconds the search took.
    pruned_bound:
        Subtrees cut by the critical-path lower bound (including the
        warm-start incumbent bound).
    pruned_dominance:
        Subtrees cut by the transposition table (identical partial
        placements reached through a different task interleaving).
    lower_bound:
        Certified lower bound on the true optimum L*.  An exact search
        proves ``lower_bound == latency``; a bounded search
        (``bound_inflation`` > 0) proves ``L* >= lower_bound`` from the
        ε-pruning argument, so ``latency / lower_bound - 1`` bounds the
        realized optimality gap.
    root_bound:
        The static critical-path/load bound at the search root
        (:func:`static_lower_bound`) — independently re-derivable by the
        analyzer, which is what makes the gap claim checkable.
    bound_inflation:
        The ε the search ran with (0.0 = exact).
    """

    latency: float
    schedules: list[IterationSchedule]
    optimal_count: int
    explored: int
    state: State
    elapsed_s: float = 0.0
    pruned_bound: int = 0
    pruned_dominance: int = 0
    lower_bound: float = 0.0
    root_bound: float = 0.0
    bound_inflation: float = 0.0

    @property
    def pruned(self) -> int:
        """Total subtrees cut (bound + dominance)."""
        return self.pruned_bound + self.pruned_dominance

    @property
    def best(self) -> IterationSchedule:
        """A canonical representative of S (first in deterministic order)."""
        if not self.schedules:
            raise InfeasibleSchedule("enumeration produced no schedule")
        return self.schedules[0]


@dataclass
class SearchProblem:
    """A pure-data snapshot of one (graph, state) scheduling problem.

    Everything :func:`search_schedules` needs, with every cost callable
    already evaluated: task order, per-task variants, precedence, and
    per-edge byte counts.  The object is picklable (it carries no
    callables), so it can be shipped to worker processes
    (:mod:`repro.core.parallel`) and digested into a stable cache key
    (:mod:`repro.core.cache`).
    """

    graph_name: str
    order_names: tuple[str, ...]
    variants: dict[str, tuple[Variant, ...]]
    preds: dict[str, tuple[str, ...]]
    succs: dict[str, tuple[str, ...]]
    edge_bytes: dict[tuple[str, str], int]

    @classmethod
    def from_graph(
        cls, graph: TaskGraph, state: State, max_workers: Optional[int] = None
    ) -> "SearchProblem":
        """Evaluate all costs of ``graph`` under ``state`` into a snapshot.

        ``max_workers`` caps the data-parallel variants materialized; pass
        the resolved cap (callers default it to the cluster's
        processors-per-node, where data-parallel placements must fit).
        """
        graph.validate()
        order = tuple(graph.topo_order())
        variants = {
            name: tuple(graph.task(name).variants(state, max_workers=max_workers))
            for name in order
        }
        preds = {name: tuple(graph.predecessors(name)) for name in order}
        succs = {name: tuple(graph.successors(name)) for name in order}
        edge_bytes = {
            (p, name): graph.comm_bytes(p, name, state)
            for name in order
            for p in preds[name]
        }
        return cls(
            graph_name=graph.name,
            order_names=order,
            variants=variants,
            preds=preds,
            succs=succs,
            edge_bytes=edge_bytes,
        )

    def digest_payload(self) -> dict:
        """A JSON-safe, content-only description used for cache keys.

        Deliberately excludes the graph *name*: two graphs with identical
        structure and costs are the same scheduling problem.
        """
        return {
            "tasks": [
                {
                    "name": name,
                    "preds": list(self.preds[name]),
                    "variants": [
                        [v.workers, v.duration, v.label, v.chunks]
                        for v in self.variants[name]
                    ],
                }
                for name in self.order_names
            ],
            "edges": sorted(
                [src, dst, nbytes] for (src, dst), nbytes in self.edge_bytes.items()
            ),
        }


def static_lower_bound(problem: SearchProblem, cluster: ClusterSpec) -> float:
    """Admissible root bound on L* for ``problem`` on ``cluster``.

    The empty-placement specialization of the search's internal bound,
    exposed so certificates can be re-derived independently of any search
    artifact (rule ``S013``): the maximum of

    * the **critical path** — longest chain of fastest-variant durations,
      divided by the fastest node speed (admissible on heterogeneous
      clusters), communication priced at zero (admissible always); and
    * the **load** — minimal total processor-time of all tasks spread
      over every processor, ``sum(min workers x duration) / P``.

    Deterministic, O(V + E), and a function of content only — two calls
    with equal :meth:`SearchProblem.digest_payload` and equal cluster
    shapes return bit-identical bounds.
    """
    if not problem.order_names:
        return 0.0
    fastest = max(cluster.node_speeds)
    best_dur = {
        name: min(v.duration for v in vs) / fastest
        for name, vs in problem.variants.items()
    }
    rem_cp: dict[str, float] = {}
    for name in reversed(problem.order_names):
        tail = max((rem_cp[s] for s in problem.succs[name]), default=0.0)
        rem_cp[name] = best_dur[name] + tail
    bound = 0.0
    est: dict[str, float] = {}
    for name in problem.order_names:
        start = max(
            (est[p] + best_dur[p] for p in problem.preds[name]), default=0.0
        )
        est[name] = start
        path = start + rem_cp[name]
        if path > bound:
            bound = path
    load = (
        sum(
            min(v.workers * v.duration for v in vs)
            for vs in problem.variants.values()
        )
        / fastest
        / cluster.total_processors
    )
    return bound if bound >= load else load


def warm_incumbent(
    graph: TaskGraph,
    state: State,
    cluster: ClusterSpec,
    comm: Optional[CommModel] = None,
    max_workers: Optional[int] = None,
) -> Optional[float]:
    """Latency of the HEFT-style list schedule — an upper bound on L.

    Returns ``None`` when the heuristic cannot produce a legal schedule;
    the search then simply starts cold.
    """
    from repro.sched.listsched import list_schedule  # deferred: avoids import cycle

    try:
        return list_schedule(
            graph, state, cluster, comm=comm, max_workers=max_workers
        ).latency
    except (ReproError, AssertionError):
        return None


def enumerate_schedules(
    graph: TaskGraph,
    state: State,
    cluster: ClusterSpec,
    comm: Optional[CommModel] = None,
    max_workers: Optional[int] = None,
    max_solutions: int = 64,
    node_limit: int = 2_000_000,
    tolerance: float = 1e-9,
    latency_slack: float = 0.0,
    warm_start: bool = True,
    dominance: bool = True,
    bound_inflation: float = 0.0,
) -> EnumerationResult:
    """Compute L and S for one application state.

    Parameters
    ----------
    graph:
        The validated macro-dataflow graph.
    state:
        Application state (fixes every cost).
    cluster:
        Nodes x processors (Figure 6's platform input).
    comm:
        Communication cost model; ``None`` means free communication.
    max_workers:
        Cap on data-parallel width (defaults to processors per node —
        data-parallel variants are placed within one node, where the
        splitter/worker channels live in shared memory).
    max_solutions:
        Cap on how many members of S are materialized.
    node_limit:
        Safety valve on branch-and-bound nodes; exceeding it raises
        :class:`~repro.errors.ScheduleError` rather than silently
        truncating the search.
    tolerance:
        Latency equality tolerance for membership in S.
    latency_slack:
        Relative slack for set membership: schedules with latency up to
        ``(1 + latency_slack) * L`` are collected (0.0 = exactly the
        paper's S).  Used by the latency/throughput frontier
        (:mod:`repro.core.frontier`) to trade latency for initiation
        interval the way [13] (Subhlok & Vondran) explores.
    warm_start:
        Seed the search with the list scheduler's latency as an incumbent
        upper bound.  Never changes L or S — only how much of the tree is
        visited.
    dominance:
        Enable the transposition table.  Exact with respect to L and the
        full set S; when |S| exceeds ``max_solutions`` the *materialized
        subset* may differ from a cold run (both runs materialize some
        ``max_solutions``-sized subset of the same S).
    bound_inflation:
        ε for bounded-suboptimality search (weighted branch-and-bound):
        subtrees are pruned when ``lower_bound * (1 + ε)`` exceeds the
        cutoff, and the search stops early once the incumbent is within
        ``(1 + ε)`` of the root bound.  The returned latency is certified
        within ``(1 + ε)`` of the true optimum L* (see
        :attr:`EnumerationResult.lower_bound`).  ``0.0`` (the default) is
        the exact search, bit-for-bit.
    """
    dp_cap = max_workers if max_workers is not None else cluster.procs_per_node
    problem = SearchProblem.from_graph(graph, state, max_workers=dp_cap)
    incumbent = None
    if warm_start and problem.order_names:
        incumbent = warm_incumbent(graph, state, cluster, comm=comm, max_workers=dp_cap)
    return search_schedules(
        problem,
        state,
        cluster,
        comm,
        max_solutions=max_solutions,
        node_limit=node_limit,
        tolerance=tolerance,
        latency_slack=latency_slack,
        incumbent=incumbent,
        dominance=dominance,
        bound_inflation=bound_inflation,
    )


class _EarlyStop(Exception):
    """Internal: bounded search proved its incumbent within (1+ε) of L*."""


def search_schedules(
    problem: SearchProblem,
    state: State,
    cluster: ClusterSpec,
    comm: Optional[CommModel] = None,
    *,
    max_solutions: int = 64,
    node_limit: int = 2_000_000,
    tolerance: float = 1e-9,
    latency_slack: float = 0.0,
    incumbent: Optional[float] = None,
    dominance: bool = True,
    bound_inflation: float = 0.0,
) -> EnumerationResult:
    """The branch-and-bound core, operating on a :class:`SearchProblem`.

    ``incumbent`` is an optional upper bound on L (a legal schedule's
    latency); it tightens pruning from the first node without affecting
    which schedules are ultimately collected.

    ``bound_inflation`` (ε > 0) turns the search into weighted
    branch-and-bound: every admissible lower bound is multiplied by
    ``1 + ε`` before the prune comparison.  A pruned subtree therefore
    proves ``lb > cutoff / (1 + ε)``, and since every cutoff the search
    ever uses is at least the final incumbent U, the true optimum
    satisfies ``L* > U / (1 + ε)`` whenever it was pruned away — i.e.
    ``U <= (1 + ε) L*``.  The search additionally stops at the first
    incumbent within ``(1 + ε)`` of the static root bound (the guarantee
    already holds; the rest of the tree cannot strengthen it).  At
    ε = 0 every comparison multiplies by exactly 1.0 and the early stop
    is disabled, so the search is bit-identical to the exact one.
    """
    if bound_inflation < 0.0:
        raise ScheduleError(
            f"bound_inflation must be >= 0, got {bound_inflation}"
        )
    t0 = time.perf_counter()
    order_names = problem.order_names
    if not order_names:
        return EnumerationResult(
            0.0,
            [IterationSchedule([], name="empty")],
            1,
            0,
            state,
            elapsed_s=time.perf_counter() - t0,
            bound_inflation=bound_inflation,
        )

    P = cluster.total_processors
    variants = problem.variants
    preds = problem.preds
    succs = problem.succs
    edge_bytes = problem.edge_bytes

    # Remaining-critical-path lower bound.  Durations in the bound are
    # divided by the fastest node speed so the bound stays admissible on
    # heterogeneous clusters.
    fastest = max(cluster.node_speeds)
    best_dur = {
        name: min(v.duration for v in vs) / fastest for name, vs in variants.items()
    }
    rem_cp: dict[str, float] = {}
    for name in reversed(order_names):
        tail = max((rem_cp[s] for s in succs[name]), default=0.0)
        rem_cp[name] = best_dur[name] + tail
    # Minimal processor-time a task can occupy (workers x wall time), for
    # the load half of the lower bound.  A w-wide variant holds w
    # processors for duration/speed wall seconds, so its work is at least
    # w * duration / fastest.
    min_work = {
        name: min(v.workers * v.duration for v in vs) / fastest
        for name, vs in variants.items()
    }

    # Communication helper (primary-processor to primary-processor).
    if comm is None:
        comm = CommModel.free(cluster)
    transfer_time = comm.transfer_time

    # Search state.
    free = [0.0] * P
    sum_free = [0.0]
    rem_work = [sum(min_work.values())]
    placed: dict[str, Placement] = {}
    n_unscheduled_preds = {name: len(preds[name]) for name in order_names}
    ready = sorted(n for n in order_names if n_unscheduled_preds[n] == 0)

    best_latency = [float("inf")]
    solutions: dict[tuple, tuple[float, IterationSchedule]] = {}
    optimal_count = [0]
    explored = [0]
    pruned_bound = [0]
    pruned_dominance = [0]

    nodes = cluster.nodes
    node_procs = [[p.index for p in cluster.node_processors(n)] for n in range(nodes)]
    node_proc_sets = [frozenset(ps) for ps in node_procs]
    node_speed = cluster.node_speeds
    procs_per_node = cluster.procs_per_node

    # Variant durations pre-resolved per node speed, and node-unplaceable
    # variants dropped once — both hoisted out of the placement loop.
    var_durs = {
        name: tuple(
            (v, tuple(v.duration / node_speed[n] for n in range(nodes)))
            for v in vs
            if v.workers <= procs_per_node
        )
        for name, vs in variants.items()
    }

    slack_factor = 1.0 + latency_slack
    # Weighted branch-and-bound: bounds are inflated by (1 + ε) before
    # every prune comparison.  At ε = 0 the factor is exactly 1.0 and
    # float multiplication by 1.0 is the identity, so the exact search
    # path is untouched bit for bit.
    infl = 1.0 + bound_inflation
    root_bound = static_lower_bound(problem, cluster)
    # Early cutoff (bounded mode only): an incumbent at or below
    # root_bound * (1 + ε) is already certified within ε of L*.
    stop_bound = (
        root_bound * infl + tolerance if bound_inflation > 0.0 else None
    )
    if incumbent is not None:
        inc_cutoff = (
            incumbent * (1.0 + _INCUMBENT_MARGIN) + _INCUMBENT_MARGIN
        ) * slack_factor + tolerance
    else:
        inc_cutoff = float("inf")

    # Transposition table: canonical signatures of partial placements
    # already expanded.  A partial placement set fully determines the
    # remaining subproblem (free times and ready sets are derivable from
    # it), so a repeat visit is an identical subtree.
    seen_states: set[frozenset] = set()
    placed_sig: dict[str, tuple] = {}

    def admit_threshold() -> float:
        """Latency below which a finished schedule joins the solution set."""
        return best_latency[0] * slack_factor + tolerance

    def prune_cutoff() -> float:
        """Bound for subtree pruning: best-so-far or the warm incumbent."""
        cut = best_latency[0] * slack_factor + tolerance
        return cut if cut < inc_cutoff else inc_cutoff

    def record_solution() -> None:
        lat = max(p.end for p in placed.values())
        if lat < best_latency[0] - tolerance:
            best_latency[0] = lat
            # Tightened threshold may evict previously admitted schedules.
            cutoff = admit_threshold()
            for key in [k for k, (l, _) in solutions.items() if l > cutoff]:
                del solutions[key]
            optimal_count[0] = sum(
                1 for l, _ in solutions.values() if l <= best_latency[0] + tolerance
            )
        if lat <= admit_threshold():
            sched = IterationSchedule(placed.values(), name=f"opt[{len(solutions)}]")
            key = sched.canonical_key()
            if key not in solutions:
                if lat <= best_latency[0] + tolerance:
                    optimal_count[0] += 1
                if len(solutions) < max_solutions:
                    solutions[key] = (lat, sched)
        if stop_bound is not None and best_latency[0] <= stop_bound:
            raise _EarlyStop

    def lower_bound(current_max_end: float) -> float:
        """Admissible bound on the best completed latency below this node.

        Two halves, both exact lower bounds:

        * **critical path** — earliest-start estimates propagated through
          every unplaced task (placed predecessors contribute their actual
          finish, unplaced ones their fastest duration), plus the task's
          remaining chain;
        * **load** — all remaining work lands after each processor's
          current free time, so ``P * latency >= sum(free) + remaining
          minimal work``.
        """
        lb = current_max_end
        est_b: dict[str, float] = {}
        for name in order_names:
            if name in placed:
                continue
            est = 0.0
            for p in preds[name]:
                pl = placed.get(p)
                if pl is not None:
                    if pl.end > est:
                        est = pl.end
                else:
                    cand = est_b[p] + best_dur[p]
                    if cand > est:
                        est = cand
            est_b[name] = est
            path = est + rem_cp[name]
            if path > lb:
                lb = path
        if rem_work[0] > 0.0:
            load = (sum_free[0] + rem_work[0]) / P
            if load > lb:
                lb = load
        return lb

    def candidate_nodes() -> list[int]:
        """One representative node per identical (free-times, speed) class."""
        seen: set[tuple] = set()
        out: list[int] = []
        for n in range(nodes):
            key = (tuple(sorted(free[p] for p in node_procs[n])), node_speed[n])
            if key not in seen:
                seen.add(key)
                out.append(n)
        return out

    def place_and_recurse(name: str, ready_rest: list[str]) -> None:
        data_ready_base = [(p, placed[p].end, placed[p].primary) for p in preds[name]]
        pred_primaries = sorted({pprimary for _, _, pprimary in data_ready_base})
        rem = rem_cp[name]
        # Loop-invariant across variants and placement choices: the free
        # profile only changes inside deeper recursion (and is restored),
        # so candidate nodes and per-node processor orders are computed
        # once per ready-task expansion.
        cand_nodes = candidate_nodes()
        sorted_procs = {
            node: sorted(node_procs[node], key=lambda p: (free[p], p))
            for node in cand_nodes
        }
        for var, durs in var_durs[name]:
            w = var.workers
            for node in cand_nodes:
                procs_here = sorted_procs[node]
                if w > len(procs_here):
                    continue
                # Candidate processor sets for this node: the w earliest-free
                # processors (optimal when communication is tier-uniform),
                # plus — for serial placements — each predecessor's own
                # processor, where the transfer is free (the same-proc tier
                # can beat earlier availability under expensive intra-node
                # communication).
                choices = [tuple(procs_here[:w])]
                if w == 1:
                    for pp in pred_primaries:
                        if pp in node_proc_sets[node] and (pp,) not in choices:
                            choices.append((pp,))
                dur = durs[node]
                for chosen in choices:
                    _try_placement(name, var, dur, chosen, data_ready_base,
                                   ready_rest, rem)

    def _try_placement(name, var, dur, chosen, data_ready_base, ready_rest, rem):
        primary = chosen[0]
        est = max((free[p] for p in chosen), default=0.0)
        for pred, pend, pprimary in data_ready_base:
            delay = transfer_time(edge_bytes[(pred, name)], pprimary, primary)
            est = max(est, pend + delay)
        cutoff = prune_cutoff()
        # Lower bound, part 1: this task's own remaining chain from est.
        if (est + rem) * infl > cutoff:
            pruned_bound[0] += 1
            return
        end = est + dur
        saved = [free[p] for p in chosen]
        # Lower bound, part 2 (load): committing this placement raises each
        # chosen processor's free time to `end`; all remaining work can only
        # land after the free times, so P * latency >= sum(free) + the
        # minimal processor-time of the still-unplaced tasks.  This is what
        # prices out inefficient data-parallel variants and idle-inducing
        # placements early.
        new_sum = sum_free[0] - sum(saved) + end * len(chosen)
        new_rem = rem_work[0] - min_work[name]
        if (new_sum + new_rem) / P * infl > cutoff:
            pruned_bound[0] += 1
            return
        placement = Placement(name, chosen, est, dur, variant=var.label)
        old_sum, old_rem = sum_free[0], rem_work[0]
        for p in chosen:
            free[p] = end
        sum_free[0] = new_sum
        rem_work[0] = new_rem
        placed[name] = placement
        placed_sig[name] = (name, chosen, round(est, 12), round(dur, 12), var.label)
        newly_ready = []
        for s in succs[name]:
            n_unscheduled_preds[s] -= 1
            if n_unscheduled_preds[s] == 0:
                newly_ready.append(s)
        next_ready = sorted(ready_rest + newly_ready)
        recurse(next_ready)
        for s in succs[name]:
            n_unscheduled_preds[s] += 1
        del placed[name]
        del placed_sig[name]
        for p, t in zip(chosen, saved):
            free[p] = t
        sum_free[0], rem_work[0] = old_sum, old_rem

    def recurse(ready_now: list[str]) -> None:
        explored[0] += 1
        if explored[0] > node_limit:
            raise ScheduleError(
                f"enumeration exceeded node_limit={node_limit}; "
                "reduce variants or raise the limit"
            )
        if dominance and placed_sig:
            sig = frozenset(placed_sig.values())
            if sig in seen_states:
                pruned_dominance[0] += 1
                return
            seen_states.add(sig)
        if not ready_now:
            if len(placed) == len(order_names):
                record_solution()
            return
        current_max = max((pl.end for pl in placed.values()), default=0.0)
        if lower_bound(current_max) * infl > prune_cutoff():
            pruned_bound[0] += 1
            return
        for i, name in enumerate(ready_now):
            place_and_recurse(name, ready_now[:i] + ready_now[i + 1 :])

    try:
        recurse(ready)
    except _EarlyStop:
        pass
    if not solutions:
        raise InfeasibleSchedule(
            f"no legal schedule for graph {problem.graph_name!r} on {cluster!r}"
        )
    ranked = sorted(solutions.values(), key=lambda pair: (pair[0], pair[1].canonical_key()))
    ordered = [
        IterationSchedule(s.placements, name=f"opt[{i}]")
        for i, (_lat, s) in enumerate(ranked)
    ]
    # Certified lower bound on L*: an exact search proves its own latency
    # optimal; a bounded one proves L* > U / (1 + ε) by the pruning
    # argument above (never weaker than the static root bound).
    if bound_inflation > 0.0:
        cert_lb = max(root_bound, best_latency[0] / infl)
    else:
        cert_lb = best_latency[0]
    return EnumerationResult(
        latency=best_latency[0],
        schedules=ordered,
        optimal_count=optimal_count[0],
        explored=explored[0],
        state=state,
        elapsed_s=time.perf_counter() - t0,
        pruned_bound=pruned_bound[0],
        pruned_dominance=pruned_dominance[0],
        lower_bound=cert_lb,
        root_bound=root_bound,
        bound_inflation=bound_inflation,
    )
