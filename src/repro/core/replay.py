"""Replaying a schedule's *structure* under a different application state.

The regime experiments need to answer: what happens if the runtime keeps
using the schedule pre-computed for state *k* while the application is
actually in state *m*?  The schedule's structure — which task runs on
which processors, in which order, with which data-parallel variant — is
fixed; only the durations change.  :func:`replay_with_state` recomputes
the start times of that fixed structure under the new durations (list
execution semantics: every placement starts as soon as its processors are
free and its predecessors are done), yielding the latency the mismatched
schedule actually delivers.

This is also the machinery behind the interpolation ablation (§2.1: "a
seemingly small state change could alter scheduling strategy
dramatically"): interpolating = replaying a neighbouring state's schedule.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.errors import ScheduleError
from repro.core.pipeline import best_pipelined
from repro.core.schedule import IterationSchedule, PipelinedSchedule, Placement
from repro.graph.taskgraph import TaskGraph
from repro.sim.cluster import ClusterSpec
from repro.sim.network import CommModel
from repro.state import State

__all__ = ["variant_duration", "replay_with_state", "replay_pipelined"]

_DP_RE = re.compile(r"^dp(\d+)$")


def variant_duration(graph: TaskGraph, task_name: str, variant: str, state: State) -> float:
    """Duration of a named variant of a task in a given state."""
    task = graph.task(task_name)
    if variant == "serial":
        return task.cost(state)
    m = _DP_RE.match(variant)
    if m:
        if task.data_parallel is None:
            raise ScheduleError(
                f"schedule uses variant {variant!r} but task {task_name!r} "
                "has no data-parallel spec"
            )
        return task.data_parallel.duration(task, state, int(m.group(1)))
    raise ScheduleError(f"unknown variant label {variant!r} on task {task_name!r}")


def replay_with_state(
    iteration: IterationSchedule,
    graph: TaskGraph,
    state: State,
    comm: Optional[CommModel] = None,
) -> IterationSchedule:
    """Re-time a fixed schedule structure under new task durations.

    Placement order, processor assignments and variant choices are kept;
    start times are recomputed with list-execution semantics.  The result
    is a valid schedule for ``state`` (it is re-validated before being
    returned when a comm model is supplied).
    """
    free: dict[int, float] = {}
    done: dict[str, Placement] = {}
    new_placements: list[Placement] = []
    for pl in iteration.placements:  # already sorted by original start
        dur = variant_duration(graph, pl.task, pl.variant, state)
        est = max((free.get(p, 0.0) for p in pl.procs), default=0.0)
        for pred in graph.predecessors(pl.task):
            if pred not in done:
                raise ScheduleError(
                    f"replay: {pl.task!r} ordered before its predecessor {pred!r}"
                )
            delay = 0.0
            if comm is not None:
                delay = comm.transfer_time(
                    graph.comm_bytes(pred, pl.task, state),
                    done[pred].primary,
                    pl.procs[0],
                )
            est = max(est, done[pred].end + delay)
        new_pl = Placement(pl.task, pl.procs, est, dur, variant=pl.variant)
        new_placements.append(new_pl)
        done[pl.task] = new_pl
        for p in pl.procs:
            free[p] = new_pl.end
    replayed = IterationSchedule(new_placements, name=f"{iteration.name}@{state}")
    return replayed


def replay_pipelined(
    iteration: IterationSchedule,
    graph: TaskGraph,
    state: State,
    cluster: ClusterSpec,
    comm: Optional[CommModel] = None,
) -> PipelinedSchedule:
    """Replay a structure under ``state`` and re-pipeline it.

    The initiation interval is recomputed for the stretched pattern (the
    runtime must slow the digitizer to the new sustainable rate, or frames
    would back up exactly as in the saturated tuning-curve region).
    """
    replayed = replay_with_state(iteration, graph, state, comm)
    return best_pipelined(replayed, cluster, name=f"M[{replayed.name}]")
