"""The paper's contribution: optimal scheduling under constrained dynamism.

* :mod:`repro.core.schedule` — schedule data model: placements, single
  iteration schedules, and pipelined multi-iteration schedules.
* :mod:`repro.core.enumerate` — the Figure 6 algorithm's middle step:
  exhaustive (branch-and-bound) enumeration of legal single-iteration
  schedules over task orders, data-parallel variants and processor
  placements; returns the minimal latency L and the set S of schedules
  achieving it.
* :mod:`repro.core.pipeline` — software pipelining: the naive
  one-iteration-per-processor pipeline of Figure 4(b) and the minimal
  initiation-interval computation that turns a single-iteration schedule
  into the multi-iteration schedule M.
* :mod:`repro.core.optimal` — the full Figure 6 algorithm, front to back.
* :mod:`repro.core.regime` — on-line state detection with debouncing.
* :mod:`repro.core.table` — the per-state schedule table and the switcher
  that reacts to regime changes.
* :mod:`repro.core.transition` — schedule-transition policies and costs.

Extensions beyond the paper's core (each motivated by its text):

* :mod:`repro.core.replay` — re-time a schedule structure under a
  different state (what a stale schedule actually delivers).
* :mod:`repro.core.serialize` — persist schedules/tables as JSON (the
  off-line artifact that "will be operating for months").
* :mod:`repro.core.interpolate` — §2.1's interpolation alternative, for
  large/unknown state spaces.
* :mod:`repro.core.frontier` — the full latency/throughput trade-off
  curve (the related work's [13] question, answered with Figure 6
  machinery).
* :mod:`repro.core.sensitivity` — robustness of schedules to error in the
  measured execution times Figure 6 consumes.
* :mod:`repro.core.parallel` — batch fan-out of independent off-line
  solves over worker processes, with deterministic results.
* :mod:`repro.core.cache` — content-addressed on-disk cache of solved
  schedules, so unchanged states are never re-solved.
"""

from repro.core.schedule import Placement, IterationSchedule, PipelinedSchedule
from repro.core.enumerate import (
    enumerate_schedules,
    search_schedules,
    warm_incumbent,
    EnumerationResult,
    SearchProblem,
)
from repro.core.pipeline import (
    naive_pipeline,
    min_initiation_interval,
    best_pipelined,
)
from repro.core.optimal import OptimalScheduler, ScheduleSolution
from repro.core.regime import RegimeDetector, RegimeChange
from repro.core.table import ScheduleTable, RegimeSwitcher
from repro.core.transition import TransitionPolicy, DrainTransition, ImmediateTransition
from repro.core.replay import replay_with_state, replay_pipelined
from repro.core.frontier import (
    FrontierPoint,
    latency_throughput_frontier,
    frontier_sweep,
)
from repro.core.parallel import SolveRequest, make_request, solve_many
from repro.core.cache import CacheStats, ScheduleCache
from repro.core.sensitivity import sensitivity_profile, SensitivityProfile
from repro.core.interpolate import InterpolatingTable
from repro.core.serialize import table_to_json, table_from_json

__all__ = [
    "replay_with_state",
    "replay_pipelined",
    "FrontierPoint",
    "latency_throughput_frontier",
    "frontier_sweep",
    "SolveRequest",
    "make_request",
    "solve_many",
    "CacheStats",
    "ScheduleCache",
    "sensitivity_profile",
    "SensitivityProfile",
    "InterpolatingTable",
    "table_to_json",
    "table_from_json",
    "Placement",
    "IterationSchedule",
    "PipelinedSchedule",
    "enumerate_schedules",
    "search_schedules",
    "warm_incumbent",
    "EnumerationResult",
    "SearchProblem",
    "naive_pipeline",
    "min_initiation_interval",
    "best_pipelined",
    "OptimalScheduler",
    "ScheduleSolution",
    "RegimeDetector",
    "RegimeChange",
    "ScheduleTable",
    "RegimeSwitcher",
    "TransitionPolicy",
    "DrainTransition",
    "ImmediateTransition",
]
