"""Content-addressed on-disk cache for off-line schedule solutions.

The off-line phase re-runs constantly during development — a table build
after touching one task's cost model re-solves every state, a fault sweep
re-solves every shape.  Almost all of those solves are byte-identical to
a previous run.  This cache keys each solved request by a stable digest
of everything that determines its answer:

* the evaluated task costs under the state (the
  :meth:`~repro.core.enumerate.SearchProblem.digest_payload`),
* the cluster shape and node speeds,
* the communication model's tier costs,
* the solver parameters that affect the result set
  (``max_solutions``, ``tolerance``, ``latency_slack``,
  ``bound_inflation``, and — for ladder requests — the per-stage node
  budgets).

Deliberately *excluded* from the key: the graph's display name, the
warm-start incumbent and the dominance flag (both are proven
semantics-preserving — they change how fast the answer is found, never
the answer), and ``node_limit`` (a safety valve, not a result parameter).

Entries are one JSON file per digest, written atomically
(temp-file-then-rename), layered on :mod:`repro.core.serialize` for the
payload format.  A corrupt or truncated entry counts as an invalidation:
it is deleted and the solve re-runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.core.optimal import ScheduleSolution
from repro.core.parallel import SolveRequest

__all__ = [
    "CacheStats",
    "ScheduleCache",
    "default_cache_dir",
    "request_digest",
]

_CACHE_FORMAT = "repro.schedule_solution"
# Version 2: solutions carry gap certificates (repro.approx); the bump
# retires every certificate-less entry written by older builds.
_CACHE_VERSION = 2

#: Request modes whose results are cacheable.  ``"solve"`` and ``"list"``
#: are both deterministic functions of the digested content;
#: ``"enumerate"`` results carry the full set S, which the materialization
#: cap makes run-configuration dependent.
_CACHEABLE_MODES = ("solve", "list")


def default_cache_dir() -> Path:
    """Resolve the cache root: env override, then XDG, then ``~/.cache``."""
    env = os.environ.get("REPRO_SCHEDULE_CACHE")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "schedules"


def request_digest(request: SolveRequest) -> str:
    """Stable hex digest identifying a request's *answer*.

    Two requests with equal digests are guaranteed the same solution; the
    digest is insensitive to accelerator settings (warm start, dominance)
    and to the graph's name.
    """
    comm = request.comm
    if comm is None:
        comm_payload = None
    else:
        comm_payload = {
            tier: [cost.latency, cost.bandwidth]
            for tier, cost in (
                ("same_proc", comm.same_proc),
                ("intra_node", comm.intra_node),
                ("inter_node", comm.inter_node),
            )
        }
    payload = {
        "version": _CACHE_VERSION,
        "mode": request.mode,
        "problem": request.problem.digest_payload(),
        "state": dict(request.state),
        "cluster": {
            "procs_by_node": request.cluster.procs_by_node,
            "node_speeds": list(request.cluster.node_speeds),
        },
        "comm": comm_payload,
        "params": {
            "max_solutions": request.max_solutions,
            "tolerance": request.tolerance,
            "latency_slack": request.latency_slack,
            "bound_inflation": request.bound_inflation,
        },
    }
    if request.ladder:
        # A ladder's answer depends on which stage succeeds, which the
        # per-stage node budgets decide — so, unlike the plain safety
        # valve, they become result parameters here.
        payload["ladder"] = [
            [request.bound_inflation, request.node_limit]
        ] + [[float(eps), int(limit)] for eps, limit in request.ladder]
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ScheduleCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0

    def summary(self) -> str:
        """One-line human-readable description."""
        total = self.hits + self.misses
        rate = self.hits / total if total else 0.0
        return (
            f"cache: {self.hits} hits / {self.misses} misses "
            f"({rate:.0%}), {self.stores} stores, "
            f"{self.invalidations} invalidations"
        )


@dataclass
class ScheduleCache:
    """Persistent solution store, one JSON file per request digest.

    >>> import tempfile
    >>> cache = ScheduleCache(tempfile.mkdtemp())
    >>> len(cache)
    0
    """

    root: Optional[Path] = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root) if self.root is not None else default_cache_dir()

    def _path(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    def fetch(self, request: SolveRequest) -> Optional[ScheduleSolution]:
        """The cached solution for ``request``, or ``None`` on a miss.

        Only ``mode="solve"`` and ``mode="list"`` requests are cacheable
        (enumeration results carry the full set S, which the cap makes
        run-configuration dependent); other modes always miss.
        """
        # Deferred import: serialize imports table which imports this module's
        # sibling parallel, so a top-level import would cycle.
        from repro.core.serialize import solution_from_dict

        if request.mode not in _CACHEABLE_MODES:
            self.stats.misses += 1
            return None
        path = self._path(request_digest(request))
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            if (
                payload.get("format") != _CACHE_FORMAT
                or payload.get("version") != _CACHE_VERSION
            ):
                raise ValueError("cache entry format mismatch")
            solution = solution_from_dict(payload["solution"])
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            # Corrupt, truncated, or written by an incompatible build:
            # drop it and let the caller re-solve.
            self.stats.invalidations += 1
            self.stats.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return solution

    def store(self, request: SolveRequest, solution: ScheduleSolution) -> None:
        """Persist ``solution`` under ``request``'s digest (atomic write)."""
        from repro.core.serialize import solution_to_dict

        if request.mode not in _CACHEABLE_MODES:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": _CACHE_FORMAT,
            "version": _CACHE_VERSION,
            "digest": request_digest(request),
            "solution": solution_to_dict(solution),
        }
        blob = json.dumps(payload, indent=2)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(blob)
            os.replace(tmp, self._path(payload["digest"]))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
