"""Software pipelining: from one iteration to the multi-iteration schedule M.

Two constructions from §3.3:

* :func:`naive_pipeline` — Figure 4(b): "each virtual processor processes
  one time-stamp through all its tasks and then begins on the next
  time-stamp"; with P processors and serial iteration time T the initiation
  interval is T / P and the pattern shifts one processor per timestamp.

* :func:`best_pipelined` — the last step of Figure 6: given a minimal-
  latency iteration schedule, find the smallest initiation interval II (and
  processor shift) such that successive iterations never collide on a
  processor.  Throughput is 1/II.  The minimization is exact: for each
  candidate shift the feasible II values change only at *critical values*
  derived from span-pair separations, so testing those candidates in
  ascending order yields the true minimum.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import InvalidSchedule, ScheduleError
from repro.core.schedule import IterationSchedule, PipelinedSchedule, Placement
from repro.graph.taskgraph import TaskGraph
from repro.sim.cluster import ClusterSpec
from repro.state import State

__all__ = ["naive_pipeline", "min_initiation_interval", "best_pipelined"]

_EPS = 1e-9


def naive_pipeline(
    graph: TaskGraph,
    state: State,
    cluster: ClusterSpec,
    order: Optional[list[str]] = None,
) -> PipelinedSchedule:
    """The Figure 4(b) schedule: whole iteration serial on one processor.

    Tasks run back-to-back in topological order on a single processor;
    iteration k runs on processor ``k mod P``; the initiation interval is
    ``serial_time / P`` (every processor continuously busy — "this schedule
    has no idle time").
    """
    names = order or graph.topo_order()
    if set(names) != set(graph.task_names):
        raise ScheduleError("order must cover exactly the graph's tasks")
    placements = []
    t = 0.0
    for name in names:
        dur = graph.task(name).cost(state)
        placements.append(Placement(name, (0,), t, dur, variant="serial"))
        t += dur
    iteration = IterationSchedule(placements, name="naive-pipeline")
    P = cluster.total_processors
    total = t
    if total <= 0:
        raise ScheduleError("cannot pipeline a zero-cost iteration")
    period = total / P
    return PipelinedSchedule(iteration, period=period, shift=1 if P > 1 else 0,
                             n_procs=P, name="naive-pipeline")


def _feasible(
    spans: list[tuple[int, float, float]],
    P: int,
    shift: int,
    period: float,
    latency: float,
) -> bool:
    """Check that iteration 0 never collides with any later iteration."""
    if period <= 0:
        return False
    K = int(latency / period) + P + 1
    by_proc: dict[int, list[tuple[float, float]]] = {}
    for proc, s, e in spans:
        by_proc.setdefault(proc, []).append((s, e))
    for k in range(1, K + 1):
        off = k * period
        if off >= latency - _EPS:
            break
        for proc, s, e in spans:
            target = (proc + k * shift) % P
            for (s0, e0) in by_proc.get(target, ()):
                if s + off < e0 - _EPS and s0 < e + off - _EPS:
                    return False
    return True


def min_initiation_interval(
    iteration: IterationSchedule,
    n_procs: int,
    shift: int,
) -> float:
    """Exact minimal II for a fixed processor shift.

    Candidate II values are the critical separations ``(end_a - start_b)/k``
    at which a potential collision between a span of iteration 0 and a span
    of iteration k switches on or off, plus the area lower bound.  The
    smallest feasible candidate is returned; ``latency`` itself is always
    feasible (iterations fully separated), so the search cannot fail.
    """
    spans = [
        (proc, p.start, p.end)
        for p in iteration.placements
        for proc in p.procs
        if p.duration > 0
    ]
    latency = iteration.latency
    if not spans or latency <= 0:
        raise InvalidSchedule("cannot pipeline an empty or zero-length iteration")
    if not 0 <= shift < n_procs:
        raise InvalidSchedule(f"shift {shift} out of range 0..{n_procs - 1}")

    area = sum(e - s for _, s, e in spans)
    lb = area / n_procs
    # Busy time per physical processor per period: with a shift the work
    # rotates, so the binding bound is the mean; without a shift it is the
    # per-processor busy time.
    if shift == 0:
        per_proc: dict[int, float] = {}
        for proc, s, e in spans:
            per_proc[proc] = per_proc.get(proc, 0.0) + (e - s)
        lb = max(lb, max(per_proc.values()))

    candidates: set[float] = {lb, latency}
    # Any candidate below lb is infeasible, so k never needs to exceed
    # latency / lb (capped defensively for degenerate lb).
    Kmax = max(1, min(int(math.ceil(latency / max(lb, _EPS))) + n_procs, 10_000))
    for k in range(1, Kmax + 1):
        for proc_a, sa, ea in spans:
            for proc_b, sb, eb in spans:
                if (proc_b + k * shift) % n_procs != proc_a:
                    continue
                for crit in ((ea - sb) / k, (sa - eb) / k):
                    if lb - _EPS <= crit <= latency + _EPS:
                        candidates.add(max(crit, lb))
    for cand in sorted(candidates):
        if cand <= 0:
            continue
        if _feasible(spans, n_procs, shift, cand, latency):
            return cand
    return latency  # pragma: no cover - latency is always feasible


def best_pipelined(
    iteration: IterationSchedule,
    cluster: ClusterSpec,
    shifts: Optional[list[int]] = None,
    name: str = "pipelined",
) -> PipelinedSchedule:
    """The throughput-maximizing pipelined schedule over processor shifts.

    Tries every cyclic shift (or the given subset), takes the smallest
    feasible initiation interval, and returns the resulting
    :class:`PipelinedSchedule`.  Ties are broken toward a *rotating*
    pattern (smallest nonzero shift) — the paper's schedules shift one
    processor per timestamp so successive iterations wrap around, which
    also spreads the work evenly across processors.  The result is
    re-validated for conflicts as a safety net.
    """
    P = cluster.total_processors
    trial_shifts = shifts if shifts is not None else [*range(1, P), 0]
    best: Optional[tuple[float, int]] = None
    for s in trial_shifts:
        ii = min_initiation_interval(iteration, P, s)
        if best is None or ii < best[0] - _EPS:
            best = (ii, s)
    if best is None:
        raise ScheduleError("no shifts to try")
    period, shift = best
    sched = PipelinedSchedule(iteration, period=period, shift=shift, n_procs=P, name=name)
    sched.validate_conflict_free()
    return sched
