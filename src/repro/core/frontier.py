"""The latency/throughput frontier of a (graph, state, cluster) triple.

Figure 3 plots single operating points; the related work the paper builds
on ([13] Subhlok & Vondran, "Optimal Latency-Throughput Tradeoffs for Data
Parallel Pipelines") characterizes the whole trade-off curve.  This module
computes that curve with the Figure 6 machinery:

1. enumerate all schedules within a latency slack of the optimum
   (``enumerate_schedules(latency_slack=...)``),
2. pipeline each one (minimal initiation interval over shifts),
3. keep the Pareto-optimal (latency, throughput) pairs.

The paper's chosen point — minimal latency, then best throughput — is
always the leftmost point of this frontier; the naive pipeline of Figure
4(b) anchors the other end (maximal throughput at the cost of serial
latency).  The frontier quantifies what §3.3 calls "wasted space": how
much throughput the latency-first policy leaves on the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.enumerate import EnumerationResult, enumerate_schedules
from repro.core.pipeline import best_pipelined, naive_pipeline
from repro.core.schedule import PipelinedSchedule
from repro.graph.taskgraph import TaskGraph
from repro.sim.cluster import ClusterSpec
from repro.sim.network import CommModel
from repro.state import State

__all__ = ["FrontierPoint", "latency_throughput_frontier", "frontier_sweep"]

_EPS = 1e-9


@dataclass(frozen=True)
class FrontierPoint:
    """One Pareto-optimal operating point."""

    latency: float
    throughput: float
    schedule: PipelinedSchedule

    @property
    def period(self) -> float:
        return self.schedule.period


def latency_throughput_frontier(
    graph: TaskGraph,
    state: State,
    cluster: ClusterSpec,
    comm: Optional[CommModel] = None,
    latency_slack: float = 1.0,
    max_solutions: int = 256,
    include_naive: bool = True,
    max_workers: Optional[int] = None,
) -> list[FrontierPoint]:
    """Pareto frontier of (latency, throughput), sorted by latency.

    Parameters
    ----------
    latency_slack:
        How far above the minimal latency to explore (1.0 = up to 2x L).
        The naive pipeline is appended regardless when ``include_naive``
        (it may exceed the slack but anchors the throughput end).
    max_solutions:
        Cap on candidate iteration schedules materialized per call.
    """
    result = enumerate_schedules(
        graph,
        state,
        cluster,
        comm=comm,
        max_workers=max_workers,
        max_solutions=max_solutions,
        latency_slack=latency_slack,
    )
    return _points_from_result(result, graph, state, cluster, include_naive)


def _points_from_result(
    result: EnumerationResult,
    graph: TaskGraph,
    state: State,
    cluster: ClusterSpec,
    include_naive: bool,
) -> list[FrontierPoint]:
    """Pipeline every candidate and Pareto-filter the operating points."""
    candidates: list[FrontierPoint] = []
    for iteration in result.schedules:
        piped = best_pipelined(iteration, cluster, name=f"frontier[{iteration.name}]")
        candidates.append(
            FrontierPoint(
                latency=iteration.latency,
                throughput=piped.throughput,
                schedule=piped,
            )
        )
    if include_naive:
        naive = naive_pipeline(graph, state, cluster)
        candidates.append(
            FrontierPoint(
                latency=naive.latency, throughput=naive.throughput, schedule=naive
            )
        )
    # Pareto filter: keep points no other point dominates.
    front = [
        p
        for p in candidates
        if not any(
            (q.latency <= p.latency + _EPS and q.throughput >= p.throughput - _EPS)
            and (q.latency < p.latency - _EPS or q.throughput > p.throughput + _EPS)
            for q in candidates
        )
    ]
    # Deduplicate identical (latency, throughput) pairs deterministically.
    seen: set[tuple[float, float]] = set()
    unique: list[FrontierPoint] = []
    for p in sorted(front, key=lambda p: (p.latency, -p.throughput)):
        key = (round(p.latency, 12), round(p.throughput, 12))
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique


def frontier_sweep(
    graph: TaskGraph,
    states: Sequence[State],
    cluster: ClusterSpec,
    comm: Optional[CommModel] = None,
    latency_slack: float = 1.0,
    max_solutions: int = 256,
    include_naive: bool = True,
    max_workers: Optional[int] = None,
    workers: Optional[int] = None,
) -> list[list[FrontierPoint]]:
    """One frontier per state, with the enumerations batched.

    The per-state enumerations are independent, so they fan out through
    :func:`repro.core.parallel.solve_many` (``workers=None``/``1`` =
    in-process; the frontiers are identical for every worker count).
    Pipelining and Pareto filtering run in the parent — they are linear
    in the candidate count.
    """
    from repro.core.parallel import make_request, solve_many

    requests = [
        make_request(
            graph,
            state,
            cluster,
            comm,
            mode="enumerate",
            max_workers=max_workers,
            max_solutions=max_solutions,
            latency_slack=latency_slack,
            tag=state,
        )
        for state in states
    ]
    results = solve_many(requests, workers=workers)
    return [
        _points_from_result(result, graph, state, cluster, include_naive)
        for state, result in zip(states, results)
    ]
