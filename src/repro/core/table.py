"""Per-state schedule tables and the run-time switcher.

§3.4: "We pre-compute the optimal schedule for each of the states.  The
actions required on a state change are: perform a table look-up to
determine the new schedule for the new state; perform a transition to the
new schedule."

:class:`ScheduleTable` is the off-line artifact (built once per cluster
configuration); :class:`RegimeSwitcher` is the on-line component that
reacts to confirmed regime changes by looking up the new schedule and
accounting for the transition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.errors import RegimeError, ScheduleLookupError
from repro.core.optimal import OptimalScheduler, ScheduleSolution
from repro.core.regime import RegimeChange, RegimeDetector
from repro.core.transition import DrainTransition, TransitionEffect, TransitionPolicy
from repro.graph.taskgraph import TaskGraph
from repro.state import State, StateSpace

__all__ = ["ScheduleTable", "SwitchRecord", "RegimeSwitcher"]


class ScheduleTable:
    """Pre-computed optimal schedules, one per application state.

    >>> from repro.graph.builders import chain_graph
    >>> from repro.sim.cluster import SINGLE_NODE_SMP
    >>> from repro.state import StateSpace
    >>> table = ScheduleTable.build(
    ...     chain_graph([1.0, 1.0]),
    ...     StateSpace.range("n_models", 1, 2),
    ...     OptimalScheduler(SINGLE_NODE_SMP(2)),
    ... )
    >>> len(table)
    2
    """

    def __init__(self, solutions: dict[State, ScheduleSolution]) -> None:
        if not solutions:
            raise RegimeError("schedule table needs at least one state")
        self._solutions = dict(solutions)

    @classmethod
    def build(
        cls,
        graph: TaskGraph,
        space: StateSpace,
        scheduler: OptimalScheduler,
        progress: Optional[Callable[[State, ScheduleSolution], None]] = None,
        parallel: Optional[int] = None,
        cache=None,
        verify: bool = False,
        policy=None,
    ) -> "ScheduleTable":
        """Run the off-line optimizer for every state in ``space``.

        Parameters
        ----------
        parallel:
            Worker-process count for the batch of per-state solves
            (``None`` or ``1`` = in-process).  Every worker count yields
            a bitwise-identical table — same solves, same order, same
            arithmetic (see :mod:`repro.core.parallel`).
        cache:
            Optional :class:`~repro.core.cache.ScheduleCache`; states
            whose solve request digests to a cached entry skip the
            branch-and-bound entirely, and fresh solves are stored back.
        verify:
            Run the static analyzer (:mod:`repro.analysis` passes 1-3:
            graph lint, schedule certificates, table totality, STM
            protocol) over the finished table and raise
            :class:`~repro.errors.AnalysisError` on any ERROR finding.
        policy:
            Solver-ladder rung for every per-state solve: a
            :class:`~repro.approx.SolvePolicy` or a spec string
            (``"exact"`` | ``"bounded[:eps]"`` | ``"list"`` |
            ``"ladder[:eps]"``).  ``None`` keeps the exact search.  Every
            non-exact entry carries a
            :class:`~repro.core.optimal.GapCertificate` stating its
            certified optimality gap.
        """
        from repro.core.parallel import solve_many  # deferred: avoids import cycle

        states = list(space)
        if policy is None:
            requests = [scheduler.request(graph, state) for state in states]
        else:
            from repro.approx import resolve_policy  # deferred: leaf package

            pol = resolve_policy(policy)
            requests = [pol.request(scheduler, graph, state) for state in states]
        solutions: dict[State, Optional[ScheduleSolution]] = {
            state: None for state in states
        }
        pending = []
        if cache is not None:
            for state, request in zip(states, requests):
                hit = cache.fetch(request)
                if hit is not None:
                    solutions[state] = hit
                else:
                    pending.append((state, request))
        else:
            pending = list(zip(states, requests))
        solved = solve_many([req for _, req in pending], workers=parallel)
        for (state, request), sol in zip(pending, solved):
            solutions[state] = sol
            if cache is not None:
                cache.store(request, sol)
        if progress is not None:
            for state in states:
                progress(state, solutions[state])
        table = cls(solutions)
        if verify:
            table.verify(graph, space, scheduler.cluster, comm=scheduler.comm)
        return table

    def verify(self, graph, space, cluster, comm=None) -> None:
        """Run analysis passes 1-3 and 5 over this table; raise on ERRORs.

        Checks the graph's structure, every per-state schedule certificate
        (placement legality, precedence, re-derived latency L), table
        totality over ``space``, transition resolvability, and the STM
        protocol under each schedule — then model-checks the channel
        configuration (one exploration covers every state: the transition
        system depends on wiring, capacities and declarations, not on the
        per-state timings) and downgrades pass-3 heuristics it proves
        safe.  Raises :class:`~repro.errors.AnalysisError` carrying the
        full :class:`~repro.analysis.findings.AnalysisReport` when any
        ERROR finding is present.
        """
        # Deferred import: repro.analysis imports this module's collaborators.
        from repro.analysis import check_model, check_stm, lint_graph, verify_schedule_table
        from repro.errors import AnalysisError

        report = lint_graph(graph, states=space)
        verify_schedule_table(self, graph, space, cluster, comm=comm, report=report)
        for state in self.states():
            check_stm(graph, self.lookup(state), report=report)
        check_model(graph, solutions=self.solutions(), report=report)
        if not report.ok():
            raise AnalysisError(report)

    def lookup(self, state: State) -> ScheduleSolution:
        """The pre-computed solution for ``state`` (exact match).

        Raises :class:`~repro.errors.ScheduleLookupError` (a
        :class:`~repro.errors.RegimeError`) naming the missing state and
        the covered states on a miss.
        """
        try:
            return self._solutions[state]
        except KeyError:
            raise ScheduleLookupError(state, self._solutions) from None

    def __contains__(self, state: State) -> bool:
        return state in self._solutions

    def __len__(self) -> int:
        return len(self._solutions)

    def __iter__(self) -> Iterator[State]:
        return iter(self._solutions)

    def states(self) -> list[State]:
        """All covered states."""
        return list(self._solutions)

    def solutions(self) -> list[ScheduleSolution]:
        """All solutions, in state insertion order."""
        return list(self._solutions.values())

    def summary(self) -> str:
        """Multi-line human-readable table."""
        return "\n".join(sol.summary() for sol in self._solutions.values())


@dataclass(frozen=True)
class SwitchRecord:
    """One executed schedule switch with its accounted cost."""

    time: float
    change: RegimeChange
    effect: TransitionEffect
    new_solution: ScheduleSolution


class RegimeSwitcher:
    """On-line component: detector + table look-up + transition accounting.

    Feed raw observations via :meth:`observe`; the switcher keeps
    ``active`` pointing at the solution for the confirmed regime and logs a
    :class:`SwitchRecord` (with stall and lost-work accounting) for every
    switch.
    """

    def __init__(
        self,
        table: ScheduleTable,
        detector: RegimeDetector,
        policy: Optional[TransitionPolicy] = None,
    ) -> None:
        if detector.current not in table:
            raise RegimeError(
                f"detector's initial state {detector.current} not in the table"
            )
        self.table = table
        self.detector = detector
        self.policy = policy or DrainTransition()
        self.active: ScheduleSolution = table.lookup(detector.current)
        self.switches: list[SwitchRecord] = []
        self.total_stall = 0.0
        self.total_lost_iterations = 0

    def observe(self, time: float, value) -> Optional[SwitchRecord]:
        """Process one raw observation; returns a record iff a switch ran."""
        change = self.detector.observe(time, value)
        if change is None:
            return None
        old = self.active
        new = self.table.lookup(change.new)
        effect = self.policy.effect(old, new)
        self.active = new
        record = SwitchRecord(time=time, change=change, effect=effect, new_solution=new)
        self.switches.append(record)
        self.total_stall += effect.stall
        self.total_lost_iterations += effect.lost_iterations
        return record

    @property
    def switch_count(self) -> int:
        """Number of schedule switches executed."""
        return len(self.switches)

    def __repr__(self) -> str:
        return (
            f"RegimeSwitcher(active={self.active.state}, "
            f"switches={len(self.switches)}, stall={self.total_stall:g}s)"
        )
