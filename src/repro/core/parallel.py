"""Batch fan-out of independent off-line solves.

The off-line phase is embarrassingly parallel across *problems*: every
state of a :class:`~repro.state.StateSpace`, every degraded shape of a
:class:`~repro.faults.failover.ShapeTable`, every slack level of a
frontier sweep is an independent branch-and-bound.  This module packages
one solve as a picklable :class:`SolveRequest` and runs batches of them
through a ``ProcessPoolExecutor``.

Determinism is the contract: ``solve_many`` executes the *same* code path
(:func:`execute_request`) whether it runs in-process or in worker
processes, and returns results in request order — so a table built with
``workers=8`` serializes bit-identically to one built with ``workers=1``.

Fallbacks are graceful: ``workers=1`` (or a single request) never spawns
a pool; a platform without the ``fork`` start method, or a pool that
fails to start or breaks mid-flight, degrades to the in-process path
rather than erroring out.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union

from repro.core.enumerate import (
    EnumerationResult,
    SearchProblem,
    search_schedules,
    warm_incumbent,
)
from repro.core.optimal import ScheduleSolution, solution_from_enumeration
from repro.errors import ReproError
from repro.graph.taskgraph import TaskGraph
from repro.sim.cluster import ClusterSpec
from repro.sim.network import CommModel
from repro.state import State

__all__ = [
    "SolveRequest",
    "make_request",
    "execute_request",
    "solve_many",
    "default_workers",
]


@dataclass
class SolveRequest:
    """One self-contained off-line solve, ready to ship to a worker.

    The request carries a :class:`~repro.core.enumerate.SearchProblem`
    (all cost callables pre-evaluated) instead of the graph itself, so it
    pickles cheaply and digests stably for the on-disk cache.

    ``mode`` selects what :func:`execute_request` returns:

    * ``"solve"`` — a full :class:`~repro.core.optimal.ScheduleSolution`
      (steps 1-3 of Figure 6);
    * ``"enumerate"`` — the raw
      :class:`~repro.core.enumerate.EnumerationResult` (steps 1-2 only),
      used by the frontier and sensitivity sweeps that inspect S itself.

    ``tag`` is an opaque caller label (a state, a shape key, a trial
    index) carried through untouched; ``solve_many`` never looks at it.
    """

    problem: SearchProblem
    state: State
    cluster: ClusterSpec
    comm: Optional[CommModel] = None
    mode: str = "solve"
    max_solutions: int = 64
    node_limit: int = 2_000_000
    tolerance: float = 1e-9
    latency_slack: float = 0.0
    incumbent: Optional[float] = None
    dominance: bool = True
    tag: Any = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.mode not in ("solve", "enumerate"):
            raise ValueError(f"unknown solve mode {self.mode!r}")


def make_request(
    graph: TaskGraph,
    state: State,
    cluster: ClusterSpec,
    comm: Optional[CommModel] = None,
    *,
    mode: str = "solve",
    max_workers: Optional[int] = None,
    max_solutions: int = 64,
    node_limit: int = 2_000_000,
    tolerance: float = 1e-9,
    latency_slack: float = 0.0,
    warm_start: bool = True,
    dominance: bool = True,
    tag: Any = None,
) -> SolveRequest:
    """Snapshot one (graph, state, cluster) solve into a :class:`SolveRequest`.

    The warm-start incumbent is computed *here*, in the parent process —
    the list scheduler is linear-time, and workers then need nothing but
    the pure-data request.
    """
    dp_cap = max_workers if max_workers is not None else cluster.procs_per_node
    problem = SearchProblem.from_graph(graph, state, max_workers=dp_cap)
    incumbent = None
    if warm_start and problem.order_names:
        incumbent = warm_incumbent(graph, state, cluster, comm=comm, max_workers=dp_cap)
    return SolveRequest(
        problem=problem,
        state=state,
        cluster=cluster,
        comm=comm,
        mode=mode,
        max_solutions=max_solutions,
        node_limit=node_limit,
        tolerance=tolerance,
        latency_slack=latency_slack,
        incumbent=incumbent,
        dominance=dominance,
        tag=tag,
    )


def execute_request(
    request: SolveRequest,
) -> Union[ScheduleSolution, EnumerationResult]:
    """Run one request to completion (works in any process)."""
    result = search_schedules(
        request.problem,
        request.state,
        request.cluster,
        request.comm,
        max_solutions=request.max_solutions,
        node_limit=request.node_limit,
        tolerance=request.tolerance,
        latency_slack=request.latency_slack,
        incumbent=request.incumbent,
        dominance=request.dominance,
    )
    if request.mode == "enumerate":
        return result
    return solution_from_enumeration(result, request.cluster)


def default_workers() -> int:
    """Usable CPU count (respects affinity masks where the OS exposes them)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _execute_trapping(request: SolveRequest) -> tuple[str, Any]:
    """Pool trampoline: trap domain errors so a chunk survives them.

    ``pool.map`` ships requests in chunks (one IPC message per chunk
    instead of one per request); a raising request would poison its
    whole chunk at iteration time, so errors travel as values and
    ``solve_many`` re-raises or returns them per the caller's choice.
    """
    try:
        return ("ok", execute_request(request))
    except ReproError as exc:
        return ("err", exc)


def _run_in_process(
    requests: Sequence[SolveRequest], return_exceptions: bool
) -> list:
    out: list = []
    for request in requests:
        try:
            out.append(execute_request(request))
        except ReproError as exc:
            if not return_exceptions:
                raise
            out.append(exc)
    return out


def solve_many(
    requests: Sequence[SolveRequest],
    workers: Optional[int] = None,
    return_exceptions: bool = False,
    start_method: Optional[str] = None,
) -> list:
    """Execute a batch of solve requests, results in request order.

    Parameters
    ----------
    requests:
        The batch; each element is solved independently.
    workers:
        Process count.  ``None`` uses :func:`default_workers`; ``1`` (or a
        single-element batch) runs in-process with no pool.  Either way
        the arithmetic is identical, so results — and any tables
        serialized from them — are bitwise the same for every worker
        count.
    return_exceptions:
        When true, a request that raises a domain error
        (:class:`~repro.errors.ReproError`, e.g. an infeasible degraded
        shape) contributes the *exception object* at its position instead
        of aborting the batch — callers like
        :class:`~repro.faults.failover.ShapeTable` filter those out.
        Non-domain failures (a broken pool, an unpicklable payload) are
        never returned; they trigger the in-process fallback.
    start_method:
        Multiprocessing start method for the pool.  ``None`` keeps the
        historical default (``fork``, falling back in-process where the
        platform lacks it); ``"spawn"`` works because every
        :class:`SolveRequest` is pure picklable data — see
        ``tests/core/test_spawn_pickling.py``.
    """
    reqs = list(requests)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(reqs) <= 1:
        return _run_in_process(reqs, return_exceptions)
    try:
        ctx = multiprocessing.get_context(start_method or "fork")
    except ValueError:  # pragma: no cover - platform without the method
        return _run_in_process(reqs, return_exceptions)
    n_workers = min(workers, len(reqs))
    # Coalesced dispatch: map() ships requests to the pool in chunks, so
    # a big sweep (every state of a StateSpace, every degraded shape)
    # costs ~4 IPC messages per worker rather than one per request.
    chunksize = max(1, len(reqs) // (n_workers * 4))
    try:
        with ProcessPoolExecutor(
            max_workers=n_workers, mp_context=ctx
        ) as pool:
            out: list = []
            for kind, payload in pool.map(
                _execute_trapping, reqs, chunksize=chunksize
            ):
                if kind == "err" and not return_exceptions:
                    raise payload
                out.append(payload)
            return out
    except ReproError:
        raise
    except Exception:  # pragma: no cover - pool-level failure
        # BrokenProcessPool, pickling trouble, fork refusal under an
        # exotic runtime: the work itself is fine, so do it here instead.
        return _run_in_process(reqs, return_exceptions)
