"""Batch fan-out of independent off-line solves.

The off-line phase is embarrassingly parallel across *problems*: every
state of a :class:`~repro.state.StateSpace`, every degraded shape of a
:class:`~repro.faults.failover.ShapeTable`, every slack level of a
frontier sweep is an independent branch-and-bound.  This module packages
one solve as a picklable :class:`SolveRequest` and runs batches of them
through a ``ProcessPoolExecutor``.

Determinism is the contract: ``solve_many`` executes the *same* code path
(:func:`execute_request`) whether it runs in-process or in worker
processes, and returns results in request order — so a table built with
``workers=8`` serializes bit-identically to one built with ``workers=1``.

Fallbacks are graceful: ``workers=1`` (or a single request) never spawns
a pool; a platform without the ``fork`` start method, or a pool that
fails to start or breaks mid-flight, degrades to the in-process path
rather than erroring out.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union

from repro.core.enumerate import (
    EnumerationResult,
    SearchProblem,
    search_schedules,
    static_lower_bound,
    warm_incumbent,
)
from repro.core.optimal import (
    ScheduleSolution,
    solution_from_enumeration,
    solution_from_fallback,
)
from repro.core.schedule import IterationSchedule
from repro.errors import InfeasibleSchedule, ReproError, ScheduleError
from repro.graph.taskgraph import TaskGraph
from repro.sim.cluster import ClusterSpec
from repro.sim.network import CommModel
from repro.state import State

__all__ = [
    "SolveRequest",
    "make_request",
    "execute_request",
    "solve_many",
    "default_workers",
]


@dataclass
class SolveRequest:
    """One self-contained off-line solve, ready to ship to a worker.

    The request carries a :class:`~repro.core.enumerate.SearchProblem`
    (all cost callables pre-evaluated) instead of the graph itself, so it
    pickles cheaply and digests stably for the on-disk cache.

    ``mode`` selects what :func:`execute_request` returns:

    * ``"solve"`` — a full :class:`~repro.core.optimal.ScheduleSolution`
      (steps 1-3 of Figure 6);
    * ``"enumerate"`` — the raw
      :class:`~repro.core.enumerate.EnumerationResult` (steps 1-2 only),
      used by the frontier and sensitivity sweeps that inspect S itself;
    * ``"list"`` — no search at all: the pre-computed HEFT ``fallback``
      schedule wrapped as a solution with a root-bound gap certificate
      (rung 3 of the :mod:`repro.approx` ladder).

    ``bound_inflation`` (ε) makes the search bounded-suboptimal, and
    ``ladder`` appends escalation stages ``(ε, node_limit)`` tried in
    order when a stage blows its node budget — with the ``fallback``
    schedule as the final rung.  All of it is pure picklable data, so a
    whole policy ladder ships to a worker as one request.

    ``tag`` is an opaque caller label (a state, a shape key, a trial
    index) carried through untouched; ``solve_many`` never looks at it.
    """

    problem: SearchProblem
    state: State
    cluster: ClusterSpec
    comm: Optional[CommModel] = None
    mode: str = "solve"
    max_solutions: int = 64
    node_limit: int = 2_000_000
    tolerance: float = 1e-9
    latency_slack: float = 0.0
    incumbent: Optional[float] = None
    dominance: bool = True
    bound_inflation: float = 0.0
    ladder: tuple = ()
    fallback: Optional[IterationSchedule] = None
    dp_cap: Optional[int] = None
    tag: Any = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.mode not in ("solve", "enumerate", "list"):
            raise ValueError(f"unknown solve mode {self.mode!r}")
        if self.mode == "list" and self.fallback is None:
            raise ValueError("mode='list' requires a fallback schedule")


def make_request(
    graph: TaskGraph,
    state: State,
    cluster: ClusterSpec,
    comm: Optional[CommModel] = None,
    *,
    mode: str = "solve",
    max_workers: Optional[int] = None,
    max_solutions: int = 64,
    node_limit: int = 2_000_000,
    tolerance: float = 1e-9,
    latency_slack: float = 0.0,
    warm_start: bool = True,
    dominance: bool = True,
    bound_inflation: float = 0.0,
    ladder: tuple = (),
    tag: Any = None,
) -> SolveRequest:
    """Snapshot one (graph, state, cluster) solve into a :class:`SolveRequest`.

    The warm-start incumbent is computed *here*, in the parent process —
    the list scheduler is linear-time, and workers then need nothing but
    the pure-data request.  When the request is approximate (``mode=
    "list"``, ``bound_inflation`` > 0, or escalation ``ladder`` stages),
    the *full* list schedule rides along as the fallback rung.
    """
    dp_cap = max_workers if max_workers is not None else cluster.procs_per_node
    problem = SearchProblem.from_graph(graph, state, max_workers=dp_cap)
    if mode == "list" and not problem.order_names:
        mode = "solve"  # empty graph: the search's trivial result is exact
    needs_fallback = bound_inflation > 0.0 or bool(ladder) or mode == "list"
    incumbent = None
    fallback = None
    if problem.order_names and (warm_start or needs_fallback):
        fallback = _list_fallback(graph, state, cluster, comm, dp_cap)
        if fallback is not None and warm_start:
            incumbent = fallback.latency
    if mode == "list" and fallback is None:
        raise InfeasibleSchedule(
            f"list scheduler produced no legal schedule for "
            f"{graph.name!r} in {state!r} on {cluster!r}"
        )
    if not needs_fallback:
        fallback = None
    return SolveRequest(
        problem=problem,
        state=state,
        cluster=cluster,
        comm=comm,
        mode=mode,
        max_solutions=max_solutions,
        node_limit=node_limit,
        tolerance=tolerance,
        latency_slack=latency_slack,
        incumbent=incumbent,
        dominance=dominance,
        bound_inflation=bound_inflation,
        ladder=tuple(ladder),
        fallback=fallback,
        dp_cap=dp_cap,
        tag=tag,
    )


def _list_fallback(
    graph: TaskGraph,
    state: State,
    cluster: ClusterSpec,
    comm: Optional[CommModel],
    dp_cap: int,
) -> Optional[IterationSchedule]:
    """The full HEFT list schedule, or ``None`` when the heuristic fails.

    Same schedule :func:`~repro.core.enumerate.warm_incumbent` takes the
    latency of — kept whole here so approximate requests can *serve* it.
    """
    from repro.sched.listsched import list_schedule  # deferred: avoids import cycle

    try:
        return list_schedule(
            graph, state, cluster, comm=comm, max_workers=dp_cap
        )
    except (ReproError, AssertionError):
        return None


def execute_request(
    request: SolveRequest,
) -> Union[ScheduleSolution, EnumerationResult]:
    """Run one request to completion (works in any process).

    Approximate requests escalate deterministically: the primary stage
    (``bound_inflation``, ``node_limit``), then each ``ladder`` stage
    when the previous one blows its node budget, and finally — for a
    bounded stage whose ε-pruning eliminated every leaf, or a ladder that
    exhausted all stages — the pre-computed ``fallback`` list schedule,
    wrapped with a sound gap certificate.
    """
    if request.mode == "list":
        return _serve_fallback(request, policy="list")
    stages = [(request.bound_inflation, request.node_limit)]
    stages += [(float(eps), int(limit)) for eps, limit in request.ladder]
    last_error: Optional[ScheduleError] = None
    result = None
    for eps, limit in stages:
        try:
            result = search_schedules(
                request.problem,
                request.state,
                request.cluster,
                request.comm,
                max_solutions=request.max_solutions,
                node_limit=limit,
                tolerance=request.tolerance,
                latency_slack=request.latency_slack,
                incumbent=request.incumbent,
                dominance=request.dominance,
                bound_inflation=eps,
            )
            break
        except InfeasibleSchedule:
            if eps > 0.0 and request.fallback is not None:
                # ε-pruning cut every leaf *against the incumbent*:
                # anything better than fallback/(1+ε) was provably pruned,
                # so serving the incumbent is within the bounded contract.
                return _serve_fallback(request, policy="bounded", epsilon=eps)
            raise
        except ScheduleError as exc:
            last_error = exc  # node budget blown: try the next rung
    if result is None:
        if request.fallback is not None:
            return _serve_fallback(request, policy="list")
        raise last_error if last_error is not None else ScheduleError(
            "solve request produced no result"
        )
    if request.mode == "enumerate":
        return result
    return solution_from_enumeration(
        result, request.cluster, dp_cap=request.dp_cap
    )


def _serve_fallback(
    request: SolveRequest, policy: str, epsilon: float = 0.0
) -> ScheduleSolution:
    """The request's list-schedule fallback as a certified solution."""
    if request.fallback is None:
        raise InfeasibleSchedule(
            f"no fallback schedule available for {request.state!r}"
        )
    root = static_lower_bound(request.problem, request.cluster)
    return solution_from_fallback(
        request.fallback,
        request.state,
        request.cluster,
        root_bound=root,
        policy=policy,
        epsilon=epsilon,
        dp_cap=request.dp_cap,
    )


def default_workers() -> int:
    """Usable CPU count (respects affinity masks where the OS exposes them)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _execute_trapping(request: SolveRequest) -> tuple[str, Any]:
    """Pool trampoline: trap domain errors so a chunk survives them.

    ``pool.map`` ships requests in chunks (one IPC message per chunk
    instead of one per request); a raising request would poison its
    whole chunk at iteration time, so errors travel as values and
    ``solve_many`` re-raises or returns them per the caller's choice.
    """
    try:
        return ("ok", execute_request(request))
    except ReproError as exc:
        return ("err", exc)


def _run_in_process(
    requests: Sequence[SolveRequest], return_exceptions: bool
) -> list:
    out: list = []
    for request in requests:
        try:
            out.append(execute_request(request))
        except ReproError as exc:
            if not return_exceptions:
                raise
            out.append(exc)
    return out


def solve_many(
    requests: Sequence[SolveRequest],
    workers: Optional[int] = None,
    return_exceptions: bool = False,
    start_method: Optional[str] = None,
) -> list:
    """Execute a batch of solve requests, results in request order.

    Parameters
    ----------
    requests:
        The batch; each element is solved independently.
    workers:
        Process count.  ``None`` uses :func:`default_workers`; ``1`` (or a
        single-element batch) runs in-process with no pool.  Either way
        the arithmetic is identical, so results — and any tables
        serialized from them — are bitwise the same for every worker
        count.
    return_exceptions:
        When true, a request that raises a domain error
        (:class:`~repro.errors.ReproError`, e.g. an infeasible degraded
        shape) contributes the *exception object* at its position instead
        of aborting the batch — callers like
        :class:`~repro.faults.failover.ShapeTable` filter those out.
        Non-domain failures (a broken pool, an unpicklable payload) are
        never returned; they trigger the in-process fallback.
    start_method:
        Multiprocessing start method for the pool.  ``None`` keeps the
        historical default (``fork``, falling back in-process where the
        platform lacks it); ``"spawn"`` works because every
        :class:`SolveRequest` is pure picklable data — see
        ``tests/core/test_spawn_pickling.py``.
    """
    reqs = list(requests)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(reqs) <= 1:
        return _run_in_process(reqs, return_exceptions)
    try:
        ctx = multiprocessing.get_context(start_method or "fork")
    except ValueError:  # pragma: no cover - platform without the method
        return _run_in_process(reqs, return_exceptions)
    n_workers = min(workers, len(reqs))
    # Coalesced dispatch: map() ships requests to the pool in chunks, so
    # a big sweep (every state of a StateSpace, every degraded shape)
    # costs ~4 IPC messages per worker rather than one per request.
    chunksize = max(1, len(reqs) // (n_workers * 4))
    try:
        with ProcessPoolExecutor(
            max_workers=n_workers, mp_context=ctx
        ) as pool:
            out: list = []
            for kind, payload in pool.map(
                _execute_trapping, reqs, chunksize=chunksize
            ):
                if kind == "err" and not return_exceptions:
                    raise payload
                out.append(payload)
            return out
    except ReproError:
        raise
    except Exception:  # pragma: no cover - pool-level failure
        # BrokenProcessPool, pickling trouble, fork refusal under an
        # exotic runtime: the work itself is fine, so do it here instead.
        return _run_in_process(reqs, return_exceptions)
