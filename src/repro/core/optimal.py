"""The full Figure 6 algorithm.

    Compute the minimal latency, L, for a single iteration
    Compute the set, S, of all single iteration schedules that exhibit
        latency, L
    Compute the multi-iteration schedule, M, created from multiple
        instances of a schedule from S

Step 1 and 2 are :func:`repro.core.enumerate.enumerate_schedules`; step 3
picks, among the members of S, the iteration schedule whose pipelined form
has the smallest initiation interval — i.e. maximal throughput subject to
minimal latency, the paper's stated priority ("without sacrificing latency,
of course we would like to attain maximum possible throughput").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.enumerate import EnumerationResult, enumerate_schedules
from repro.errors import InfeasibleSchedule
from repro.core.pipeline import best_pipelined
from repro.core.schedule import IterationSchedule, PipelinedSchedule
from repro.graph.taskgraph import TaskGraph
from repro.sim.cluster import ClusterSpec
from repro.sim.network import CommModel
from repro.state import State

__all__ = [
    "GapCertificate",
    "ScheduleSolution",
    "OptimalScheduler",
    "solution_from_enumeration",
    "solution_from_fallback",
]

_EPS = 1e-9


@dataclass(frozen=True)
class GapCertificate:
    """The optimality-gap claim attached to a served schedule.

    The solver ladder (:mod:`repro.approx`) serves schedules that may be
    suboptimal; this certificate is what makes that safe — it states
    *how* suboptimal, in a form rule ``S013`` can re-check independently:

    Attributes
    ----------
    policy:
        Which rung produced the schedule: ``"exact"`` (branch and bound
        run to completion), ``"bounded"`` (ε-inflated branch and bound)
        or ``"list"`` (HEFT list-scheduling fallback).
    epsilon:
        The requested suboptimality budget (0 for exact and list).
    lower_bound:
        Certified lower bound on the true optimum L*: the latency itself
        for exact, ``max(root_bound, latency / (1 + ε))`` for bounded,
        ``root_bound`` for list.
    root_bound:
        The static critical-path/load bound
        (:func:`repro.core.enumerate.static_lower_bound`) — re-derivable
        from the graph, state and cluster alone, anchoring the claim to
        something no search artifact can fake.
    gap_bound:
        ``latency / lower_bound - 1`` — the claimed worst-case relative
        gap.  Bounded rungs guarantee ``gap_bound <= epsilon``.
    dp_cap:
        The data-parallel width cap the search problem was built with
        (the verifier must materialize the same variant sets to
        reproduce ``root_bound``).
    """

    policy: str
    epsilon: float
    lower_bound: float
    root_bound: float
    gap_bound: float
    dp_cap: int

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.policy}(ε={self.epsilon:g}): "
            f"gap<={self.gap_bound * 100:.2f}% "
            f"(LB={self.lower_bound:.4g}s, root={self.root_bound:.4g}s)"
        )


@dataclass
class ScheduleSolution:
    """An optimal schedule for one application state.

    Attributes
    ----------
    state:
        The application state this solution is optimal for.
    iteration:
        The chosen member of S (minimal latency L).
    pipelined:
        The multi-iteration schedule M built from it.
    alternatives:
        Total count of distinct optimal iteration schedules (|S|).
    explored:
        Branch-and-bound nodes visited while computing S.
    certificate:
        Optimality-gap claim (:class:`GapCertificate`); ``None`` only on
        artifacts serialized before certificates existed.
    """

    state: State
    iteration: IterationSchedule
    pipelined: PipelinedSchedule
    alternatives: int
    explored: int
    certificate: Optional[GapCertificate] = None

    @property
    def latency(self) -> float:
        """Minimal single-iteration latency L (seconds)."""
        return self.iteration.latency

    @property
    def period(self) -> float:
        """Initiation interval of M (seconds)."""
        return self.pipelined.period

    @property
    def throughput(self) -> float:
        """Iterations completed per second under M."""
        return self.pipelined.throughput

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.state}: L={self.latency:.4g}s, II={self.period:.4g}s "
            f"(throughput {self.throughput:.4g}/s), |S|={self.alternatives}"
        )


def _certificate_from_result(
    result: EnumerationResult, dp_cap: int
) -> Optional[GapCertificate]:
    """Build the gap certificate an enumeration result supports.

    Results lacking bound information (hand-built in tests, or produced
    by a pre-certificate build) get ``None`` — no claim is better than an
    unverifiable one.
    """
    if result.root_bound <= 0.0 or result.lower_bound <= 0.0:
        return None
    policy = "bounded" if result.bound_inflation > 0.0 else "exact"
    gap = result.latency / result.lower_bound - 1.0
    return GapCertificate(
        policy=policy,
        epsilon=result.bound_inflation,
        lower_bound=result.lower_bound,
        root_bound=result.root_bound,
        gap_bound=max(0.0, gap),
        dp_cap=dp_cap,
    )


def solution_from_enumeration(
    result: EnumerationResult,
    cluster: ClusterSpec,
    dp_cap: Optional[int] = None,
) -> ScheduleSolution:
    """Step 3 of Figure 6: pick the throughput-best pipelining of a member of S.

    Shared by :meth:`OptimalScheduler.solve` and the process-pool workers
    of :mod:`repro.core.parallel`, so both paths produce bit-identical
    solutions.  ``dp_cap`` is the data-parallel width cap the search
    problem was built with (recorded in the certificate; defaults to the
    cluster's processors per node, which is what every table build uses).
    """
    best: Optional[PipelinedSchedule] = None
    best_iter: Optional[IterationSchedule] = None
    for candidate in result.schedules:
        piped = best_pipelined(candidate, cluster, name=f"M[{candidate.name}]")
        if best is None or piped.period < best.period - _EPS:
            best = piped
            best_iter = candidate
    if best is None or best_iter is None:
        raise InfeasibleSchedule(
            f"enumeration for {result.state!r} produced no schedules to pipeline"
        )
    cap = dp_cap if dp_cap is not None else cluster.procs_per_node
    return ScheduleSolution(
        state=result.state,
        iteration=best_iter,
        pipelined=best,
        alternatives=result.optimal_count,
        explored=result.explored,
        certificate=_certificate_from_result(result, cap),
    )


def solution_from_fallback(
    schedule: IterationSchedule,
    state: State,
    cluster: ClusterSpec,
    *,
    root_bound: float,
    policy: str,
    epsilon: float = 0.0,
    dp_cap: Optional[int] = None,
    explored: int = 0,
) -> ScheduleSolution:
    """Wrap a heuristic (list-scheduled or ε-pruned-away) schedule as a solution.

    Used by the ``"list"`` rung of the solver ladder, and by the bounded
    rung when ε-pruning eliminated every leaf below the warm incumbent —
    in that case the incumbent itself is certified within ``(1 + ε)`` of
    L* (everything better was pruned *against it*), so ``policy="bounded"``
    with the incumbent's latency is sound.
    """
    piped = best_pipelined(schedule, cluster, name=f"M[{schedule.name}]")
    lb = root_bound
    if policy == "bounded" and epsilon > 0.0:
        lb = max(lb, schedule.latency / (1.0 + epsilon))
    gap = schedule.latency / lb - 1.0 if lb > 0.0 else 0.0
    cert = None
    if lb > 0.0:
        cap = dp_cap if dp_cap is not None else cluster.procs_per_node
        cert = GapCertificate(
            policy=policy,
            epsilon=epsilon,
            lower_bound=lb,
            root_bound=root_bound,
            gap_bound=max(0.0, gap),
            dp_cap=cap,
        )
    return ScheduleSolution(
        state=state,
        iteration=schedule,
        pipelined=piped,
        alternatives=1,
        explored=explored,
        certificate=cert,
    )


class OptimalScheduler:
    """Off-line optimal scheduler for one cluster configuration.

    >>> from repro.graph.builders import chain_graph
    >>> from repro.sim.cluster import SINGLE_NODE_SMP
    >>> from repro.state import State
    >>> sched = OptimalScheduler(SINGLE_NODE_SMP(2))
    >>> sol = sched.solve(chain_graph([1.0, 1.0]), State(n_models=1))
    >>> sol.latency
    2.0
    >>> sol.period  # two processors, two seconds of work per iteration
    1.0
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        comm: Optional[CommModel] = None,
        max_workers: Optional[int] = None,
        max_solutions: int = 64,
        node_limit: int = 2_000_000,
        warm_start: bool = True,
        dominance: bool = True,
    ) -> None:
        self.cluster = cluster
        self.comm = comm
        self.max_workers = max_workers
        self.max_solutions = max_solutions
        self.node_limit = node_limit
        self.warm_start = warm_start
        self.dominance = dominance

    def enumerate(self, graph: TaskGraph, state: State) -> EnumerationResult:
        """Steps 1-2 of Figure 6: minimal latency L and the set S."""
        return enumerate_schedules(
            graph,
            state,
            self.cluster,
            comm=self.comm,
            max_workers=self.max_workers,
            max_solutions=self.max_solutions,
            node_limit=self.node_limit,
            warm_start=self.warm_start,
            dominance=self.dominance,
        )

    def request(self, graph: TaskGraph, state: State, tag=None):
        """A picklable :class:`~repro.core.parallel.SolveRequest` for this solve.

        The request snapshots all costs, so it can be executed in a worker
        process (:func:`repro.core.parallel.solve_many`) or digested into a
        cache key (:mod:`repro.core.cache`) without re-touching the graph.
        """
        from repro.core.parallel import make_request  # deferred: avoids import cycle

        return make_request(
            graph,
            state,
            self.cluster,
            self.comm,
            mode="solve",
            max_workers=self.max_workers,
            max_solutions=self.max_solutions,
            node_limit=self.node_limit,
            warm_start=self.warm_start,
            dominance=self.dominance,
            tag=tag,
        )

    def solve(self, graph: TaskGraph, state: State) -> ScheduleSolution:
        """All three steps: the throughput-best pipelining of a member of S."""
        return solution_from_enumeration(self.enumerate(graph, state), self.cluster)
