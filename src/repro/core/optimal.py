"""The full Figure 6 algorithm.

    Compute the minimal latency, L, for a single iteration
    Compute the set, S, of all single iteration schedules that exhibit
        latency, L
    Compute the multi-iteration schedule, M, created from multiple
        instances of a schedule from S

Step 1 and 2 are :func:`repro.core.enumerate.enumerate_schedules`; step 3
picks, among the members of S, the iteration schedule whose pipelined form
has the smallest initiation interval — i.e. maximal throughput subject to
minimal latency, the paper's stated priority ("without sacrificing latency,
of course we would like to attain maximum possible throughput").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.enumerate import EnumerationResult, enumerate_schedules
from repro.errors import InfeasibleSchedule
from repro.core.pipeline import best_pipelined
from repro.core.schedule import IterationSchedule, PipelinedSchedule
from repro.graph.taskgraph import TaskGraph
from repro.sim.cluster import ClusterSpec
from repro.sim.network import CommModel
from repro.state import State

__all__ = ["ScheduleSolution", "OptimalScheduler", "solution_from_enumeration"]

_EPS = 1e-9


@dataclass
class ScheduleSolution:
    """An optimal schedule for one application state.

    Attributes
    ----------
    state:
        The application state this solution is optimal for.
    iteration:
        The chosen member of S (minimal latency L).
    pipelined:
        The multi-iteration schedule M built from it.
    alternatives:
        Total count of distinct optimal iteration schedules (|S|).
    explored:
        Branch-and-bound nodes visited while computing S.
    """

    state: State
    iteration: IterationSchedule
    pipelined: PipelinedSchedule
    alternatives: int
    explored: int

    @property
    def latency(self) -> float:
        """Minimal single-iteration latency L (seconds)."""
        return self.iteration.latency

    @property
    def period(self) -> float:
        """Initiation interval of M (seconds)."""
        return self.pipelined.period

    @property
    def throughput(self) -> float:
        """Iterations completed per second under M."""
        return self.pipelined.throughput

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.state}: L={self.latency:.4g}s, II={self.period:.4g}s "
            f"(throughput {self.throughput:.4g}/s), |S|={self.alternatives}"
        )


def solution_from_enumeration(
    result: EnumerationResult, cluster: ClusterSpec
) -> ScheduleSolution:
    """Step 3 of Figure 6: pick the throughput-best pipelining of a member of S.

    Shared by :meth:`OptimalScheduler.solve` and the process-pool workers
    of :mod:`repro.core.parallel`, so both paths produce bit-identical
    solutions.
    """
    best: Optional[PipelinedSchedule] = None
    best_iter: Optional[IterationSchedule] = None
    for candidate in result.schedules:
        piped = best_pipelined(candidate, cluster, name=f"M[{candidate.name}]")
        if best is None or piped.period < best.period - _EPS:
            best = piped
            best_iter = candidate
    if best is None or best_iter is None:
        raise InfeasibleSchedule(
            f"enumeration for {result.state!r} produced no schedules to pipeline"
        )
    return ScheduleSolution(
        state=result.state,
        iteration=best_iter,
        pipelined=best,
        alternatives=result.optimal_count,
        explored=result.explored,
    )


class OptimalScheduler:
    """Off-line optimal scheduler for one cluster configuration.

    >>> from repro.graph.builders import chain_graph
    >>> from repro.sim.cluster import SINGLE_NODE_SMP
    >>> from repro.state import State
    >>> sched = OptimalScheduler(SINGLE_NODE_SMP(2))
    >>> sol = sched.solve(chain_graph([1.0, 1.0]), State(n_models=1))
    >>> sol.latency
    2.0
    >>> sol.period  # two processors, two seconds of work per iteration
    1.0
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        comm: Optional[CommModel] = None,
        max_workers: Optional[int] = None,
        max_solutions: int = 64,
        node_limit: int = 2_000_000,
        warm_start: bool = True,
        dominance: bool = True,
    ) -> None:
        self.cluster = cluster
        self.comm = comm
        self.max_workers = max_workers
        self.max_solutions = max_solutions
        self.node_limit = node_limit
        self.warm_start = warm_start
        self.dominance = dominance

    def enumerate(self, graph: TaskGraph, state: State) -> EnumerationResult:
        """Steps 1-2 of Figure 6: minimal latency L and the set S."""
        return enumerate_schedules(
            graph,
            state,
            self.cluster,
            comm=self.comm,
            max_workers=self.max_workers,
            max_solutions=self.max_solutions,
            node_limit=self.node_limit,
            warm_start=self.warm_start,
            dominance=self.dominance,
        )

    def request(self, graph: TaskGraph, state: State, tag=None):
        """A picklable :class:`~repro.core.parallel.SolveRequest` for this solve.

        The request snapshots all costs, so it can be executed in a worker
        process (:func:`repro.core.parallel.solve_many`) or digested into a
        cache key (:mod:`repro.core.cache`) without re-touching the graph.
        """
        from repro.core.parallel import make_request  # deferred: avoids import cycle

        return make_request(
            graph,
            state,
            self.cluster,
            self.comm,
            mode="solve",
            max_workers=self.max_workers,
            max_solutions=self.max_solutions,
            node_limit=self.node_limit,
            warm_start=self.warm_start,
            dominance=self.dominance,
            tag=tag,
        )

    def solve(self, graph: TaskGraph, state: State) -> ScheduleSolution:
        """All three steps: the throughput-best pipelining of a member of S."""
        return solution_from_enumeration(self.enumerate(graph, state), self.cluster)
