"""Schedule sensitivity to cost-model error.

Figure 6's inputs are *measured* execution times; measurements drift (new
compiler, cache effects, lighting changing the vision workload).  This
module quantifies how robust a pre-computed schedule is to such drift:

* :func:`perturbed_latency` — re-time a schedule's structure with every
  task cost scaled by independent factors and report the achieved latency
  (list-execution semantics, like :mod:`repro.core.replay`);
* :func:`sensitivity_profile` — Monte-Carlo sweep over seeded
  perturbations: how much latency degrades at a given cost-error level,
  and how often the perturbed-optimal schedule differs structurally.

This backs a practical guideline the paper leaves implicit: how accurate
do the Figure 6 timing inputs have to be before "optimal" stops meaning
anything?  (Answer for the tracker: quite inaccurate — see the ablation
benchmark — because the schedule's structure is stable over wide cost
ranges even though its II must be re-derived.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import ScheduleError
from repro.core.replay import variant_duration
from repro.core.schedule import IterationSchedule, Placement
from repro.graph.cost import CallableCost
from repro.graph.task import DataParallelSpec, Task
from repro.graph.taskgraph import TaskGraph
from repro.sim.cluster import ClusterSpec
from repro.sim.network import CommModel
from repro.state import State

__all__ = ["perturbed_graph", "perturbed_latency", "SensitivityProfile", "sensitivity_profile"]


def perturbed_graph(
    graph: TaskGraph, factors: dict[str, float], name: Optional[str] = None
) -> TaskGraph:
    """A copy of ``graph`` with each task's cost scaled by its factor.

    Data-parallel chunk costs scale by the same factor (the kernel got
    slower, so its chunks did too).  Missing tasks default to 1.0.
    """
    for task, f in factors.items():
        if f <= 0:
            raise ScheduleError(f"perturbation factor for {task!r} must be positive")
    out = TaskGraph(name or f"{graph.name}/perturbed")
    for ch in graph.channels:
        out.add_channel(ch)
    for t in graph.tasks:
        f = factors.get(t.name, 1.0)
        base_cost = t.cost
        cost = CallableCost(
            lambda s, _c=base_cost, _f=f: _c(s) * _f, label=f"{t.name}x{f:g}"
        )
        dp = t.data_parallel
        if dp is not None:
            base_chunk = dp.chunk_cost
            if base_chunk is not None:
                chunk_cost = lambda s, n, _b=base_chunk, _f=f: _b(s, n) * _f
            else:
                chunk_cost = None
            dp = DataParallelSpec(
                worker_counts=dp.worker_counts,
                chunk_cost=chunk_cost,
                split_cost=dp.split_cost * f,
                join_cost=dp.join_cost * f,
                per_chunk_overhead=dp.per_chunk_overhead * f,
                chunks_for=dp.chunks_for,
            )
        out.add_task(
            Task(
                t.name,
                cost=cost,
                inputs=t.inputs,
                outputs=t.outputs,
                data_parallel=dp,
                period=t.period,
                compute=t.compute,
            )
        )
    out.validate()
    return out


def perturbed_latency(
    iteration: IterationSchedule,
    graph: TaskGraph,
    state: State,
    factors: dict[str, float],
    comm: Optional[CommModel] = None,
) -> float:
    """Latency of a fixed schedule structure under perturbed costs."""
    noisy = perturbed_graph(graph, factors)
    # Re-time with list semantics (same as replay, on the noisy graph).
    free: dict[int, float] = {}
    done: dict[str, Placement] = {}
    for pl in iteration.placements:
        dur = variant_duration(noisy, pl.task, pl.variant, state)
        est = max((free.get(p, 0.0) for p in pl.procs), default=0.0)
        for pred in noisy.predecessors(pl.task):
            delay = 0.0
            if comm is not None:
                delay = comm.transfer_time(
                    noisy.comm_bytes(pred, pl.task, state),
                    done[pred].primary,
                    pl.procs[0],
                )
            est = max(est, done[pred].end + delay)
        new_pl = Placement(pl.task, pl.procs, est, dur, variant=pl.variant)
        done[pl.task] = new_pl
        for p in pl.procs:
            free[p] = new_pl.end
    return max(p.end for p in done.values())


@dataclass(frozen=True)
class SensitivityProfile:
    """Monte-Carlo robustness summary of one schedule.

    Attributes
    ----------
    error_level:
        Relative cost-error magnitude (each factor uniform in
        ``[1 - e, 1 + e]``).
    trials:
        Number of seeded perturbations evaluated.
    mean_regret / max_regret:
        Relative latency excess of the *fixed* schedule over the schedule
        that is optimal for the perturbed costs (0 = still optimal).
    structure_stable_fraction:
        Fraction of trials where the fixed structure remained optimal
        (regret below ``1e-9``).
    """

    error_level: float
    trials: int
    mean_regret: float
    max_regret: float
    structure_stable_fraction: float


def sensitivity_profile(
    iteration: IterationSchedule,
    graph: TaskGraph,
    state: State,
    cluster: ClusterSpec,
    error_level: float,
    trials: int = 20,
    seed: int = 0,
    comm: Optional[CommModel] = None,
    workers: int = 1,
) -> SensitivityProfile:
    """How much does cost error cost?  (Monte-Carlo over perturbations.)

    ``workers`` fans the per-trial re-optimizations out over worker
    processes (:func:`repro.core.parallel.solve_many`); the perturbation
    factors are drawn identically for every worker count, so the profile
    is reproducible regardless of parallelism.
    """
    from repro.core.parallel import make_request, solve_many

    if not 0.0 <= error_level < 1.0:
        raise ScheduleError(f"error_level must be in [0, 1), got {error_level}")
    if trials < 1:
        raise ScheduleError(f"trials must be >= 1, got {trials}")
    rng = random.Random(seed)
    all_factors = [
        {
            t.name: rng.uniform(1.0 - error_level, 1.0 + error_level)
            for t in graph.tasks
        }
        for _ in range(trials)
    ]
    fixed_latencies = [
        perturbed_latency(iteration, graph, state, factors, comm)
        for factors in all_factors
    ]
    requests = [
        make_request(
            perturbed_graph(graph, factors), state, cluster, comm,
            mode="enumerate", tag=trial,
        )
        for trial, factors in enumerate(all_factors)
    ]
    results = solve_many(requests, workers=workers)
    regrets = []
    stable = 0
    for fixed, result in zip(fixed_latencies, results):
        best = result.latency
        regret = fixed / best - 1.0 if best > 0 else 0.0
        regrets.append(max(regret, 0.0))
        if regret <= 1e-9:
            stable += 1
    return SensitivityProfile(
        error_level=error_level,
        trials=trials,
        mean_regret=sum(regrets) / len(regrets),
        max_regret=max(regrets),
        structure_stable_fraction=stable / trials,
    )
