"""Interpolating schedule lookup — §2.1's rejected alternative, as API.

"A well known technique for handling changing application states relies on
the property that small changes in states result in small changes in
desired scheduling strategy ... However, in our case, a seemingly small
state change could alter scheduling strategy dramatically."

:class:`InterpolatingTable` implements that well-known technique so the
ablation (and any downstream user with a *large or unknown* state space,
where the paper concedes interpolation is the right tool) can use it: a
lookup for an uncovered state replays the nearest covered state's schedule
structure under the requested state's costs and re-pipelines it.

The interpolation ablation quantifies when this loses to the exact table;
:class:`ScheduleTable` remains the paper's recommended mechanism.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import RegimeError
from repro.core.optimal import ScheduleSolution
from repro.core.replay import replay_pipelined, replay_with_state
from repro.core.table import ScheduleTable
from repro.graph.taskgraph import TaskGraph
from repro.sim.cluster import ClusterSpec
from repro.sim.network import CommModel
from repro.state import State

__all__ = ["InterpolatingTable"]


class InterpolatingTable:
    """Schedule lookup that falls back to the nearest covered state.

    Parameters
    ----------
    table:
        The underlying exact per-state table (sparse coverage allowed).
    graph / cluster / comm:
        Needed to re-time a borrowed schedule structure under the
        requested state.
    variable:
        The state variable distance is measured on.
    """

    def __init__(
        self,
        table: ScheduleTable,
        graph: TaskGraph,
        cluster: ClusterSpec,
        comm: Optional[CommModel] = None,
        variable: str = "n_models",
    ) -> None:
        self.table = table
        self.graph = graph
        self.cluster = cluster
        self.comm = comm
        self.variable = variable
        covered = [s for s in table.states() if variable in s]
        if not covered:
            raise RegimeError(f"table has no states keyed by {variable!r}")
        self._covered = sorted(covered, key=lambda s: s[variable])
        self.interpolations = 0  # diagnostic: how often we fell back

    def nearest_covered(self, state: State) -> State:
        """The covered state whose keyed variable is closest to ``state``'s."""
        try:
            x = state[self.variable]
        except KeyError:
            raise RegimeError(
                f"state {state} lacks variable {self.variable!r}"
            ) from None
        return min(self._covered, key=lambda s: (abs(s[self.variable] - x), s[self.variable]))

    def lookup(self, state: State) -> ScheduleSolution:
        """Exact solution if covered; otherwise the nearest one, replayed.

        The returned solution is re-timed and re-pipelined for ``state``
        (its latency/period are *achievable* values, not the neighbour's),
        but its structure is the neighbour's — which is precisely what
        interpolation means and where it can lose badly.
        """
        if state in self.table:
            return self.table.lookup(state)
        self.interpolations += 1
        base = self.table.lookup(self.nearest_covered(state))
        replayed_iter = replay_with_state(base.iteration, self.graph, state, self.comm)
        replayed_piped = replay_pipelined(
            base.iteration, self.graph, state, self.cluster, self.comm
        )
        return ScheduleSolution(
            state=state,
            iteration=replayed_iter,
            pipelined=replayed_piped,
            alternatives=base.alternatives,
            explored=0,  # nothing was searched for this state
        )

    def __repr__(self) -> str:
        return (
            f"InterpolatingTable({len(self._covered)} covered states, "
            f"{self.interpolations} interpolations)"
        )
