"""Schedule-transition policies.

On a state change the runtime must "perform a transition to the new
schedule" (§3.4).  The paper argues the cost is amortized because changes
are infrequent; the transition policies here make that cost explicit so the
regime experiments and the switch-frequency ablation can measure exactly
when the amortization argument holds.

Two policies:

* :class:`DrainTransition` — let every in-flight iteration finish under the
  old schedule, then start the new one.  Overhead is (roughly) the old
  schedule's latency plus a fixed reconfiguration cost; no work is lost.
* :class:`ImmediateTransition` — abandon in-flight iterations and start the
  new schedule at once.  Overhead is only the reconfiguration cost, but the
  iterations in flight (latency/period of them) are discarded — the
  lost-work accounting feeds the uniformity metric.
* :class:`CheckpointTransition` — abandon in-flight iterations like
  :class:`ImmediateTransition`, but *replay* their timestamps under the new
  schedule: the inputs still live in STM (items are only collected once
  every consumer consumed them), so the work is re-issued rather than lost.
  Overhead is the setup cost plus one new-schedule initiation interval per
  replayed iteration; no frames are dropped.  This is the policy the
  fault-tolerance subsystem (:mod:`repro.faults`) uses to survive a node
  crash without losing frames.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

from repro.core.optimal import ScheduleSolution

__all__ = [
    "TransitionEffect",
    "TransitionPolicy",
    "DrainTransition",
    "ImmediateTransition",
    "CheckpointTransition",
]


@dataclass(frozen=True)
class TransitionEffect:
    """What one schedule switch costs.

    Attributes
    ----------
    stall:
        Seconds during which no *new* iteration may start.
    lost_iterations:
        In-flight iterations abandoned (0 for draining transitions).
    replayed_iterations:
        In-flight iterations re-issued under the new schedule instead of
        dropped (checkpoint transitions); their cost is folded into
        ``stall``, not into ``lost_iterations``.
    """

    stall: float
    lost_iterations: int
    replayed_iterations: int = 0

    def __post_init__(self) -> None:
        if self.stall < 0 or self.lost_iterations < 0 or self.replayed_iterations < 0:
            raise ValueError(f"invalid transition effect {self}")


class TransitionPolicy(abc.ABC):
    """Strategy deciding the cost of switching between two solutions."""

    @abc.abstractmethod
    def effect(self, old: ScheduleSolution, new: ScheduleSolution) -> TransitionEffect:
        """Cost of switching from ``old``'s schedule to ``new``'s."""

    @staticmethod
    def in_flight(solution: ScheduleSolution) -> int:
        """Iterations simultaneously in flight under a pipelined schedule.

        Degenerate schedules carry no in-flight work: a period of zero (or
        less) means the schedule is not pipelined at all, and a latency of
        zero (an empty iteration — e.g. a graph with no tasks) means there
        is nothing *to* be in flight, so both report 0 rather than the
        pipeline-depth lower bound of 1.
        """
        if solution.period <= 0 or solution.latency <= 0:
            return 0
        return max(1, math.ceil(solution.latency / solution.period))


class DrainTransition(TransitionPolicy):
    """Finish in-flight work under the old schedule, then switch.

    Parameters
    ----------
    setup:
        Fixed reconfiguration cost after draining (thread re-pinning,
        dependence rewiring), in seconds.
    """

    def __init__(self, setup: float = 0.0) -> None:
        if setup < 0:
            raise ValueError(f"setup must be >= 0, got {setup}")
        self.setup = float(setup)

    def effect(self, old: ScheduleSolution, new: ScheduleSolution) -> TransitionEffect:
        return TransitionEffect(stall=old.latency + self.setup, lost_iterations=0)

    def __repr__(self) -> str:
        return f"DrainTransition(setup={self.setup:g})"


class ImmediateTransition(TransitionPolicy):
    """Abandon in-flight iterations; switch after only the setup cost."""

    def __init__(self, setup: float = 0.0) -> None:
        if setup < 0:
            raise ValueError(f"setup must be >= 0, got {setup}")
        self.setup = float(setup)

    def effect(self, old: ScheduleSolution, new: ScheduleSolution) -> TransitionEffect:
        return TransitionEffect(
            stall=self.setup,
            lost_iterations=self.in_flight(old),
        )

    def __repr__(self) -> str:
        return f"ImmediateTransition(setup={self.setup:g})"


class CheckpointTransition(TransitionPolicy):
    """Re-issue abandoned in-flight iterations under the new schedule.

    The STM substrate is the checkpoint: an iteration's input items remain
    live until every consumer consumed them, so an iteration abandoned
    mid-flight can be replayed from its source items.  The switch stalls
    for the setup cost plus the time the new schedule needs to re-admit
    the replayed iterations (one initiation interval each); nothing is
    lost.

    Parameters
    ----------
    setup:
        Fixed reconfiguration cost, in seconds.
    """

    def __init__(self, setup: float = 0.0) -> None:
        if setup < 0:
            raise ValueError(f"setup must be >= 0, got {setup}")
        self.setup = float(setup)

    def effect(self, old: ScheduleSolution, new: ScheduleSolution) -> TransitionEffect:
        replayed = self.in_flight(old)
        return TransitionEffect(
            stall=self.setup + replayed * max(new.period, 0.0),
            lost_iterations=0,
            replayed_iterations=replayed,
        )

    def __repr__(self) -> str:
        return f"CheckpointTransition(setup={self.setup:g})"
