"""Schedule-transition policies.

On a state change the runtime must "perform a transition to the new
schedule" (§3.4).  The paper argues the cost is amortized because changes
are infrequent; the transition policies here make that cost explicit so the
regime experiments and the switch-frequency ablation can measure exactly
when the amortization argument holds.

Two policies:

* :class:`DrainTransition` — let every in-flight iteration finish under the
  old schedule, then start the new one.  Overhead is (roughly) the old
  schedule's latency plus a fixed reconfiguration cost; no work is lost.
* :class:`ImmediateTransition` — abandon in-flight iterations and start the
  new schedule at once.  Overhead is only the reconfiguration cost, but the
  iterations in flight (latency/period of them) are discarded — the
  lost-work accounting feeds the uniformity metric.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

from repro.core.optimal import ScheduleSolution

__all__ = ["TransitionEffect", "TransitionPolicy", "DrainTransition", "ImmediateTransition"]


@dataclass(frozen=True)
class TransitionEffect:
    """What one schedule switch costs.

    Attributes
    ----------
    stall:
        Seconds during which no *new* iteration may start.
    lost_iterations:
        In-flight iterations abandoned (0 for draining transitions).
    """

    stall: float
    lost_iterations: int

    def __post_init__(self) -> None:
        if self.stall < 0 or self.lost_iterations < 0:
            raise ValueError(f"invalid transition effect {self}")


class TransitionPolicy(abc.ABC):
    """Strategy deciding the cost of switching between two solutions."""

    @abc.abstractmethod
    def effect(self, old: ScheduleSolution, new: ScheduleSolution) -> TransitionEffect:
        """Cost of switching from ``old``'s schedule to ``new``'s."""

    @staticmethod
    def in_flight(solution: ScheduleSolution) -> int:
        """Iterations simultaneously in flight under a pipelined schedule."""
        if solution.period <= 0:
            return 0
        return max(1, math.ceil(solution.latency / solution.period))


class DrainTransition(TransitionPolicy):
    """Finish in-flight work under the old schedule, then switch.

    Parameters
    ----------
    setup:
        Fixed reconfiguration cost after draining (thread re-pinning,
        dependence rewiring), in seconds.
    """

    def __init__(self, setup: float = 0.0) -> None:
        if setup < 0:
            raise ValueError(f"setup must be >= 0, got {setup}")
        self.setup = float(setup)

    def effect(self, old: ScheduleSolution, new: ScheduleSolution) -> TransitionEffect:
        return TransitionEffect(stall=old.latency + self.setup, lost_iterations=0)

    def __repr__(self) -> str:
        return f"DrainTransition(setup={self.setup:g})"


class ImmediateTransition(TransitionPolicy):
    """Abandon in-flight iterations; switch after only the setup cost."""

    def __init__(self, setup: float = 0.0) -> None:
        if setup < 0:
            raise ValueError(f"setup must be >= 0, got {setup}")
        self.setup = float(setup)

    def effect(self, old: ScheduleSolution, new: ScheduleSolution) -> TransitionEffect:
        return TransitionEffect(
            stall=self.setup,
            lost_iterations=self.in_flight(old),
        )

    def __repr__(self) -> str:
        return f"ImmediateTransition(setup={self.setup:g})"
