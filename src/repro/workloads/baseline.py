"""The online list-scheduler baseline: one floor for every policy rung.

§3.4's point is that regime switching is orthogonal to how each state's
schedule is found.  To *score* a policy rung across workloads we need a
method everyone can beat or tie: HEFT list scheduling
(:func:`repro.sched.listsched.list_schedule`) run per state — the online
scheduler an operator would deploy with no offline search at all.

:func:`score_policy` solves an instance's full table on a given rung,
verifies it with the method-independent W+S pass, and reports its mean
latency as a ratio of the baseline floor (``<= 1`` means at least as
good as the floor everywhere on average).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.optimal import OptimalScheduler
from repro.core.table import ScheduleTable
from repro.sched.listsched import list_schedule
from repro.sim.network import CommModel
from repro.state import State
from repro.workloads.base import WorkloadInstance, get_family
from repro.workloads.verify import verify_workload_table

__all__ = ["baseline_latencies", "PolicyScore", "score_policy"]


def baseline_latencies(
    instance: WorkloadInstance, comm: Optional[CommModel] = None
) -> dict[State, float]:
    """Per-state latency of the online HEFT baseline for ``instance``."""
    family = get_family(instance.family)
    graph = family.build_graph(instance)
    cluster = family.cluster(instance)
    out: dict[State, float] = {}
    for state in family.state_space(instance):
        sched = list_schedule(graph, state, cluster, comm=comm)
        out[state] = sched.latency
    return out


@dataclass
class PolicyScore:
    """One policy rung's score against the baseline floor on one instance.

    ``ratio`` is mean policy latency over mean baseline latency; the
    ladder guarantees ``ratio <= 1 + eps`` for bounded rungs and
    ``ratio <= 1`` for exact (HEFT is itself a feasible point of the
    exact search).
    """

    instance: str
    policy: str
    mean_latency: float
    baseline_mean: float
    ratio: float
    finding_counts: dict = field(default_factory=dict)
    per_state: dict = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when verification produced no gating findings."""
        return self.finding_counts.get("error", 0) == 0


def score_policy(
    instance: WorkloadInstance,
    policy: str,
    comm: Optional[CommModel] = None,
    cache=None,
    parallel: Optional[int] = None,
) -> PolicyScore:
    """Solve ``instance`` on ``policy`` and score it against the baseline.

    The solved table is verified with the full W+S pass
    (:func:`~repro.workloads.verify.verify_workload_table`); the returned
    score carries the finding counts so callers can gate on ``clean``.
    """
    family = get_family(instance.family)
    graph = family.build_graph(instance)
    space = family.state_space(instance)
    cluster = family.cluster(instance)
    scheduler = OptimalScheduler(cluster, comm=comm)
    table = ScheduleTable.build(
        graph, space, scheduler, policy=policy, cache=cache, parallel=parallel
    )
    report = verify_workload_table(instance, table, comm=comm)
    base = baseline_latencies(instance, comm=comm)
    per_state = {
        repr(state): {
            "latency": table.lookup(state).latency,
            "baseline": base[state],
        }
        for state in space
    }
    mean_lat = sum(v["latency"] for v in per_state.values()) / len(per_state)
    mean_base = sum(base.values()) / len(base)
    return PolicyScore(
        instance=instance.name,
        policy=policy,
        mean_latency=mean_lat,
        baseline_mean=mean_base,
        ratio=mean_lat / mean_base if mean_base > 0 else 1.0,
        finding_counts=report.counts(),
        per_state=per_state,
    )
