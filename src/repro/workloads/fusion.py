"""Sensor-fusion pipeline: wide fan-in, regime = number of live sensors.

The kiosk's speech side already models one microphone front-end
(:mod:`repro.apps.speech`); this family generalizes that prefix to an
array of ``max_sensors`` front-ends feeding one fusion stage — the wide
fan-in shape Barika et al.'s stream workflows stress and the tracker
(a chain with one small diamond) never exercises:

    trigger ──tick──> sensor0 ──obs0──┐
              tick──> sensor1 ──obs1──┼──> fuse ──fused──> classify
              tick──> ...     ──obsN──┘

The regime variable is ``n_sensors``, how many sensors are currently
live.  The graph topology is fixed at ``max_sensors`` (channels and tasks
cannot appear per-state); liveness scales *costs*: a live front-end pays
the full vad+features price, an idle one a keep-alive tick
(:func:`repro.apps.speech.sensor_frontend_cost`), and ``fuse`` is linear
in ``n_sensors`` and data-parallel *by sensor*.

Kernels are integer-exact: idle sensors emit zero vectors, so the fused
sum over all ``max_sensors`` observations equals the sum over live ones
bitwise, chunked or not.
"""

from __future__ import annotations

import random

import numpy as np

from repro.apps.speech import add_sensor_frontend
from repro.graph.channel import ChannelSpec
from repro.graph.cost import ConstantCost, LinearCost
from repro.graph.task import DataParallelSpec, Task
from repro.graph.taskgraph import TaskGraph
from repro.sim.cluster import ClusterSpec
from repro.state import State, StateSpace
from repro.workloads.base import WorkloadFamily, WorkloadInstance, register_family

__all__ = ["FusionFamily", "FUSION"]

_FEAT = 16  # feature-vector length per sensor


def _obs_vector(seed: int, index: int, ts: int) -> np.ndarray:
    """Sensor ``index``'s deterministic feature vector at timestamp ``ts``."""
    base = np.arange(_FEAT, dtype=np.int64)
    return (base * (index + 2) + ts * 7 + seed) % 101


def _sensor_slice(max_sensors: int, chunk: int, n_chunks: int) -> tuple[int, int]:
    lo = (max_sensors * chunk) // n_chunks
    hi = (max_sensors * (chunk + 1)) // n_chunks
    return lo, hi


class FusionFamily(WorkloadFamily):
    """Wide fan-in sensor fusion over speech-style front-ends."""

    name = "fusion"
    regime_variable = "n_sensors"
    dp_task = "fuse"

    def generate(self, seed: int, infeasible: bool = False) -> WorkloadInstance:
        rng = random.Random(f"fusion:{seed}")
        max_sensors = rng.choice([3, 4])
        per_sensor_fuse = round(rng.uniform(0.08, 0.20), 3)
        params = {
            "max_sensors": max_sensors,
            "trigger_cost": 0.002,
            "frontend_active": round(rng.uniform(0.010, 0.030), 3),
            "frontend_idle": 0.001,
            "fuse_base": round(rng.uniform(0.01, 0.03), 3),
            "per_sensor_fuse": per_sensor_fuse,
            "classify_cost": round(rng.uniform(0.008, 0.02), 3),
            "worker_counts": [2],
            "nodes": 2,
            "procs_per_node": 3,
        }
        # The serial sweep through every stage at the densest regime: the
        # throughput demand (source_period) sits above it for feasible
        # instances and far below the per-iteration work floor for the
        # deliberately infeasible ones, so the capacity certificate (W001)
        # must fire regardless of scheduling method.
        serial_heavy = (
            params["trigger_cost"]
            + params["frontend_active"] * max_sensors
            + params["fuse_base"]
            + per_sensor_fuse * max_sensors
            + params["classify_cost"]
        )
        if infeasible:
            total_procs = params["nodes"] * params["procs_per_node"]
            # Below even the perfectly-parallel work floor: no machine of
            # this size can drain one iteration per period.
            source_period = round(0.1 * serial_heavy / total_procs, 5)
            expected = ("W001",)
            deadline = round(4.0 * serial_heavy, 3)
        else:
            source_period = round(2.0 * serial_heavy, 3)
            expected = ()
            deadline = round(4.0 * serial_heavy + 1.0, 3)
        return WorkloadInstance(
            family=self.name,
            name=f"fusion-s{seed}" + ("-infeasible" if infeasible else ""),
            seed=seed,
            params=params,
            deadline=deadline,
            source_period=source_period,
            expected_findings=expected,
        )

    def build_graph(self, instance: WorkloadInstance) -> TaskGraph:
        p = instance.params
        max_sensors = p["max_sensors"]
        per_sensor = p["per_sensor_fuse"]

        def fuse_chunk_cost(state: State, n_chunks: int) -> float:
            n = state["n_sensors"]
            live = -(-n // n_chunks)  # ceil: live sensors the slowest chunk fuses
            return p["fuse_base"] / n_chunks + per_sensor * live

        def fuse_chunks(state: State, workers: int) -> int:
            return min(state["n_sensors"], workers)

        g = TaskGraph(instance.name)
        g.add_channel(ChannelSpec("tick", item_bytes=8))
        g.add_task(
            Task(
                "trigger",
                cost=ConstantCost(p["trigger_cost"]),
                outputs=["tick"],
                period=instance.source_period,
            )
        )
        obs_channels = [
            add_sensor_frontend(
                g,
                i,
                input_channel="tick",
                obs_bytes=_FEAT * 8,
                active_cost=p["frontend_active"],
                idle_cost=p["frontend_idle"],
                variable="n_sensors",
            )
            for i in range(max_sensors)
        ]
        g.add_channel(ChannelSpec("fused", item_bytes=_FEAT * 8))
        g.add_channel(ChannelSpec("label", item_bytes=16))
        g.add_channel(ChannelSpec("fusion_weights", item_bytes=_FEAT * 8, static=True))
        g.add_task(
            Task(
                "fuse",
                cost=LinearCost(
                    base=p["fuse_base"], slope=per_sensor, variable="n_sensors"
                ),
                inputs=[*obs_channels, "fusion_weights"],
                outputs=["fused"],
                data_parallel=DataParallelSpec(
                    worker_counts=p["worker_counts"],
                    chunk_cost=fuse_chunk_cost,
                    chunks_for=fuse_chunks,
                    split_cost=0.001,
                    join_cost=0.001,
                ),
            )
        )
        g.add_task(
            Task(
                "classify",
                cost=ConstantCost(p["classify_cost"]),
                inputs=["fused"],
                outputs=["label"],
            )
        )
        g.validate()
        return g

    def state_space(self, instance: WorkloadInstance) -> StateSpace:
        return StateSpace.range("n_sensors", 1, instance.params["max_sensors"])

    def cluster(self, instance: WorkloadInstance) -> ClusterSpec:
        p = instance.params
        return ClusterSpec(nodes=p["nodes"], procs_per_node=p["procs_per_node"])

    def attach_kernels(
        self, graph: TaskGraph, instance: WorkloadInstance
    ) -> tuple[TaskGraph, dict]:
        p = instance.params
        seed, max_sensors = instance.seed, p["max_sensors"]
        counter = {"ts": 0}

        def trigger_compute(state: State, inputs: dict) -> dict:
            ts = counter["ts"]
            counter["ts"] += 1
            return {"tick": ts}

        def make_sensor(index: int):
            def compute(state: State, inputs: dict) -> dict:
                ts = inputs["tick"]
                if index < state["n_sensors"]:
                    obs = _obs_vector(seed, index, ts)
                else:
                    obs = np.zeros(_FEAT, dtype=np.int64)
                return {f"obs{index}": obs}

            return compute

        def fuse_compute(state: State, inputs: dict) -> dict:
            total = np.zeros(_FEAT, dtype=np.int64)
            for i in range(max_sensors):
                total = total + inputs[f"obs{i}"]
            return {"fused": total * inputs["fusion_weights"]}

        def fuse_chunk(state: State, inputs: dict, chunk: int, n_chunks: int):
            lo, hi = _sensor_slice(max_sensors, chunk, n_chunks)
            total = np.zeros(_FEAT, dtype=np.int64)
            for i in range(lo, hi):
                total = total + inputs[f"obs{i}"]
            return total

        def fuse_join(state: State, inputs: dict, partials: list) -> dict:
            total = np.zeros(_FEAT, dtype=np.int64)
            for part in partials:
                total = total + part
            return {"fused": total * inputs["fusion_weights"]}

        def classify_compute(state: State, inputs: dict) -> dict:
            return {"label": int(inputs["fused"].sum() % 9973)}

        computes = {"trigger": trigger_compute, "fuse": fuse_compute,
                    "classify": classify_compute}
        for i in range(max_sensors):
            computes[f"sensor{i}"] = make_sensor(i)

        out = TaskGraph(f"{graph.name}/live")
        for ch in graph.channels:
            out.add_channel(ch)
        for t in graph.tasks:
            chunk_fn, join_fn = (
                (fuse_chunk, fuse_join) if t.name == "fuse" else (None, None)
            )
            out.add_task(
                Task(
                    t.name,
                    cost=t.cost,
                    inputs=t.inputs,
                    outputs=t.outputs,
                    data_parallel=t.data_parallel,
                    period=t.period,
                    compute=computes[t.name],
                    compute_chunk=chunk_fn,
                    compute_join=join_fn,
                )
            )
        out.validate()
        weights = (np.arange(_FEAT, dtype=np.int64) + seed) % 13 + 1
        return out, {"fusion_weights": weights}


FUSION = register_family(FusionFamily())
