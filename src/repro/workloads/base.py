"""Workload families and problem instances — the diversity suite's spine.

The color tracker was the only end-to-end application, so every mechanism
(policy ladder, fleet, faults, hot-path kernels) was validated against one
schedule shape.  A :class:`WorkloadFamily` packages a *class* of
constrained-dynamic applications the tracker never exercises — a
heterogeneous-platform blocked matrix multiply, a wide fan-in sensor-fusion
pipeline, a bursty web-inference graph — behind one uniform surface:

* ``generate(seed)`` draws a seeded, deterministic
  :class:`WorkloadInstance` (the dataset unit; frozen copies live under
  ``repro/workloads/data/``);
* ``build_graph(instance)`` / ``state_space(instance)`` /
  ``cluster(instance)`` produce exactly the Figure 6 inputs, so every
  existing mechanism (``ScheduleTable.build(policy=)``, substrates,
  analysis, fleet) runs a workload unchanged;
* ``attach_kernels(graph, instance)`` returns a live copy with real
  numpy compute kernels for the threaded/process substrates.

Instances carry *method-independent* service requirements — a latency
``deadline`` and a ``source_period`` (throughput demand) — that the
verifier (:mod:`repro.workloads.verify`) checks against certificates
re-derived from the graph and cluster alone, never from a solver artifact.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import GraphError
from repro.graph.taskgraph import TaskGraph
from repro.sim.cluster import ClusterSpec
from repro.state import StateSpace

__all__ = [
    "WorkloadInstance",
    "WorkloadFamily",
    "FAMILIES",
    "get_family",
    "register_family",
]


@dataclass(frozen=True)
class WorkloadInstance:
    """One concrete problem instance of a workload family.

    Attributes
    ----------
    family:
        Family name (``"matmul"``, ``"fusion"``, ``"webinfer"``).
    name:
        Unique instance id, e.g. ``"matmul-s3"``.
    seed:
        Generator seed; ``params`` is a pure function of it, and the golden
        tests re-derive params from the seed to prove it.
    params:
        Family-specific generator output (block costs, sensor counts,
        arrival rates, ...).  JSON-serializable scalars only.
    deadline:
        Latency requirement in seconds: every state's single-iteration
        latency L must satisfy ``L <= deadline``.  ``None`` = no deadline.
    source_period:
        Throughput requirement: the source fires every ``source_period``
        seconds, so the pipelined initiation interval must keep up.
        ``None`` = free-running.
    expected_findings:
        Verifier rule ids this instance is *expected* to trigger — empty
        for feasible instances; deliberately infeasible dataset entries
        record e.g. ``("W002",)`` and the golden tests assert the verifier
        actually fails them.
    """

    family: str
    name: str
    seed: int
    params: dict = field(default_factory=dict)
    deadline: Optional[float] = None
    source_period: Optional[float] = None
    expected_findings: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        """JSON-ready form (the frozen-dataset record)."""
        return {
            "family": self.family,
            "name": self.name,
            "seed": self.seed,
            "params": dict(self.params),
            "deadline": self.deadline,
            "source_period": self.source_period,
            "expected_findings": list(self.expected_findings),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadInstance":
        return cls(
            family=data["family"],
            name=data["name"],
            seed=int(data["seed"]),
            params=dict(data.get("params", {})),
            deadline=data.get("deadline"),
            source_period=data.get("source_period"),
            expected_findings=tuple(data.get("expected_findings", ())),
        )


class WorkloadFamily(abc.ABC):
    """One class of constrained-dynamic applications.

    Subclasses define the graph shape, the regime variable, the platform
    and the seeded instance generator; everything downstream (tables,
    substrates, verifier, baseline, benches) is family-agnostic.
    """

    #: Family name; also the registry key and the dataset file stem.
    name: str = "abstract"
    #: The state variable that drives regime changes.
    regime_variable: str = ""

    @abc.abstractmethod
    def generate(self, seed: int, infeasible: bool = False) -> WorkloadInstance:
        """Draw a deterministic instance from ``seed``.

        ``infeasible=True`` produces an instance whose service
        requirements provably cannot be met — the verifier must fail it.
        """

    @abc.abstractmethod
    def build_graph(self, instance: WorkloadInstance) -> TaskGraph:
        """The instance's task graph (validated, cost models attached)."""

    @abc.abstractmethod
    def state_space(self, instance: WorkloadInstance) -> StateSpace:
        """The instance's regime space."""

    @abc.abstractmethod
    def cluster(self, instance: WorkloadInstance) -> ClusterSpec:
        """The platform the instance targets (may be heterogeneous)."""

    @abc.abstractmethod
    def attach_kernels(
        self, graph: TaskGraph, instance: WorkloadInstance
    ) -> tuple[TaskGraph, dict]:
        """A live copy of ``graph`` with numpy kernels + static inputs.

        Returns ``(live_graph, static_inputs)`` ready for
        ``StaticExecutor(runtime="threaded"|"process", static_inputs=...)``.
        Kernels are integer-exact so every substrate produces bitwise
        identical outputs (the conformance contract).
        """

    #: The task name carrying data-parallel variants (for dp conformance
    #: schedules); None when the family has no dp task.
    dp_task: Optional[str] = None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(regime={self.regime_variable!r})"


#: The family registry; populated by the family modules at import time.
FAMILIES: dict[str, WorkloadFamily] = {}


def register_family(family: WorkloadFamily) -> WorkloadFamily:
    """Register a family instance under its name (idempotent per name)."""
    if not family.name or family.name == "abstract":
        raise GraphError("workload family needs a concrete name")
    FAMILIES[family.name] = family
    return family


def get_family(name: str) -> WorkloadFamily:
    """The registered family called ``name``."""
    # Importing the package registers the built-ins; do it lazily so a
    # family module can import this one without a cycle.
    from repro import workloads  # noqa: F401  (import side effect)

    try:
        return FAMILIES[name]
    except KeyError:
        raise GraphError(
            f"unknown workload family {name!r}; have {sorted(FAMILIES)}"
        ) from None
