"""repro.workloads — the constrained-dynamic workload diversity suite.

Three app-graph families beyond the color tracker, each with a seeded
instance dataset, a method-independent verifier (W rules) and an online
list-scheduler baseline:

* :mod:`~repro.workloads.matmul` — heterogeneous-platform blocked matrix
  multiply (regime: active row-band count);
* :mod:`~repro.workloads.fusion` — wide fan-in sensor fusion over
  speech-style front-ends (regime: live sensor count);
* :mod:`~repro.workloads.webinfer` — a bursty web-inference tier
  (regime: request arrival rate).

Importing this package registers all built-in families in
:data:`~repro.workloads.base.FAMILIES`.
"""

from repro.workloads.base import (
    FAMILIES,
    WorkloadFamily,
    WorkloadInstance,
    get_family,
    register_family,
)
from repro.workloads.baseline import PolicyScore, baseline_latencies, score_policy
from repro.workloads.dataset import (
    DATASET_SEEDS,
    freeze_all,
    load_all,
    load_dataset,
    regenerate,
)
from repro.workloads.fusion import FUSION, FusionFamily
from repro.workloads.matmul import MATMUL, MatMulFamily
from repro.workloads.verify import (
    capacity_bound,
    certify_instance,
    latency_bound,
    verify_workload_table,
)
from repro.workloads.webinfer import WEBINFER, WebInferFamily

__all__ = [
    "FAMILIES",
    "WorkloadFamily",
    "WorkloadInstance",
    "get_family",
    "register_family",
    "MatMulFamily",
    "MATMUL",
    "FusionFamily",
    "FUSION",
    "WebInferFamily",
    "WEBINFER",
    "capacity_bound",
    "latency_bound",
    "certify_instance",
    "verify_workload_table",
    "baseline_latencies",
    "PolicyScore",
    "score_policy",
    "DATASET_SEEDS",
    "load_dataset",
    "load_all",
    "regenerate",
    "freeze_all",
]
