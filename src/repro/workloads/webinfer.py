"""Bursty web-inference graph: regime = request arrival rate.

Barika et al.'s adaptive stream workflows are driven by *burstiness* —
the work per tick swings with arrival rate, and a scheduler tuned for the
trough drowns at the peak.  This family models one inference tier:

    ingest ──requests──> sanitize ──batch──> infer (dp) ──scores──┐
       └─────requests──> audit ───────────── audit_log ───────────┴─> respond

The regime variable is ``arrival_rate``: how many requests arrive in one
source tick (the batch the tier must clear before the next burst).  The
source fires every ``source_period`` seconds — the throughput demand the
verifier checks against the machine's capacity.  ``infer`` is the heavy
stage, linear in the rate and data-parallel by request; ``audit`` is the
compliance side-channel every request must also clear (the diamond joins
at ``respond``).

Kernels are integer-exact: the batch is an int64 matrix of
``arrival_rate`` rows, chunked by row range, so chunked inference equals
serial inference bitwise.
"""

from __future__ import annotations

import random

import numpy as np

from repro.graph.channel import ChannelSpec
from repro.graph.cost import ConstantCost, LinearCost
from repro.graph.task import DataParallelSpec, Task
from repro.graph.taskgraph import TaskGraph
from repro.sim.cluster import ClusterSpec
from repro.state import State, StateSpace
from repro.workloads.base import WorkloadFamily, WorkloadInstance, register_family

__all__ = ["WebInferFamily", "WEBINFER"]

_REQ_FEAT = 24  # features per request
_CLASSES = 8  # model output width


def _request_batch(seed: int, ts: int, rate: int) -> np.ndarray:
    """The tick-``ts`` burst: ``rate`` deterministic int64 request rows."""
    base = np.arange(rate * _REQ_FEAT, dtype=np.int64).reshape(rate, _REQ_FEAT)
    return (base * (seed % 5 + 3) + ts * 11) % 113


def _row_slice(rows: int, chunk: int, n_chunks: int) -> tuple[int, int]:
    return (rows * chunk) // n_chunks, (rows * (chunk + 1)) // n_chunks


class WebInferFamily(WorkloadFamily):
    """One web-inference tier under bursty arrivals."""

    name = "webinfer"
    regime_variable = "arrival_rate"
    dp_task = "infer"

    def generate(self, seed: int, infeasible: bool = False) -> WorkloadInstance:
        rng = random.Random(f"webinfer:{seed}")
        max_rate = rng.choice([4, 6, 8])
        per_request = round(rng.uniform(0.05, 0.15), 3)
        params = {
            "max_rate": max_rate,
            "ingest_cost": 0.003,
            "sanitize_base": round(rng.uniform(0.005, 0.015), 3),
            "sanitize_slope": round(rng.uniform(0.002, 0.008), 4),
            "audit_cost": round(rng.uniform(0.01, 0.04), 3),
            "infer_base": round(rng.uniform(0.01, 0.04), 3),
            "per_request": per_request,
            "respond_base": 0.004,
            "respond_slope": 0.002,
            "worker_counts": [2, 4],
            "nodes": 1,
            "procs_per_node": 6,
        }
        serial_heavy = (
            params["ingest_cost"]
            + params["sanitize_base"]
            + params["sanitize_slope"] * max_rate
            + params["infer_base"]
            + per_request * max_rate
            + params["audit_cost"]
            + params["respond_base"]
            + params["respond_slope"] * max_rate
        )
        if infeasible:
            total_procs = params["nodes"] * params["procs_per_node"]
            # An arrival period below the perfectly-parallel work floor at
            # peak rate: the capacity certificate (W001) must reject it.
            source_period = round(0.1 * serial_heavy / total_procs, 5)
            expected = ("W001",)
            deadline = round(4.0 * serial_heavy, 3)
        else:
            source_period = round(2.0 * serial_heavy, 3)
            expected = ()
            deadline = round(4.0 * serial_heavy + 1.0, 3)
        return WorkloadInstance(
            family=self.name,
            name=f"webinfer-s{seed}" + ("-infeasible" if infeasible else ""),
            seed=seed,
            params=params,
            deadline=deadline,
            source_period=source_period,
            expected_findings=expected,
        )

    def build_graph(self, instance: WorkloadInstance) -> TaskGraph:
        p = instance.params
        per_request = p["per_request"]

        def infer_chunk_cost(state: State, n_chunks: int) -> float:
            rate = state["arrival_rate"]
            rows = -(-rate // n_chunks)  # ceil: requests the slowest chunk serves
            return p["infer_base"] / n_chunks + per_request * rows

        def infer_chunks(state: State, workers: int) -> int:
            return min(state["arrival_rate"], workers)

        g = TaskGraph(instance.name)
        g.add_channel(
            ChannelSpec("requests", item_bytes=lambda s: s["arrival_rate"] * _REQ_FEAT * 8)
        )
        g.add_channel(
            ChannelSpec("batch", item_bytes=lambda s: s["arrival_rate"] * _REQ_FEAT * 8)
        )
        g.add_channel(
            ChannelSpec("scores", item_bytes=lambda s: s["arrival_rate"] * _CLASSES * 8)
        )
        g.add_channel(ChannelSpec("audit_log", item_bytes=32))
        g.add_channel(ChannelSpec("responses", item_bytes=64))
        g.add_channel(
            ChannelSpec("model_weights", item_bytes=_REQ_FEAT * _CLASSES * 8, static=True)
        )
        g.add_task(
            Task(
                "ingest",
                cost=ConstantCost(p["ingest_cost"]),
                outputs=["requests"],
                period=instance.source_period,
            )
        )
        g.add_task(
            Task(
                "sanitize",
                cost=LinearCost(
                    base=p["sanitize_base"],
                    slope=p["sanitize_slope"],
                    variable="arrival_rate",
                ),
                inputs=["requests"],
                outputs=["batch"],
            )
        )
        g.add_task(
            Task(
                "audit",
                cost=ConstantCost(p["audit_cost"]),
                inputs=["requests"],
                outputs=["audit_log"],
            )
        )
        g.add_task(
            Task(
                "infer",
                cost=LinearCost(
                    base=p["infer_base"], slope=per_request, variable="arrival_rate"
                ),
                inputs=["batch", "model_weights"],
                outputs=["scores"],
                data_parallel=DataParallelSpec(
                    worker_counts=p["worker_counts"],
                    chunk_cost=infer_chunk_cost,
                    chunks_for=infer_chunks,
                    split_cost=0.001,
                    join_cost=0.001,
                ),
            )
        )
        g.add_task(
            Task(
                "respond",
                cost=LinearCost(
                    base=p["respond_base"],
                    slope=p["respond_slope"],
                    variable="arrival_rate",
                ),
                inputs=["scores", "audit_log"],
                outputs=["responses"],
            )
        )
        g.validate()
        return g

    def state_space(self, instance: WorkloadInstance) -> StateSpace:
        return StateSpace.range("arrival_rate", 1, instance.params["max_rate"])

    def cluster(self, instance: WorkloadInstance) -> ClusterSpec:
        p = instance.params
        return ClusterSpec(nodes=p["nodes"], procs_per_node=p["procs_per_node"])

    def attach_kernels(
        self, graph: TaskGraph, instance: WorkloadInstance
    ) -> tuple[TaskGraph, dict]:
        seed = instance.seed
        counter = {"ts": 0}

        def ingest_compute(state: State, inputs: dict) -> dict:
            ts = counter["ts"]
            counter["ts"] += 1
            return {"requests": _request_batch(seed, ts, state["arrival_rate"])}

        def sanitize_compute(state: State, inputs: dict) -> dict:
            return {"batch": inputs["requests"] % 97}

        def audit_compute(state: State, inputs: dict) -> dict:
            return {"audit_log": int(inputs["requests"].sum() % 65521)}

        def infer_compute(state: State, inputs: dict) -> dict:
            return {"scores": inputs["batch"] @ inputs["model_weights"]}

        def infer_chunk(state: State, inputs: dict, chunk: int, n_chunks: int):
            rows = inputs["batch"].shape[0]
            lo, hi = _row_slice(rows, chunk, n_chunks)
            return inputs["batch"][lo:hi] @ inputs["model_weights"]

        def infer_join(state: State, inputs: dict, partials: list) -> dict:
            return {"scores": np.vstack(partials)}

        def respond_compute(state: State, inputs: dict) -> dict:
            digest = int(inputs["scores"].sum() % 999983)
            return {"responses": digest * 31 + inputs["audit_log"] % 31}

        computes = {
            "ingest": ingest_compute,
            "sanitize": sanitize_compute,
            "audit": audit_compute,
            "infer": infer_compute,
            "respond": respond_compute,
        }
        out = TaskGraph(f"{graph.name}/live")
        for ch in graph.channels:
            out.add_channel(ch)
        for t in graph.tasks:
            chunk_fn, join_fn = (
                (infer_chunk, infer_join) if t.name == "infer" else (None, None)
            )
            out.add_task(
                Task(
                    t.name,
                    cost=t.cost,
                    inputs=t.inputs,
                    outputs=t.outputs,
                    data_parallel=t.data_parallel,
                    period=t.period,
                    compute=computes[t.name],
                    compute_chunk=chunk_fn,
                    compute_join=join_fn,
                )
            )
        out.validate()
        weights = (
            np.arange(_REQ_FEAT * _CLASSES, dtype=np.int64).reshape(_REQ_FEAT, _CLASSES)
            + seed
        ) % 23 + 1
        return out, {"model_weights": weights}


WEBINFER = register_family(WebInferFamily())
