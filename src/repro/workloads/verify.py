"""Method-independent workload verification (the W rules).

A workload instance carries *service requirements* — a latency deadline
and a source period (throughput demand).  This pass re-derives
feasibility certificates from the graph and cluster **alone**, never from
a solver artifact, so the same check fails a broken instance no matter
which policy rung produced the schedules:

* **W001 throughput-infeasible** — the source period is below the
  capacity lower bound: the least per-iteration work (minimum-area
  variant per task) over the machine's total speed.  No schedule by any
  method can drain iterations that fast.
* **W002 deadline-unachievable** — the deadline is below the
  best-variant critical-path bound at the fastest node speed (the same
  certificate S008 holds claimed latencies against).
* **W003 deadline-violated** — a *concrete* table entry misses an
  achievable deadline; re-solving on a tighter rung can fix this one.

:func:`verify_workload_table` composes these with the existing S-rule
pass (:func:`repro.analysis.schedverify.verify_schedule_table`), so one
report certifies both the instance and the artifact.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.analysis.findings import AnalysisReport
from repro.analysis.schedverify import verify_schedule_table
from repro.core.table import ScheduleTable
from repro.graph.taskgraph import TaskGraph
from repro.sim.cluster import ClusterSpec
from repro.sim.network import CommModel
from repro.state import State
from repro.workloads.base import WorkloadInstance, get_family

__all__ = [
    "capacity_bound",
    "latency_bound",
    "certify_instance",
    "verify_workload_table",
]

_EPS = 1e-9


def capacity_bound(graph: TaskGraph, state: State, cluster: ClusterSpec) -> float:
    """Lower bound on any schedule's initiation interval in ``state``.

    One iteration needs at least the minimum-area variant's work from
    every task; the machine retires at most ``sum(processor speeds)``
    nominal work per second.  The ratio bounds the II from below for
    *every* scheduling method.
    """
    total_speed = sum(p.speed for p in cluster.processors)
    work = sum(
        min(v.area for v in graph.task(name).variants(state, cluster.procs_per_node))
        for name in graph.task_names
    )
    return work / total_speed


def latency_bound(graph: TaskGraph, state: State, cluster: ClusterSpec) -> float:
    """Lower bound on any schedule's latency in ``state``.

    The best-variant critical path run entirely at the fastest node
    speed — the same certificate S008 uses against claimed latencies.
    """
    path = graph.critical_path(
        state, use_best_variants=True, max_workers=cluster.procs_per_node
    )
    return path / max(cluster.node_speeds)


def certify_instance(
    instance: WorkloadInstance,
    report: Optional[AnalysisReport] = None,
) -> AnalysisReport:
    """Check an instance's service requirements against machine capacity.

    Emits W001/W002 per violating state.  Pure function of the instance:
    the graph, state space and cluster are rebuilt from the family, so a
    frozen dataset entry is certified without trusting anything solved.
    """
    report = report if report is not None else AnalysisReport()
    family = get_family(instance.family)
    graph = family.build_graph(instance)
    cluster = family.cluster(instance)
    for state in family.state_space(instance):
        loc = f"workload:{instance.name}/state:{state!r}"
        if instance.source_period is not None:
            floor = capacity_bound(graph, state, cluster)
            if instance.source_period < floor - _EPS:
                report.add(
                    "W001",
                    loc,
                    f"source period {instance.source_period:g}s is below the "
                    f"capacity bound {floor:g}s (min work / total speed)",
                )
        if instance.deadline is not None:
            floor = latency_bound(graph, state, cluster)
            if instance.deadline < floor - _EPS:
                report.add(
                    "W002",
                    loc,
                    f"deadline {instance.deadline:g}s is below the "
                    f"critical-path bound {floor:g}s",
                )
    return report


def verify_workload_table(
    instance: WorkloadInstance,
    table: ScheduleTable,
    comm: Optional[CommModel] = None,
    states: Optional[Iterable[State]] = None,
    report: Optional[AnalysisReport] = None,
) -> AnalysisReport:
    """Certify instance requirements AND a solved table against them.

    Runs :func:`certify_instance` (W001/W002), the full S-rule pass over
    the table, and W003 for any entry whose realized latency misses the
    instance deadline.
    """
    report = certify_instance(instance, report=report)
    family = get_family(instance.family)
    graph = family.build_graph(instance)
    cluster = family.cluster(instance)
    space = list(states) if states is not None else list(family.state_space(instance))
    verify_schedule_table(table, graph, space, cluster, comm=comm, report=report)
    if instance.deadline is not None:
        for state in space:
            if state not in table:
                continue  # S010 already covers the gap
            sol = table.lookup(state)
            if sol.latency > instance.deadline + _EPS:
                report.add(
                    "W003",
                    f"workload:{instance.name}/state:{state!r}",
                    f"schedule latency {sol.latency:g}s exceeds the deadline "
                    f"{instance.deadline:g}s",
                )
    return report
