"""Heterogeneous-platform blocked matrix multiply (Beaumont & Marchal shape).

The dynamic-scheduling analysis of Beaumont & Marchal studies C = A·B cut
into row bands distributed over processors of *unequal speed*; the regime
variable here is ``n_blocks`` — how many row bands of A are active this
iteration (the streamed problem size).  The graph is a diamond the tracker
never exercises:

    split ── a_bands ──> multiply ── partials ──┐
      └───── a_bands ──> norm ───── scale ──────┴──> reduce ──> check

* ``multiply`` is the heavy task, linear in ``n_blocks``, data-parallel by
  row band (one chunk per band, at most ``n_blocks`` chunks — the
  data-parallel degree *shrinks with the regime*, the opposite of the
  tracker's fixed FP×MP menu);
* the platform is heterogeneous: two node classes whose relative speeds
  come from the instance seed, so placement choice (fast vs slow node) is
  part of every schedule's quality — exactly the Beaumont & Marchal
  trade-off;
* B is a static configuration channel (written once, no precedence).

Kernels are integer-exact (int64 matrices), so band-wise products equal
the whole product bitwise and every substrate agrees on outputs.
"""

from __future__ import annotations

import random

import numpy as np

from repro.graph.channel import ChannelSpec
from repro.graph.cost import ConstantCost, LinearCost
from repro.graph.task import DataParallelSpec, Task
from repro.graph.taskgraph import TaskGraph
from repro.sim.cluster import ClusterSpec
from repro.state import State, StateSpace
from repro.workloads.base import WorkloadFamily, WorkloadInstance, register_family

__all__ = ["MatMulFamily", "MATMUL"]


def _band_slice(n_blocks: int, block_rows: int, chunk: int, n_chunks: int):
    """Row range of ``chunk`` when ``n_blocks`` bands split into ``n_chunks``."""
    lo_band = (n_blocks * chunk) // n_chunks
    hi_band = (n_blocks * (chunk + 1)) // n_chunks
    return lo_band * block_rows, hi_band * block_rows


def _a_matrix(seed: int, ts: int, rows: int, dim: int) -> np.ndarray:
    """The iteration-``ts`` input matrix: deterministic, integer, seeded."""
    base = np.arange(rows * dim, dtype=np.int64).reshape(rows, dim)
    return (base * (seed % 7 + 2) + ts) % 97


class MatMulFamily(WorkloadFamily):
    """Blocked C = A·B on a two-class heterogeneous cluster."""

    name = "matmul"
    regime_variable = "n_blocks"
    dp_task = "multiply"

    def generate(self, seed: int, infeasible: bool = False) -> WorkloadInstance:
        # String seeds hash deterministically inside random (sha512), unlike
        # tuples, which go through PYTHONHASHSEED-randomized hash().
        rng = random.Random(f"matmul:{seed}")
        max_blocks = rng.choice([4, 5, 6])
        block_cost = round(rng.uniform(0.15, 0.40), 3)
        params = {
            "max_blocks": max_blocks,
            "block_rows": 8,
            "dim": 32,
            "block_cost": block_cost,
            "split_cost": round(rng.uniform(0.004, 0.012), 4),
            "norm_cost": round(rng.uniform(0.02, 0.06), 3),
            "reduce_base": round(rng.uniform(0.01, 0.03), 3),
            "reduce_slope": round(rng.uniform(0.005, 0.02), 4),
            "check_cost": 0.005,
            "worker_counts": [2, rng.choice([3, 4])],
            "slow_speed": round(rng.uniform(0.4, 0.8), 2),
            "procs_per_node": 4,
        }
        # The serial floor at the densest regime: split + norm/multiply +
        # reduce + check with no parallelism at all.  A feasible deadline
        # sits comfortably above it; the infeasible variant demands a
        # latency below even the best-variant critical path.
        serial_heavy = params["split_cost"] + block_cost * max_blocks
        if infeasible:
            deadline = round(0.5 * block_cost, 4)  # < one block's work
            expected = ("W002",)
        else:
            deadline = round(2.0 * serial_heavy + 1.0, 3)
            expected = ()
        return WorkloadInstance(
            family=self.name,
            name=f"matmul-s{seed}" + ("-infeasible" if infeasible else ""),
            seed=seed,
            params=params,
            deadline=deadline,
            source_period=None,
            expected_findings=expected,
        )

    def build_graph(self, instance: WorkloadInstance) -> TaskGraph:
        p = instance.params
        block_cost = p["block_cost"]
        band_bytes = p["block_rows"] * p["dim"] * 8

        def multiply_chunk_cost(state: State, n_chunks: int) -> float:
            # One chunk multiplies ceil(n_blocks / n_chunks) bands; integer
            # band counts make the model exact, not an idealized division.
            n = state["n_blocks"]
            bands = -(-n // n_chunks)  # ceil
            return block_cost * bands

        def multiply_chunks(state: State, workers: int) -> int:
            return min(state["n_blocks"], workers)

        g = TaskGraph(instance.name)
        g.add_channel(
            ChannelSpec("a_bands", item_bytes=lambda s: s["n_blocks"] * band_bytes)
        )
        g.add_channel(
            ChannelSpec("partials", item_bytes=lambda s: s["n_blocks"] * band_bytes)
        )
        g.add_channel(ChannelSpec("scale", item_bytes=8))
        g.add_channel(ChannelSpec("product", item_bytes=p["dim"] * 8))
        g.add_channel(ChannelSpec("result", item_bytes=16))
        g.add_channel(
            ChannelSpec("b_matrix", item_bytes=p["dim"] * p["dim"] * 8, static=True)
        )
        g.add_task(
            Task(
                "split",
                cost=ConstantCost(p["split_cost"]),
                outputs=["a_bands"],
                period=instance.source_period,
            )
        )
        g.add_task(
            Task(
                "multiply",
                cost=LinearCost(base=0.0, slope=block_cost, variable="n_blocks"),
                inputs=["a_bands", "b_matrix"],
                outputs=["partials"],
                data_parallel=DataParallelSpec(
                    worker_counts=p["worker_counts"],
                    chunk_cost=multiply_chunk_cost,
                    chunks_for=multiply_chunks,
                    split_cost=0.002,
                    join_cost=0.002,
                ),
            )
        )
        g.add_task(
            Task(
                "norm",
                cost=ConstantCost(p["norm_cost"]),
                inputs=["a_bands"],
                outputs=["scale"],
            )
        )
        g.add_task(
            Task(
                "reduce",
                cost=LinearCost(
                    base=p["reduce_base"], slope=p["reduce_slope"], variable="n_blocks"
                ),
                inputs=["partials", "scale"],
                outputs=["product"],
            )
        )
        g.add_task(
            Task(
                "check",
                cost=ConstantCost(p["check_cost"]),
                inputs=["product"],
                outputs=["result"],
            )
        )
        g.validate()
        return g

    def state_space(self, instance: WorkloadInstance) -> StateSpace:
        return StateSpace.range("n_blocks", 1, instance.params["max_blocks"])

    def cluster(self, instance: WorkloadInstance) -> ClusterSpec:
        p = instance.params
        return ClusterSpec(
            nodes=2,
            procs_per_node=p["procs_per_node"],
            node_speeds=[1.0, p["slow_speed"]],
        )

    def attach_kernels(
        self, graph: TaskGraph, instance: WorkloadInstance
    ) -> tuple[TaskGraph, dict]:
        p = instance.params
        seed, block_rows, dim = instance.seed, p["block_rows"], p["dim"]
        max_rows = p["max_blocks"] * block_rows
        counter = {"ts": 0}

        def split_compute(state: State, inputs: dict) -> dict:
            ts = counter["ts"]
            counter["ts"] += 1
            rows = state["n_blocks"] * block_rows
            return {"a_bands": _a_matrix(seed, ts, rows, dim)}

        def multiply_compute(state: State, inputs: dict) -> dict:
            a, b = inputs["a_bands"], inputs["b_matrix"]
            return {"partials": a @ b}

        def multiply_chunk(state: State, inputs: dict, chunk: int, n_chunks: int):
            a, b = inputs["a_bands"], inputs["b_matrix"]
            lo, hi = _band_slice(state["n_blocks"], block_rows, chunk, n_chunks)
            return a[lo:hi] @ b

        def multiply_join(state: State, inputs: dict, partials: list) -> dict:
            return {"partials": np.vstack(partials)}

        def norm_compute(state: State, inputs: dict) -> dict:
            return {"scale": int(np.abs(inputs["a_bands"]).sum())}

        def reduce_compute(state: State, inputs: dict) -> dict:
            col = inputs["partials"].sum(axis=0) % 100003
            return {"product": col * (inputs["scale"] % 11 + 1)}

        def check_compute(state: State, inputs: dict) -> dict:
            return {"result": int(inputs["product"].sum() % 1000003)}

        computes = {
            "split": split_compute,
            "multiply": multiply_compute,
            "norm": norm_compute,
            "reduce": reduce_compute,
            "check": check_compute,
        }
        out = TaskGraph(f"{graph.name}/live")
        for ch in graph.channels:
            out.add_channel(ch)
        for t in graph.tasks:
            chunk_fn, join_fn = (
                (multiply_chunk, multiply_join) if t.name == "multiply" else (None, None)
            )
            out.add_task(
                Task(
                    t.name,
                    cost=t.cost,
                    inputs=t.inputs,
                    outputs=t.outputs,
                    data_parallel=t.data_parallel,
                    period=t.period,
                    compute=computes[t.name],
                    compute_chunk=chunk_fn,
                    compute_join=join_fn,
                )
            )
        out.validate()
        b = (np.arange(dim * dim, dtype=np.int64).reshape(dim, dim) + seed) % 89
        statics = {"b_matrix": b}
        del max_rows  # documented shape bound; kernels slice per state
        return out, statics


MATMUL = register_family(MatMulFamily())
