"""Frozen problem-instance datasets, one JSON file per family.

The dataset is the unit the golden tests pin: each family ships a few
feasible seeded instances plus one deliberately infeasible instance whose
``expected_findings`` the verifier must reproduce.  Because ``generate``
is a pure function of the seed, the frozen files are *re-derivable* —
:func:`regenerate` must equal :func:`load_dataset` byte for byte, and the
golden suite proves it, so a drive-by edit to a generator cannot silently
detach the dataset from the code.

Refreshing after an intentional generator change::

    PYTHONPATH=src python -c "from repro.workloads.dataset import freeze_all; freeze_all()"
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.workloads.base import FAMILIES, WorkloadInstance, get_family

__all__ = [
    "DATA_DIR",
    "DATASET_SEEDS",
    "dataset_path",
    "regenerate",
    "load_dataset",
    "load_all",
    "freeze",
    "freeze_all",
]

DATA_DIR = Path(__file__).parent / "data"

#: Seeds frozen per family; the last entry doubles as the infeasible seed.
DATASET_SEEDS: tuple[int, ...] = (0, 1, 2)


def dataset_path(family: str) -> Path:
    """Where ``family``'s frozen instances live."""
    return DATA_DIR / f"{family}.json"


def regenerate(family: str) -> list[WorkloadInstance]:
    """Re-derive the dataset from seeds alone (no file I/O)."""
    fam = get_family(family)
    out = [fam.generate(seed) for seed in DATASET_SEEDS]
    out.append(fam.generate(DATASET_SEEDS[-1], infeasible=True))
    return out


def load_dataset(family: str) -> list[WorkloadInstance]:
    """The frozen instances of ``family`` from ``data/<family>.json``."""
    raw = json.loads(dataset_path(family).read_text())
    return [WorkloadInstance.from_dict(d) for d in raw["instances"]]


def load_all() -> dict[str, list[WorkloadInstance]]:
    """Every family's frozen dataset, keyed by family name."""
    from repro import workloads  # noqa: F401  (registers the built-ins)

    return {name: load_dataset(name) for name in sorted(FAMILIES)}


def freeze(family: str) -> Path:
    """Write ``family``'s regenerated dataset to its frozen path."""
    instances = regenerate(family)
    path = dataset_path(family)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "family": family,
        "seeds": list(DATASET_SEEDS),
        "instances": [inst.to_dict() for inst in instances],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def freeze_all() -> list[Path]:
    """Freeze every registered family's dataset."""
    from repro import workloads  # noqa: F401  (registers the built-ins)

    return [freeze(name) for name in sorted(FAMILIES)]
