"""Golden-fixture regression tests over the frozen datasets (satellite c).

The files under ``src/repro/workloads/data/`` are the pinned artifacts:
they must stay byte-for-byte re-derivable from the generators, every
feasible entry must certify clean, and every deliberately infeasible
entry must keep failing with exactly its recorded findings.  A generator
edit that shifts any instance shows up here first — refresh consciously
with ``freeze_all()`` or revert.
"""

from __future__ import annotations

import json

import pytest

from repro.workloads import load_all, load_dataset, regenerate
from repro.workloads.dataset import DATASET_SEEDS, dataset_path
from repro.workloads.verify import certify_instance

FAMILY_NAMES = ("matmul", "fusion", "webinfer")


@pytest.fixture(params=FAMILY_NAMES)
def family(request):
    return request.param


class TestFrozenFiles:
    def test_every_family_has_a_frozen_dataset(self):
        assert set(load_all()) >= set(FAMILY_NAMES)

    def test_file_matches_the_generators_exactly(self, family):
        """Byte-level pin: the frozen JSON is the regenerated JSON."""
        frozen = json.loads(dataset_path(family).read_text())
        derived = {
            "family": family,
            "seeds": list(DATASET_SEEDS),
            "instances": [inst.to_dict() for inst in regenerate(family)],
        }
        assert frozen == json.loads(json.dumps(derived))

    def test_load_equals_regenerate(self, family):
        assert load_dataset(family) == regenerate(family)

    def test_instance_names_unique(self, family):
        names = [inst.name for inst in load_dataset(family)]
        assert len(names) == len(set(names))


class TestExpectedFindings:
    def test_feasible_entries_certify_clean(self, family):
        feasible = [i for i in load_dataset(family) if not i.expected_findings]
        assert feasible, "dataset must carry feasible instances"
        for inst in feasible:
            report = certify_instance(inst)
            assert report.ok(), f"{inst.name}: {report.summary()}"

    def test_each_family_ships_an_infeasible_entry(self, family):
        broken = [i for i in load_dataset(family) if i.expected_findings]
        assert len(broken) >= 1

    def test_infeasible_entries_must_fail(self, family):
        """The recorded findings are reproduced — and the report gates."""
        for inst in (i for i in load_dataset(family) if i.expected_findings):
            report = certify_instance(inst)
            got = {f.rule for f in report.findings}
            assert set(inst.expected_findings) <= got, (
                f"{inst.name}: expected {inst.expected_findings}, got {sorted(got)}"
            )
            assert not report.ok(), f"{inst.name} certified clean but must fail"

    def test_findings_name_the_instance(self, family):
        for inst in (i for i in load_dataset(family) if i.expected_findings):
            report = certify_instance(inst)
            assert all(inst.name in f.location for f in report.findings)
