"""Per-family unit tests: generators, graphs, platforms and kernels.

Everything here is cheap (no solver, no substrates): the contract each
:class:`~repro.workloads.base.WorkloadFamily` owes the rest of the suite —
deterministic seeded generation, a valid graph whose dp task really
decomposes, a regime space driven by the declared variable, and
integer-exact kernels whose chunked execution equals serial execution
bitwise when driven by hand.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.workloads import FAMILIES, WorkloadInstance, get_family, register_family
from repro.workloads.base import WorkloadFamily

FAMILY_NAMES = ("matmul", "fusion", "webinfer")


@pytest.fixture(params=FAMILY_NAMES)
def family(request):
    return get_family(request.param)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(FAMILY_NAMES) <= set(FAMILIES)

    def test_unknown_family_raises(self):
        with pytest.raises(GraphError, match="unknown workload family"):
            get_family("nope")

    def test_abstract_name_rejected(self):
        class Nameless(WorkloadFamily):
            def generate(self, seed, infeasible=False):  # pragma: no cover
                raise NotImplementedError

            build_graph = state_space = cluster = attach_kernels = generate

        with pytest.raises(GraphError, match="concrete name"):
            register_family(Nameless())


class TestGenerate:
    def test_deterministic(self, family):
        assert family.generate(7).to_dict() == family.generate(7).to_dict()

    def test_seeds_differ(self, family):
        assert family.generate(0).params != family.generate(1).params

    def test_infeasible_variant_records_findings(self, family):
        inst = family.generate(3, infeasible=True)
        assert inst.expected_findings
        assert inst.name.endswith("-infeasible")
        assert not family.generate(3).expected_findings

    def test_round_trips_through_dict(self, family):
        inst = family.generate(5)
        assert WorkloadInstance.from_dict(inst.to_dict()) == inst


class TestGraph:
    def test_validates_and_names_dp_task(self, family):
        inst = family.generate(0)
        graph = family.build_graph(inst)
        graph.validate()
        assert family.dp_task in graph
        assert graph.task(family.dp_task).data_parallel is not None

    def test_source_carries_the_throughput_demand(self, family):
        inst = family.generate(0)
        graph = family.build_graph(inst)
        sources = graph.source_tasks()
        assert len(sources) == 1
        assert graph.task(sources[0]).period == inst.source_period

    def test_costs_scale_with_the_regime(self, family):
        """The declared regime variable drives the dp task's cost."""
        inst = family.generate(0)
        graph = family.build_graph(inst)
        states = list(family.state_space(inst))
        costs = [graph.task(family.dp_task).cost(s) for s in states]
        assert costs == sorted(costs)
        assert costs[0] < costs[-1]

    def test_state_space_spans_the_regime(self, family):
        inst = family.generate(0)
        states = list(family.state_space(inst))
        assert len(states) >= 2
        values = [s[family.regime_variable] for s in states]
        assert values == list(range(1, len(states) + 1))


class TestCluster:
    def test_matmul_platform_is_heterogeneous(self):
        inst = get_family("matmul").generate(0)
        cluster = get_family("matmul").cluster(inst)
        assert cluster.nodes == 2
        speeds = set(cluster.node_speeds)
        assert len(speeds) == 2 and min(speeds) < 1.0

    def test_uniform_platforms(self):
        for name in ("fusion", "webinfer"):
            inst = get_family(name).generate(0)
            cluster = get_family(name).cluster(inst)
            assert set(cluster.node_speeds) == {1.0}


def _run_by_hand(live, statics, state, *, chunked_task=None, workers=2):
    """Drive the kernels directly in topo order; returns all channel values.

    ``chunked_task`` switches that task to its chunk/join path, which must
    be indistinguishable from the serial compute (the integer-exact
    contract the substrates rely on).
    """
    values = dict(statics)
    for name in live.topo_order():
        task = live.task(name)
        inputs = {ch: values[ch] for ch in task.inputs}
        if name == chunked_task:
            n_chunks = task.data_parallel.chunks_for(state, workers)
            partials = [
                task.compute_chunk(state, inputs, c, n_chunks)
                for c in range(n_chunks)
            ]
            values.update(task.compute_join(state, inputs, partials))
        else:
            values.update(task.compute(state, inputs))
    return values


class TestKernels:
    def test_chunked_equals_serial_bitwise(self, family):
        inst = family.generate(0)
        graph = family.build_graph(inst)
        state = list(family.state_space(inst))[-1]
        # Fresh kernels per run: sources hold a timestamp counter.
        serial_live, statics = family.attach_kernels(graph, inst)
        serial = _run_by_hand(serial_live, statics, state)
        chunked_live, statics = family.attach_kernels(graph, inst)
        chunked = _run_by_hand(
            chunked_live, statics, state, chunked_task=family.dp_task
        )
        assert set(serial) == set(chunked)
        for ch, value in serial.items():
            if isinstance(value, np.ndarray):
                assert np.array_equal(value, chunked[ch]), ch
            else:
                assert value == chunked[ch], ch

    def test_kernels_are_integer_exact(self, family):
        inst = family.generate(0)
        graph = family.build_graph(inst)
        live, statics = family.attach_kernels(graph, inst)
        state = list(family.state_space(inst))[-1]
        values = _run_by_hand(live, statics, state)
        for ch, value in values.items():
            if isinstance(value, np.ndarray):
                assert value.dtype == np.int64, ch
            else:
                assert isinstance(value, (int, np.integer)), ch

    def test_live_graph_mirrors_the_model_graph(self, family):
        inst = family.generate(0)
        graph = family.build_graph(inst)
        live, _ = family.attach_kernels(graph, inst)
        assert live.task_names == graph.task_names
        assert live.channel_names == graph.channel_names
        for name in graph.task_names:
            assert live.task(name).compute is not None
