"""Property tests over seeded random instances (satellite b).

Hypothesis draws generator seeds; for every drawn instance the suite
checks the promises the workload layer makes to everything downstream:

* every policy rung's table contains only *legal* schedules
  (``IterationSchedule.validate`` + conflict-free pipelining);
* the verifier accepts every feasible instance and rejects every
  deliberately infeasible one;
* the solved latency L is what the sim substrate actually realizes
  (zero slips, frame latency == L);
* the bounded rung's realized latency stays within its certified
  ``(1 + eps)`` factor of exact, state by state.

Solver-backed properties keep ``max_examples`` small: each example costs
three table builds over the full regime space.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.optimal import OptimalScheduler
from repro.core.table import ScheduleTable
from repro.runtime.static_exec import StaticExecutor
from repro.workloads import WorkloadInstance, certify_instance, get_family

FAMILY_NAMES = ("matmul", "fusion", "webinfer")
BOUNDED_EPS = 0.5

seeds = st.integers(min_value=0, max_value=40)
families = st.sampled_from(FAMILY_NAMES)

solver_settings = settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(family=families, seed=seeds)
@settings(max_examples=25, deadline=None)
def test_generate_is_a_pure_function_of_the_seed(family, seed):
    fam = get_family(family)
    a, b = fam.generate(seed), fam.generate(seed)
    assert a == b
    payload = json.dumps(a.to_dict(), sort_keys=True)
    assert WorkloadInstance.from_dict(json.loads(payload)) == a


@given(family=families, seed=seeds)
@settings(max_examples=25, deadline=None)
def test_feasible_instances_certify_clean(family, seed):
    report = certify_instance(get_family(family).generate(seed))
    assert report.ok(), report.summary()


@given(family=families, seed=seeds)
@settings(max_examples=25, deadline=None)
def test_infeasible_instances_are_rejected(family, seed):
    inst = get_family(family).generate(seed, infeasible=True)
    report = certify_instance(inst)
    got = {f.rule for f in report.findings}
    assert set(inst.expected_findings) <= got
    assert not report.ok()


@given(family=families, seed=seeds)
@solver_settings
def test_every_rung_produces_legal_schedules(family, seed):
    fam = get_family(family)
    inst = fam.generate(seed)
    graph, space, cluster = (
        fam.build_graph(inst), fam.state_space(inst), fam.cluster(inst)
    )
    scheduler = OptimalScheduler(cluster)
    for policy in ("exact", f"bounded:{BOUNDED_EPS}", "list"):
        table = ScheduleTable.build(graph, space, scheduler, policy=policy)
        for state in space:
            sol = table.lookup(state)
            sol.iteration.validate(graph, state, cluster)
            sol.pipelined.validate_conflict_free()


@given(family=families, seed=seeds)
@solver_settings
def test_bounded_rung_realizes_its_certified_gap(family, seed):
    fam = get_family(family)
    inst = fam.generate(seed)
    graph, space, cluster = (
        fam.build_graph(inst), fam.state_space(inst), fam.cluster(inst)
    )
    scheduler = OptimalScheduler(cluster)
    exact = ScheduleTable.build(graph, space, scheduler)
    bounded = ScheduleTable.build(
        graph, space, scheduler, policy=f"bounded:{BOUNDED_EPS}"
    )
    for state in space:
        opt = exact.lookup(state).latency
        got = bounded.lookup(state).latency
        assert got <= (1.0 + BOUNDED_EPS) * opt + 1e-9, state


@given(family=families, seed=seeds)
@solver_settings
def test_solved_latency_is_what_the_sim_realizes(family, seed):
    """L is not a model fiction: replayed on the sim substrate, the
    densest state's exact schedule completes a frame in exactly L
    (measured source-start to sink-end) with zero deadline slips."""
    fam = get_family(family)
    inst = fam.generate(seed)
    graph, cluster = fam.build_graph(inst), fam.cluster(inst)
    state = list(fam.state_space(inst))[-1]
    sol = OptimalScheduler(cluster).solve(graph, state)
    result = StaticExecutor(graph, state, cluster, sol).run(3)
    assert result.meta["slips"] == 0
    source = graph.source_tasks()[0]
    source_end = sol.iteration.placement(source).end
    assert result.latency(0) == pytest.approx(sol.latency - source_end)
