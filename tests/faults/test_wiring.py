"""Fault wiring into the executors and on-line schedulers.

The subsystem is reachable from both execution models:

* ``StaticExecutor(..., faults=...)`` delegates to the fault-tolerant
  executor (regime-change failover, §3.4);
* ``DynamicExecutor(..., faults=...)`` binds its on-line scheduler to a
  live cluster view — threads migrate off dead processors but nothing
  fails over (the §3.2 baseline merely survives).
"""

from __future__ import annotations

import pytest

from repro.core.optimal import OptimalScheduler
from repro.core.transition import DrainTransition
from repro.errors import ProcessError, ReproError
from repro.faults import ClusterView, FaultPlan, FaultRuntime
from repro.graph.builders import chain_graph
from repro.runtime.dynamic import DynamicExecutor
from repro.runtime.static_exec import StaticExecutor
from repro.sched.online import PthreadScheduler
from repro.sched.priority import TimestampPriorityScheduler
from repro.sim.cluster import ClusterSpec
from repro.sim.engine import Simulator
from repro.state import State

CLUSTER = ClusterSpec(nodes=2, procs_per_node=1)
STATE = State(n_models=1)


class TestStaticExecutorDelegation:
    def make(self, faults):
        graph = chain_graph([1.0, 1.0])
        sol = OptimalScheduler(CLUSTER).solve(graph, STATE)
        return StaticExecutor(graph, STATE, CLUSTER, sol, faults=faults)

    def test_run_delegates_to_fault_tolerant_executor(self):
        rt = FaultRuntime(plan=FaultPlan.crash_at(5.0, node=1), policy=DrainTransition())
        res = self.make(rt).run(15)
        assert res.meta["recovery"].crashes == 1
        assert len(res.meta["failovers"]) == 1
        assert res.completed_count < 15  # the crash cost frames

    def test_without_faults_static_path_unchanged(self):
        res = self.make(None).run(5)
        assert res.meta["slips"] == 0
        assert "recovery" not in res.meta

    def test_contended_plus_faults_rejected(self):
        graph = chain_graph([1.0, 1.0])
        sol = OptimalScheduler(CLUSTER).solve(graph, STATE)
        rt = FaultRuntime(plan=FaultPlan([]))
        with pytest.raises(ReproError):
            StaticExecutor(graph, STATE, CLUSTER, sol, contended=True, faults=rt)


def run_dynamic(plan, horizon=12.0, scheduler=None, cluster=CLUSTER, max_ts=None):
    # Saturating: both task threads are permanently ready, so both
    # processors stay busy and any crash instant has a slice in flight.
    ex = DynamicExecutor(
        chain_graph([0.2, 0.2], period=0.2),
        STATE,
        cluster,
        scheduler or PthreadScheduler(quantum=0.01),
        faults=plan,
    )
    return ex.run(horizon=horizon, max_timestamps=max_ts)


# Off the 0.01 quantum grid, so the crash lands strictly inside a slice.
CRASH_T = 3.003


class TestDynamicExecutorUnderFaults:
    def test_threads_migrate_off_dead_processor(self):
        res = run_dynamic(FaultPlan.crash_at(CRASH_T, node=1), max_ts=16)
        assert res.meta["faults_applied"] == 1
        assert res.meta["dead_procs"] == [1]
        # Proc 1 was in use before the crash and never after it.
        assert any(s.proc == 1 for s in res.trace.spans)
        for s in res.trace.spans:
            if s.proc == 1:
                assert s.end <= CRASH_T + 1e-9
        # The stream keeps flowing on the survivor.
        assert res.completed
        assert max(res.completion_times.values()) > CRASH_T

    def test_slice_in_flight_is_lost_and_redone(self):
        res = run_dynamic(FaultPlan.crash_at(CRASH_T, node=1), max_ts=16)
        assert res.meta["fault_preemptions"] >= 1
        preempted_at_crash = [
            s for s in res.trace.spans
            if s.proc == 1 and s.preempted and s.end == pytest.approx(CRASH_T)
        ]
        assert preempted_at_crash

    def test_recovered_node_rejoins_grant_pool(self):
        res = run_dynamic(
            FaultPlan.crash_at(CRASH_T, node=1, recover_at=6.0), max_ts=30
        )
        post_recovery = [s for s in res.trace.spans if s.proc == 1 and s.start >= 6.0]
        assert post_recovery

    def test_no_plan_meta_is_quiet(self):
        res = run_dynamic(None, max_ts=4, horizon=6.0)
        assert res.meta["faults_applied"] == 0
        assert res.meta["fault_preemptions"] == 0
        assert res.meta["dead_procs"] == []

    def test_deterministic_under_faults(self):
        a = run_dynamic(FaultPlan.crash_at(CRASH_T, node=1), max_ts=12)
        b = run_dynamic(FaultPlan.crash_at(CRASH_T, node=1), max_ts=12)
        assert a.trace.spans == b.trace.spans
        assert a.completion_times == b.completion_times

    def test_priority_scheduler_is_fault_aware_too(self):
        res = run_dynamic(
            FaultPlan.crash_at(CRASH_T, node=1),
            scheduler=TimestampPriorityScheduler(quantum=0.01),
            max_ts=16,
        )
        for s in res.trace.spans:
            if s.proc == 1:
                assert s.end <= CRASH_T + 1e-9
        assert res.completed


@pytest.mark.parametrize(
    "make_sched",
    [lambda: PthreadScheduler(quantum=0.01), lambda: TimestampPriorityScheduler(quantum=0.01)],
    ids=["pthread", "priority"],
)
class TestSchedulerFaultProtocol:
    def setup_sched(self, make_sched):
        sim = Simulator()
        view = ClusterView(sim, CLUSTER)
        sched = make_sched()
        sched.bind(sim, CLUSTER, view=view)
        return sim, view, sched

    def grant_of(self, sim, sched, thread):
        granted = []
        ev = sched.acquire(thread)
        ev.add_callback(lambda e: granted.append(e.value))
        sim.run()
        return granted

    def test_dead_processor_never_granted(self, make_sched):
        sim, view, sched = self.setup_sched(make_sched)
        view.kill_processor(0)
        assert self.grant_of(sim, sched, "a") == [1]

    def test_release_of_dead_processor_drops_it(self, make_sched):
        sim, view, sched = self.setup_sched(make_sched)
        assert self.grant_of(sim, sched, "a") == [0]
        assert self.grant_of(sim, sched, "b") == [1]
        waiting = self.grant_of(sim, sched, "c")
        assert waiting == []  # queued: both processors held
        view.kill_processor(0)
        sched.release("a", 0)  # dead: must NOT be handed to c
        sim.run()
        assert waiting == []
        sched.release("b", 1)  # alive: c gets it
        sim.run()
        assert waiting == [1]

    def test_invalidate_drops_hold_without_regrant(self, make_sched):
        sim, view, sched = self.setup_sched(make_sched)
        assert self.grant_of(sim, sched, "a") == [0]
        view.kill_processor(0)
        sched.invalidate("a", 0)
        # The thread can queue again; only the surviving processor serves.
        assert self.grant_of(sim, sched, "a") == [1]

    def test_invalidate_wrong_processor_raises(self, make_sched):
        sim, view, sched = self.setup_sched(make_sched)
        assert self.grant_of(sim, sched, "a") == [0]
        with pytest.raises(ProcessError):
            sched.invalidate("a", 1)

    def test_recovery_wakes_waiting_threads(self, make_sched):
        sim, view, sched = self.setup_sched(make_sched)
        view.kill_node(1)
        assert self.grant_of(sim, sched, "a") == [0]
        waiting = self.grant_of(sim, sched, "b")
        assert waiting == []
        view.recover_node(1)
        sim.run()
        assert waiting == [1]
