"""Shape tables and the failover controller."""

from __future__ import annotations

import pytest

from repro.core.transition import DrainTransition, ImmediateTransition
from repro.errors import ShapeUnschedulable
from repro.faults import (
    ClusterView,
    FailoverController,
    ShapeTable,
    reachable_shapes,
)
from repro.faults.detect import Detection
from repro.graph.builders import chain_graph
from repro.sim.cluster import ClusterSpec
from repro.sim.engine import Simulator
from repro.state import State


@pytest.fixture
def graph():
    return chain_graph([1.0, 1.0])


@pytest.fixture
def state():
    return State(n_models=1)


class TestReachableShapes:
    def test_homogeneous_cluster_canonicalizes(self):
        base = ClusterSpec(nodes=3, procs_per_node=2)
        shapes = reachable_shapes(base, max_node_failures=1, proc_failures=False)
        # Base + "any one node lost" — which node is irrelevant.
        assert len(shapes) == 2

    def test_proc_failures_add_shapes(self):
        base = ClusterSpec(nodes=2, procs_per_node=2)
        keys = {s.shape_key() for s in reachable_shapes(base)}
        assert ClusterSpec(procs_by_node=[2, 1]).shape_key() in keys
        assert ClusterSpec(procs_by_node=[1]).shape_key() in keys

    def test_never_empty(self):
        base = ClusterSpec(nodes=1, procs_per_node=1)
        shapes = reachable_shapes(base)
        assert [s.shape_key() for s in shapes] == [base.shape_key()]

    def test_two_node_failures(self):
        base = ClusterSpec(nodes=3, procs_per_node=1)
        shapes = reachable_shapes(base, max_node_failures=2, proc_failures=False)
        assert {s.total_processors for s in shapes} == {3, 2, 1}


class TestShapeTable:
    def test_build_and_lookup(self, graph, state):
        base = ClusterSpec(nodes=2, procs_per_node=1)
        table = ShapeTable.build(graph, state, base)
        sol = table.lookup(base)
        assert sol.latency == pytest.approx(2.0)
        degraded = table.lookup(ClusterSpec(nodes=1, procs_per_node=1))
        assert degraded.period >= sol.period

    def test_lookup_unknown_shape_raises(self, graph, state):
        base = ClusterSpec(nodes=2, procs_per_node=1)
        table = ShapeTable.build(graph, state, base, proc_failures=False)
        with pytest.raises(ShapeUnschedulable):
            table.lookup(ClusterSpec(nodes=4, procs_per_node=4))

    def test_contains_and_len(self, graph, state):
        base = ClusterSpec(nodes=2, procs_per_node=1)
        table = ShapeTable.build(graph, state, base)
        assert base in table
        assert len(table) == 2
        assert len(table.solutions()) == 2

    def test_degraded_schedule_fits_shape(self, graph, state):
        base = ClusterSpec(nodes=2, procs_per_node=2)
        table = ShapeTable.build(graph, state, base)
        for key in table:
            spec = ClusterSpec(
                procs_by_node=[p for p, _s in key],
                node_speeds=[s for _p, s in key],
            )
            sol = table._solutions[key]
            assert sol.pipelined.n_procs <= spec.total_processors

    def test_parallel_build_matches_sequential(self, graph, state):
        base = ClusterSpec(nodes=2, procs_per_node=2)
        seq = ShapeTable.build(graph, state, base)
        par = ShapeTable.build(graph, state, base, parallel=2)
        assert list(seq) == list(par)
        assert [s.summary() for s in seq.solutions()] == [
            s.summary() for s in par.solutions()
        ]

    def test_cached_build_roundtrip(self, graph, state, tmp_path):
        from repro.core.cache import ScheduleCache

        base = ClusterSpec(nodes=2, procs_per_node=2)
        cache = ScheduleCache(tmp_path / "shapes")
        first = ShapeTable.build(graph, state, base, cache=cache)
        assert cache.stats.stores == len(first)
        second = ShapeTable.build(graph, state, base, cache=cache)
        assert cache.stats.hits == len(first)
        assert [s.summary() for s in first.solutions()] == [
            s.summary() for s in second.solutions()
        ]


class TestFailoverController:
    def make(self, graph, state, policy):
        sim = Simulator()
        base = ClusterSpec(nodes=2, procs_per_node=1)
        view = ClusterView(sim, base)
        table = ShapeTable.build(graph, state, base)
        return view, FailoverController(table, view, policy)

    def test_initial_state(self, graph, state):
        view, ctl = self.make(graph, state, DrainTransition())
        assert ctl.active.latency == pytest.approx(2.0)
        assert ctl.mapping == {0: 0, 1: 1}
        assert ctl.failover_count == 0

    def test_failover_on_node_crash(self, graph, state):
        view, ctl = self.make(graph, state, DrainTransition(setup=0.5))
        old = ctl.active
        view.kill_node(0)
        record = ctl.on_detection(Detection(time=3.0, kind="node-failure", node=0))
        assert record is not None
        assert ctl.failover_count == 1
        assert ctl.active is not old
        assert ctl.mapping == {0: 1}
        # Drain: stall covers the old latency plus setup.
        assert record.effect.stall == pytest.approx(old.latency + 0.5)
        assert ctl.resume_at == pytest.approx(3.0 + old.latency + 0.5)

    def test_immediate_policy_loses_in_flight(self, graph, state):
        view, ctl = self.make(graph, state, ImmediateTransition())
        view.kill_node(1)
        record = ctl.on_detection(Detection(time=2.0, kind="node-failure", node=1))
        assert record.effect.lost_iterations > 0
        assert ctl.total_lost_iterations == record.effect.lost_iterations

    def test_detection_without_shape_change_is_noop(self, graph, state):
        view, ctl = self.make(graph, state, DrainTransition())
        assert ctl.on_detection(Detection(time=1.0, kind="slowdown", node=0)) is None
        assert ctl.failover_count == 0

    def test_failback_on_recovery(self, graph, state):
        view, ctl = self.make(graph, state, DrainTransition())
        view.kill_node(0)
        ctl.on_detection(Detection(time=3.0, kind="node-failure", node=0))
        view.recover_node(0)
        record = ctl.on_detection(Detection(time=8.0, kind="node-recovery", node=0))
        assert record is not None
        assert ctl.failover_count == 2
        assert ctl.mapping == {0: 0, 1: 1}
