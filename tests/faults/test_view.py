"""ClusterView: the mutable degraded view of the cluster."""

from __future__ import annotations

import pytest

from repro.errors import FaultError
from repro.faults import ClusterView
from repro.sim.cluster import ClusterSpec
from repro.sim.engine import Simulator


@pytest.fixture
def view() -> ClusterView:
    return ClusterView(Simulator(), ClusterSpec(nodes=2, procs_per_node=2))


class TestLiveness:
    def test_all_alive_initially(self, view):
        assert all(view.alive(p.index) for p in view.base.processors)
        assert view.node_alive(0) and view.node_alive(1)

    def test_kill_node_kills_its_processors(self, view):
        view.kill_node(1)
        assert not view.node_alive(1)
        assert not view.alive(2) and not view.alive(3)
        assert view.alive(0) and view.alive(1)

    def test_kill_processor_spares_node(self, view):
        view.kill_processor(2)
        assert not view.alive(2)
        assert view.node_alive(1)
        assert view.alive(3)

    def test_recover_node(self, view):
        view.kill_node(0)
        view.recover_node(0)
        assert view.node_alive(0)
        assert view.alive(0) and view.alive(1)

    def test_recovery_spares_other_proc_losses(self, view):
        view.kill_processor(1)
        view.kill_node(1)
        view.recover_node(1)
        assert not view.alive(1)  # node 0's individual loss persists
        assert view.alive(2) and view.alive(3)

    def test_speed_with_slowdown(self, view):
        view.slow_node(0, 0.5)
        assert view.speed(0) == pytest.approx(0.5)
        assert view.speed(2) == pytest.approx(1.0)


class TestDeathEvents:
    def test_death_event_fires_on_kill(self, view):
        ev = view.death_event(2)
        assert not ev.triggered
        view.kill_node(1)
        assert ev.triggered

    def test_death_event_already_dead(self, view):
        view.kill_processor(0)
        assert view.death_event(0).triggered

    def test_rearmed_after_recovery(self, view):
        view.kill_node(0)
        view.recover_node(0)
        ev = view.death_event(0)
        assert not ev.triggered
        view.kill_node(0)
        assert ev.triggered

    def test_on_change_callbacks(self, view):
        log: list[tuple[str, int]] = []
        view.on_change(lambda kind, target: log.append((kind, target)))
        view.kill_processor(3)
        view.kill_node(0)
        view.recover_node(0)
        assert log == [("proc-loss", 3), ("crash", 0), ("recovery", 0)]


class TestShape:
    def test_initial_shape_matches_base(self, view):
        assert view.shape() == view.base

    def test_shape_after_node_loss(self, view):
        view.kill_node(0)
        shape = view.shape()
        assert shape.nodes == 1
        assert shape.total_processors == 2

    def test_shape_after_proc_loss_non_uniform(self, view):
        view.kill_processor(3)
        shape = view.shape()
        assert shape.procs_by_node == (2, 1)

    def test_shape_raises_when_everything_dead(self, view):
        view.kill_node(0)
        view.kill_node(1)
        with pytest.raises(FaultError):
            view.shape()

    def test_mapping_dense_and_ordered(self, view):
        view.kill_processor(1)
        mapping = view.shape_to_physical()
        assert mapping == {0: 0, 1: 2, 2: 3}

    def test_mapping_matches_shape_size(self, view):
        view.kill_node(1)
        assert len(view.shape_to_physical()) == view.shape().total_processors
