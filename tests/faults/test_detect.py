"""FailureDetector: heartbeat semantics and bounded detection latency."""

from __future__ import annotations

import pytest

from repro.errors import FaultError
from repro.faults import (
    ClusterView,
    FailureDetector,
    FaultInjector,
    FaultPlan,
    NodeSlowdown,
    ProcessorLoss,
)
from repro.sim.cluster import ClusterSpec
from repro.sim.engine import Simulator


def run_detect(
    plan: FaultPlan,
    until: float,
    cluster: ClusterSpec | None = None,
    **kwargs,
) -> tuple[FailureDetector, FaultInjector]:
    sim = Simulator()
    view = ClusterView(sim, cluster or ClusterSpec(nodes=2, procs_per_node=2))
    inj = FaultInjector(sim, view, plan)
    det = FailureDetector(sim, view, **kwargs)
    inj.start()
    det.start()
    sim.run(until=until)
    return det, inj


class TestConfig:
    def test_timeout_must_cover_interval(self):
        sim = Simulator()
        view = ClusterView(sim, ClusterSpec(nodes=1, procs_per_node=2))
        with pytest.raises(FaultError):
            FailureDetector(sim, view, heartbeat_interval=0.5, timeout=0.2)


class TestNodeFailure:
    def test_crash_detected_within_bound(self):
        det, inj = run_detect(
            FaultPlan.crash_at(5.0, node=1),
            until=10.0,
            heartbeat_interval=0.1,
            timeout=0.3,
        )
        found = det.detections_of("node-failure")
        assert len(found) == 1
        assert found[0].node == 1
        latency = found[0].time - 5.0
        assert 0.3 <= latency < 0.3 + 0.1 + 1e-9

    def test_detection_latencies_helper(self):
        det, inj = run_detect(
            FaultPlan.crash_at(3.0, node=0),
            until=10.0,
            heartbeat_interval=0.2,
            timeout=0.4,
        )
        lats = det.detection_latencies(inj.crash_times())
        assert len(lats) == 1
        assert 0.4 <= lats[0] < 0.6 + 1e-9

    def test_no_failure_no_detection(self):
        det, _ = run_detect(FaultPlan([]), until=5.0)
        assert det.detections == []

    def test_recovery_detected(self):
        det, _ = run_detect(
            FaultPlan.crash_at(2.0, node=1, recover_at=6.0), until=12.0
        )
        rec = det.detections_of("node-recovery")
        assert len(rec) == 1
        assert rec[0].node == 1
        assert rec[0].time >= 6.0


class TestProcFailure:
    def test_single_proc_loss_reported_as_proc(self):
        det, _ = run_detect(
            FaultPlan([ProcessorLoss(time=4.0, proc=2)]), until=10.0
        )
        assert det.detections_of("node-failure") == []
        found = det.detections_of("proc-failure")
        assert len(found) == 1
        assert found[0].proc == 2
        assert found[0].node == 1


class TestSlowdown:
    def test_slowdown_confirmed_after_debounce(self):
        det, _ = run_detect(
            FaultPlan([NodeSlowdown(time=2.0, node=0, factor=0.5)]),
            until=10.0,
            heartbeat_interval=0.1,
            timeout=0.3,
            confirm_slowdown=3,
        )
        found = det.detections_of("slowdown")
        assert len(found) == 1
        # Needs three deviating beats on the 0.1 grid after t=2.0.
        assert found[0].time >= 2.0 + 2 * 0.1 - 1e-9

    def test_slowdown_detection_disabled(self):
        det, _ = run_detect(
            FaultPlan([NodeSlowdown(time=2.0, node=0, factor=0.5)]),
            until=10.0,
            confirm_slowdown=0,
        )
        assert det.detections_of("slowdown") == []


class TestSubscription:
    def test_subscribers_called_at_detection_instant(self):
        sim = Simulator()
        view = ClusterView(sim, ClusterSpec(nodes=2, procs_per_node=1))
        inj = FaultInjector(sim, view, FaultPlan.crash_at(1.0, node=1))
        det = FailureDetector(sim, view, heartbeat_interval=0.1, timeout=0.2)
        seen: list[tuple[float, str]] = []
        det.subscribe(lambda d: seen.append((sim.now, d.kind)))
        inj.start()
        det.start()
        sim.run(until=5.0)
        assert len(seen) == 1
        assert seen[0][0] == det.detections[0].time
