"""Retry/backoff wrappers: bounded STM waits instead of deadlocks."""

from __future__ import annotations

import pytest

from repro.errors import FaultTimeout
from repro.faults import RetryPolicy, get_with_retry, put_with_retry
from repro.runtime.hub import ChannelHub
from repro.sim.engine import Simulator
from repro.stm.channel import STMChannel


def make_hub(capacity=None) -> tuple[Simulator, ChannelHub]:
    sim = Simulator()
    return sim, ChannelHub(sim, STMChannel("ch", capacity=capacity))


class TestPolicy:
    def test_delays_grow_and_cap(self):
        p = RetryPolicy(max_attempts=5, base_delay=0.1, factor=2.0, max_delay=0.5)
        assert [p.delay(i) for i in range(5)] == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_budget(self):
        p = RetryPolicy(max_attempts=3, base_delay=0.1, factor=2.0, max_delay=10.0)
        assert p.budget == pytest.approx(0.7)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=0.0)


class TestGetWithRetry:
    def test_immediate_hit_costs_no_time(self):
        sim, hub = make_hub()
        out = hub.stm.attach_output("p")
        inp = hub.stm.attach_input("c")
        hub.stm.put(out, 0, "x")
        got = []

        def consumer():
            got.append((yield from get_with_retry(hub, inp, 0)))

        sim.process(consumer())
        sim.run()
        assert got == [(0, "x")]
        assert sim.now == 0.0

    def test_wakes_when_producer_puts(self):
        sim, hub = make_hub()
        out = hub.stm.attach_output("p")
        inp = hub.stm.attach_input("c")
        got = []

        def producer():
            yield sim.timeout(0.07)
            yield from hub.put(out, 0, "late")

        def consumer():
            item = yield from get_with_retry(hub, inp, 0)
            got.append((sim.now, item))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        # Woken by the channel-change event, not the next backoff tick.
        assert got == [(pytest.approx(0.07), (0, "late"))]

    def test_times_out_when_producer_dead(self):
        sim, hub = make_hub()
        inp = hub.stm.attach_input("c")
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, factor=2.0)
        errors = []

        def consumer():
            try:
                yield from get_with_retry(hub, inp, 0, policy)
            except FaultTimeout as e:
                errors.append(e)

        sim.process(consumer())
        sim.run()
        assert len(errors) == 1
        assert errors[0].channel == "ch"
        assert errors[0].attempts == 3
        # Two backoff sleeps: 0.1 + 0.2.
        assert sim.now == pytest.approx(0.3)


class TestPutWithRetry:
    def test_times_out_on_full_channel_with_dead_consumer(self):
        sim, hub = make_hub(capacity=1)
        out = hub.stm.attach_output("p")
        hub.stm.attach_input("c")  # consumer never consumes
        hub.stm.put(out, 0, "first")
        policy = RetryPolicy(max_attempts=2, base_delay=0.25, factor=2.0)
        errors = []

        def producer():
            try:
                yield from put_with_retry(hub, out, 1, "second", policy=policy)
            except FaultTimeout as e:
                errors.append(e)

        sim.process(producer())
        sim.run()
        assert len(errors) == 1
        assert sim.now == pytest.approx(0.25)

    def test_succeeds_once_capacity_frees(self):
        sim, hub = make_hub(capacity=1)
        out = hub.stm.attach_output("p")
        inp = hub.stm.attach_input("c")
        hub.stm.put(out, 0, "first")

        def consumer():
            yield sim.timeout(0.1)
            hub.try_get(inp, 0)
            hub.consume(inp, 0)

        def producer():
            yield from put_with_retry(hub, out, 1, "second")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert hub.stm.holds(1)
