"""The full fault-tolerance loop: inject -> detect -> fail over -> recover.

This is the subsystem's acceptance test: a node crash mid-run is detected
by heartbeats, the executor fails over to the schedule pre-computed for
the degraded shape, and the output stream resumes — deterministically,
under every transition policy, with the recovery metrics accounting for
exactly what the failure cost.
"""

from __future__ import annotations

import pytest

from repro.core.transition import (
    CheckpointTransition,
    DrainTransition,
    ImmediateTransition,
)
from repro.faults import FaultPlan, FaultRuntime, FaultTolerantExecutor
from repro.graph.builders import chain_graph, fork_join_graph
from repro.sim.cluster import ClusterSpec
from repro.state import State

CLUSTER = ClusterSpec(nodes=2, procs_per_node=1)
STATE = State(n_models=1)
DETECT = dict(heartbeat_interval=0.1, detect_timeout=0.3)


def run_with(policy, plan=None, iterations=20, graph=None, cluster=CLUSTER):
    rt = FaultRuntime(
        plan=plan if plan is not None else FaultPlan.crash_at(5.0, node=1),
        policy=policy,
        **DETECT,
    )
    ex = FaultTolerantExecutor(graph or chain_graph([1.0, 1.0]), STATE, cluster, rt)
    return ex.run(iterations)


class TestHealthyBaseline:
    def test_no_faults_no_losses(self):
        res = run_with(DrainTransition(), plan=FaultPlan([]), iterations=10)
        assert res.completed_count == 10
        rec = res.meta["recovery"]
        assert rec.crashes == 0
        assert rec.frames_lost == 0
        assert rec.availability == pytest.approx(1.0)
        assert res.meta["failovers"] == []

    def test_healthy_cadence_matches_period(self):
        res = run_with(DrainTransition(), plan=FaultPlan([]), iterations=10)
        seq = res.completion_sequence()
        gaps = [b - a for a, b in zip(seq, seq[1:])]
        assert all(g == pytest.approx(res.meta["period"]) for g in gaps)


class TestFullLoopDrain:
    def test_crash_detect_failover_recover(self):
        res = run_with(DrainTransition(setup=0.5), iterations=20)
        rec = res.meta["recovery"]

        # Detected within the configured bound.
        assert rec.crashes == 1
        assert 0.3 <= rec.detection_latency_max < 0.4 + 1e-9

        # Failed over to the pre-computed degraded-shape schedule.
        assert len(res.meta["failovers"]) == 1
        assert res.meta["shape_table_size"] >= 2

        # Work in flight on the dead processor is lost; drain loses
        # nothing to the transition itself.
        assert rec.frames_lost_crash > 0
        assert rec.frames_lost_transition == 0

        # The output stream stalled, then recovered.
        assert rec.availability < 1.0
        assert res.completed_count == res.emitted - rec.frames_lost

    def test_throughput_recovers_at_degraded_period(self):
        res = run_with(DrainTransition(setup=0.5), iterations=20)
        seq = res.completion_sequence()
        # After failover the cadence settles at the 1-processor period (2s).
        tail = [b - a for a, b in zip(seq[-6:], seq[-5:])]
        assert all(g == pytest.approx(2.0) for g in tail)

    def test_all_post_failover_frames_complete(self):
        res = run_with(DrainTransition(setup=0.5), iterations=20)
        lost = set(res.meta["frames_lost_crash"])
        completed = set(res.completion_times)
        assert completed | lost == set(range(20))


class TestFullLoopImmediate:
    def test_immediate_transition_loses_in_flight(self):
        res = run_with(ImmediateTransition(setup=0.5), iterations=20)
        rec = res.meta["recovery"]
        assert rec.crashes == 1
        assert 0.3 <= rec.detection_latency_max < 0.4 + 1e-9
        assert len(res.meta["failovers"]) == 1
        # The acceptance criteria: immediate pays in frames.
        assert rec.frames_lost_transition > 0
        assert rec.frames_lost_crash > 0
        assert rec.availability < 1.0
        assert res.completed_count == res.emitted - rec.frames_lost

    def test_immediate_resumes_faster_than_drain(self):
        drain = run_with(DrainTransition(setup=0.5), iterations=20)
        imm = run_with(ImmediateTransition(setup=0.5), iterations=20)
        d_stall = drain.meta["failovers"][0][1]
        i_stall = imm.meta["failovers"][0][1]
        assert i_stall < d_stall
        # ...but loses more frames doing so (the §3.4 trade).
        assert (
            imm.meta["recovery"].frames_lost > drain.meta["recovery"].frames_lost
        )


class TestFullLoopCheckpoint:
    def test_checkpoint_replays_instead_of_losing(self):
        res = run_with(CheckpointTransition(setup=0.5), iterations=20)
        rec = res.meta["recovery"]
        assert rec.frames_replayed > 0
        assert rec.frames_lost_transition == 0
        # Replayed frames complete: only crash losses are missing.
        assert res.completed_count == res.emitted - rec.frames_lost_crash
        replayed = set(res.meta["frames_replayed"])
        assert replayed <= set(res.completion_times)


class TestDeterminism:
    @pytest.mark.parametrize(
        "policy",
        [DrainTransition(setup=0.5), ImmediateTransition(setup=0.5)],
        ids=["drain", "immediate"],
    )
    def test_same_plan_same_trace(self, policy):
        a = run_with(policy, iterations=15)
        b = run_with(policy, iterations=15)
        assert a.trace.spans == b.trace.spans
        assert a.completion_times == b.completion_times
        assert a.meta["detections"] == b.meta["detections"]
        assert a.meta["failovers"] == b.meta["failovers"]


class TestRecoveryPlan:
    def test_failback_after_node_returns(self):
        plan = FaultPlan.crash_at(5.0, node=1, recover_at=20.0)
        res = run_with(DrainTransition(setup=0.5), plan=plan, iterations=25)
        # Two failovers: degrade, then fail back to the full shape.
        assert len(res.meta["failovers"]) == 2
        kinds = [k for _t, k, _n in res.meta["detections"]]
        assert "node-failure" in kinds and "node-recovery" in kinds
        # Cadence at the end is back to the 2-processor period.
        seq = res.completion_sequence()
        tail = [b - a for a, b in zip(seq[-4:], seq[-3:])]
        assert all(g == pytest.approx(1.0) for g in tail)


class TestProcessorLoss:
    def test_single_proc_loss_on_wider_cluster(self):
        from repro.faults import ProcessorLoss

        cluster = ClusterSpec(nodes=2, procs_per_node=2)
        graph = fork_join_graph(0.5, [1.0, 1.0], 0.5)
        plan = FaultPlan([ProcessorLoss(time=4.0, proc=3)])
        res = run_with(
            DrainTransition(), plan=plan, iterations=15, graph=graph, cluster=cluster
        )
        assert len(res.meta["failovers"]) == 1
        assert res.completed_count >= 13
        assert res.meta["recovery"].availability < 1.0


class TestMetaAccounting:
    def test_meta_fields_present(self):
        res = run_with(DrainTransition(), iterations=10)
        for key in (
            "policy",
            "shape_table_size",
            "period",
            "faults_applied",
            "detections",
            "failovers",
            "frames_lost_crash",
            "frames_lost_transition",
            "frames_replayed",
            "recovery",
        ):
            assert key in res.meta

    def test_recovery_summary_renders(self):
        res = run_with(ImmediateTransition(), iterations=10)
        text = res.meta["recovery"].summary()
        assert "crashes=1" in text
        assert "availability=" in text
