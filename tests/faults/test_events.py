"""Fault plans: ordering, validation, and deterministic generation."""

from __future__ import annotations

import pytest

from repro.errors import FaultPlanError
from repro.faults import (
    FaultPlan,
    NodeCrash,
    NodeRecovery,
    NodeSlowdown,
    ProcessorLoss,
)
from repro.sim.cluster import ClusterSpec


class TestEvents:
    def test_negative_time_rejected(self):
        with pytest.raises(FaultPlanError):
            NodeCrash(time=-1.0, node=0)

    def test_slowdown_factor_positive(self):
        with pytest.raises(FaultPlanError):
            NodeSlowdown(time=1.0, node=0, factor=0.0)


class TestFaultPlan:
    def test_sorted_by_time(self):
        plan = FaultPlan(
            [NodeCrash(time=5.0, node=1), ProcessorLoss(time=2.0, proc=0)]
        )
        assert [e.time for e in plan] == [2.0, 5.0]

    def test_same_time_crash_before_recovery(self):
        plan = FaultPlan(
            [NodeRecovery(time=3.0, node=0), NodeCrash(time=3.0, node=1)]
        )
        kinds = [type(e) for e in plan]
        assert kinds == [NodeCrash, NodeRecovery]

    def test_validate_rejects_unknown_node(self):
        plan = FaultPlan([NodeCrash(time=1.0, node=7)])
        with pytest.raises(FaultPlanError):
            plan.validate(ClusterSpec(nodes=2, procs_per_node=2))

    def test_validate_rejects_unknown_processor(self):
        plan = FaultPlan([ProcessorLoss(time=1.0, proc=9)])
        with pytest.raises(FaultPlanError):
            plan.validate(ClusterSpec(nodes=2, procs_per_node=2))

    def test_crash_at_with_recovery(self):
        plan = FaultPlan.crash_at(4.0, node=1, recover_at=9.0)
        assert len(plan) == 2
        assert isinstance(plan.events[0], NodeCrash)
        assert isinstance(plan.events[1], NodeRecovery)

    def test_crash_at_rejects_recovery_before_crash(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.crash_at(4.0, node=1, recover_at=4.0)


class TestPoisson:
    def test_deterministic_for_seed(self):
        cluster = ClusterSpec(nodes=4, procs_per_node=2)
        a = FaultPlan.poisson(cluster, horizon=100.0, rate=0.1, seed=42)
        b = FaultPlan.poisson(cluster, horizon=100.0, rate=0.1, seed=42)
        assert a.events == b.events

    def test_different_seeds_differ(self):
        cluster = ClusterSpec(nodes=4, procs_per_node=2)
        a = FaultPlan.poisson(cluster, horizon=100.0, rate=0.1, seed=1)
        b = FaultPlan.poisson(cluster, horizon=100.0, rate=0.1, seed=2)
        assert a.events != b.events

    def test_never_kills_last_node(self):
        cluster = ClusterSpec(nodes=2, procs_per_node=1)
        plan = FaultPlan.poisson(cluster, horizon=1000.0, rate=0.5, seed=7)
        # Without recoveries at most one node may ever crash.
        crashed = {e.node for e in plan if isinstance(e, NodeCrash)}
        assert len(crashed) <= 1

    def test_downtime_windows_respected(self):
        cluster = ClusterSpec(nodes=3, procs_per_node=1)
        plan = FaultPlan.poisson(
            cluster, horizon=500.0, rate=0.2, seed=3, mean_downtime=5.0
        )
        down: dict[int, float] = {}
        for ev in plan:
            if isinstance(ev, NodeCrash):
                # A node must be up when it crashes.
                assert ev.time >= down.get(ev.node, 0.0)
                down[ev.node] = float("inf")
            elif isinstance(ev, NodeRecovery):
                down[ev.node] = ev.time

    def test_zero_rate_empty(self):
        cluster = ClusterSpec(nodes=2, procs_per_node=2)
        plan = FaultPlan.poisson(cluster, horizon=100.0, rate=0.0, seed=1)
        assert len(plan) == 0
