"""FaultInjector: deterministic replay of fault plans in the simulation."""

from __future__ import annotations

from repro.faults import ClusterView, FaultInjector, FaultPlan, NodeCrash, NodeSlowdown
from repro.sim.cluster import ClusterSpec
from repro.sim.engine import Simulator


def make(plan: FaultPlan) -> tuple[Simulator, ClusterView, FaultInjector]:
    sim = Simulator()
    view = ClusterView(sim, ClusterSpec(nodes=2, procs_per_node=2))
    return sim, view, FaultInjector(sim, view, plan)


class TestInjection:
    def test_events_applied_at_their_times(self):
        plan = FaultPlan(
            [NodeCrash(time=3.0, node=1), NodeSlowdown(time=1.0, node=0, factor=0.5)]
        )
        sim, view, inj = make(plan)
        inj.start()
        sim.run(until=2.0)
        assert view.slow_factors == {0: 0.5}
        assert view.node_alive(1)
        sim.run()
        assert not view.node_alive(1)
        assert [a.time for a in inj.applied] == [1.0, 3.0]

    def test_crash_and_recovery(self):
        plan = FaultPlan.crash_at(2.0, node=0, recover_at=5.0)
        sim, view, inj = make(plan)
        inj.start()
        sim.run(until=3.0)
        assert not view.node_alive(0)
        sim.run()
        assert view.node_alive(0)

    def test_crash_times(self):
        plan = FaultPlan.crash_at(2.0, node=1)
        sim, view, inj = make(plan)
        inj.start()
        sim.run()
        assert inj.crash_times() == [(2.0, 1)]

    def test_empty_plan_is_noop(self):
        sim, view, inj = make(FaultPlan([]))
        inj.start()
        sim.run()
        assert sim.now == 0.0
        assert inj.applied == []

    def test_deterministic_replay(self):
        plan = FaultPlan.poisson(
            ClusterSpec(nodes=2, procs_per_node=2),
            horizon=50.0,
            rate=0.2,
            seed=11,
            mean_downtime=3.0,
        )
        logs = []
        for _ in range(2):
            sim, view, inj = make(plan)
            log: list[tuple[float, str, int]] = []
            view.on_change(lambda kind, target: log.append((sim.now, kind, target)))
            inj.start()
            sim.run()
            logs.append(log)
        assert logs[0] == logs[1]
