"""Shared fixtures: the tracker graph, clusters, and common states."""

from __future__ import annotations

import time

import pytest

from repro.apps.tracker.graph import build_tracker_graph
from repro.graph.builders import chain_graph, fork_join_graph
from repro.sim.cluster import ClusterSpec, SINGLE_NODE_SMP, STAMPEDE_CLUSTER
from repro.state import State


@pytest.fixture
def wait_until():
    """Deterministic replacement for ``time.sleep(<guess>)`` in tests.

    Polls ``predicate`` until it holds (returning immediately once it
    does) and fails loudly after ``timeout`` — so concurrency tests wait
    for the actual condition ("the consumer thread has blocked") instead
    of a magic wall-clock duration that flakes on loaded CI machines.
    """

    def _wait(predicate, timeout: float = 5.0, interval: float = 0.0005) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return
            time.sleep(interval)  # noqa: TID251  # the sanctioned poll loop itself
        raise AssertionError(f"condition not reached within {timeout}s")

    return _wait


@pytest.fixture
def smp4() -> ClusterSpec:
    """The paper's single-node experiment platform: one SMP, 4 processors."""
    return SINGLE_NODE_SMP(4)


@pytest.fixture
def stampede() -> ClusterSpec:
    """The full paper platform: 4 nodes x 4 processors."""
    return STAMPEDE_CLUSTER()


@pytest.fixture
def m1() -> State:
    return State(n_models=1)


@pytest.fixture
def m8() -> State:
    return State(n_models=8)


@pytest.fixture
def tracker_graph():
    """The calibrated Figure 2 color-tracker graph."""
    return build_tracker_graph()


@pytest.fixture
def simple_chain():
    """t0(1s) -> t1(2s) -> t2(3s)."""
    return chain_graph([1.0, 2.0, 3.0])


@pytest.fixture
def diamond():
    """source -> two 1s branches -> sink."""
    return fork_join_graph(0.5, [1.0, 1.0], 0.25)
