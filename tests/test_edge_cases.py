"""Edge-case tests across modules (failure paths and odd corners)."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.resources import Store
from repro.state import State


class TestEngineFailurePaths:
    def test_unhandled_process_exception_propagates_from_run(self):
        sim = Simulator()

        def boom(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("task crashed")

        sim.process(boom(sim))
        with pytest.raises(RuntimeError, match="task crashed"):
            sim.run()

    def test_watched_process_exception_delivered_to_waiter(self):
        sim = Simulator()

        def boom(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("inner")

        caught = []

        def watcher(sim, child):
            try:
                yield child
            except RuntimeError as e:
                caught.append(str(e))

        child = sim.process(boom(sim))
        sim.process(watcher(sim, child))
        sim.run()
        assert caught == ["inner"]

    def test_all_of_propagates_failure(self):
        sim = Simulator()
        good = sim.timeout(1.0)
        bad = sim.event()
        combo = sim.all_of([good, bad])
        bad.fail(ValueError("nope"), delay=0.5)
        sim.run()
        assert not combo.ok and isinstance(combo.value, ValueError)


class TestStoreCorners:
    def test_drain_admits_blocked_putters(self):
        sim = Simulator()
        s = Store(sim, capacity=1)
        s.put("a")
        blocked = s.put("b")
        assert not blocked.triggered
        drained = s.drain()
        assert drained == ["a"]
        assert blocked.triggered  # "b" admitted into the freed slot
        assert s.peek() == "b"


class TestHeterogeneousDynamicExecution:
    def test_fast_node_finishes_work_sooner(self):
        """A 2x-speed processor halves execution spans in the dynamic
        executor (work is tracked in nominal seconds)."""
        from repro.graph.builders import chain_graph
        from repro.runtime.dynamic import DynamicExecutor
        from repro.sched.online import PthreadScheduler
        from repro.sim.cluster import ClusterSpec

        g = chain_graph([0.001, 1.0], period=5.0)
        cluster = ClusterSpec(nodes=1, procs_per_node=1, node_speeds=[2.0])
        result = DynamicExecutor(
            g, State(n_models=1), cluster, PthreadScheduler(quantum=10.0)
        ).run(horizon=20.0, max_timestamps=2)
        t1_spans = result.trace.spans_of("t1")
        total = sum(s.duration for s in t1_spans if s.timestamp == 0)
        assert total == pytest.approx(0.5)  # 1.0 nominal / speed 2.0


class TestGanttWindows:
    def test_window_clips_spans(self):
        from repro.metrics.gantt import render_gantt
        from repro.sim.trace import ExecSpan, TraceRecorder

        t = TraceRecorder()
        t.record_span(ExecSpan(0, "early", 0, 0.0, 1.0))
        t.record_span(ExecSpan(0, "late", 1, 100.0, 101.0))
        text = render_gantt(t, t0=0.0, t1=2.0)
        assert "early" in text and "late" not in text

    def test_explicit_processor_subset(self):
        from repro.metrics.gantt import render_gantt
        from repro.sim.trace import ExecSpan, TraceRecorder

        t = TraceRecorder()
        t.record_span(ExecSpan(0, "a", 0, 0.0, 1.0))
        t.record_span(ExecSpan(5, "b", 0, 0.0, 1.0))
        text = render_gantt(t, procs=[5])
        assert "b#0" in text and "a#0" not in text


class TestFigure3Helpers:
    def test_expanded_tracker_structure(self):
        from repro.experiments.figure3 import expanded_tracker_for_tuning

        g = expanded_tracker_for_tuning(8, 4)
        names = set(g.task_names)
        assert "T4" not in names
        assert {"T4.split", "T4.join", "T4.w0", "T4.w3"} <= names
        # The expansion uses the planner's choice for 8 models (4 chunks).
        m8 = State(n_models=8)
        worker_costs = [g.task(f"T4.w{i}").cost(m8) for i in range(4)]
        assert all(c > 0 for c in worker_costs)


class TestTransitionValidation:
    def test_negative_setup_rejected(self):
        from repro.core.transition import DrainTransition, ImmediateTransition

        with pytest.raises(ValueError):
            DrainTransition(setup=-1.0)
        with pytest.raises(ValueError):
            ImmediateTransition(setup=-0.5)

    def test_in_flight_count(self):
        from repro.core.optimal import OptimalScheduler
        from repro.core.transition import TransitionPolicy
        from repro.graph.builders import chain_graph
        from repro.sim.cluster import SINGLE_NODE_SMP

        sol = OptimalScheduler(SINGLE_NODE_SMP(2)).solve(
            chain_graph([1.0, 1.0]), State(n_models=1)
        )
        # L=2, II=1 -> two iterations in flight.
        assert TransitionPolicy.in_flight(sol) == 2


class TestCurveRenderCorners:
    def test_highlight_only(self):
        from repro.metrics.curves import CurvePoint, render_curve

        text = render_curve([], highlight=CurvePoint(0.5, 2.0))
        assert "*" in text

    def test_identical_points_no_crash(self):
        from repro.metrics.curves import CurvePoint, render_curve

        pts = [CurvePoint(0.5, 2.0)] * 3
        assert "o" in render_curve(pts)


class TestStateSpaceProduct:
    def test_two_variable_state_costs(self):
        """Cost models key off any variable; multi-variable states work
        end to end through the scheduler."""
        from repro.core.optimal import OptimalScheduler
        from repro.graph.builders import chain_graph
        from repro.graph.cost import CallableCost
        from repro.graph.channel import ChannelSpec
        from repro.graph.task import Task
        from repro.graph.taskgraph import TaskGraph
        from repro.sim.cluster import SINGLE_NODE_SMP

        g = TaskGraph("multi")
        g.add_channel(ChannelSpec("c"))
        g.add_task(Task("src", cost=0.01, outputs=["c"]))
        g.add_task(
            Task(
                "mix",
                cost=CallableCost(
                    lambda s: 0.1 * s["n_models"] + 0.2 * s["n_cameras"]
                ),
                inputs=["c"],
            )
        )
        g.validate()
        sol = OptimalScheduler(SINGLE_NODE_SMP(2)).solve(
            g, State(n_models=2, n_cameras=3)
        )
        assert sol.latency == pytest.approx(0.01 + 0.8)
