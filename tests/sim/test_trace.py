"""Unit tests for the execution trace recorder."""

from __future__ import annotations

import pytest

from repro.sim.trace import ExecSpan, ItemEvent, TraceRecorder


def span(proc, task, ts, start, end, **kw):
    return ExecSpan(proc=proc, task=task, timestamp=ts, start=start, end=end, **kw)


class TestExecSpan:
    def test_duration(self):
        assert span(0, "t", 0, 1.0, 3.5).duration == 2.5

    def test_overlaps(self):
        a = span(0, "a", 0, 0.0, 2.0)
        assert a.overlaps(span(0, "b", 0, 1.0, 3.0))
        assert not a.overlaps(span(0, "b", 0, 2.0, 3.0))  # touching is fine


class TestTraceRecorder:
    @pytest.fixture
    def trace(self):
        t = TraceRecorder()
        t.record_span(span(0, "T1", 0, 0.0, 1.0))
        t.record_span(span(1, "T2", 0, 1.0, 2.0))
        t.record_span(span(0, "T1", 1, 1.0, 2.0))
        t.record_span(span(1, "T2", 1, 2.0, 3.0))
        return t

    def test_reversed_span_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder().record_span(span(0, "t", 0, 2.0, 1.0))

    def test_views(self, trace):
        assert [s.task for s in trace.spans_on(0)] == ["T1", "T1"]
        assert [s.timestamp for s in trace.spans_of("T2")] == [0, 1]
        assert len(trace.spans_for_timestamp(1)) == 2
        assert trace.timestamps() == [0, 1]
        assert trace.processors() == [0, 1]
        assert trace.tasks() == ["T1", "T2"]

    def test_makespan(self, trace):
        assert trace.makespan == 3.0

    def test_completion_time_any(self, trace):
        assert trace.completion_time(0) == 2.0

    def test_completion_time_with_sinks(self, trace):
        assert trace.completion_time(0, sink_tasks=["T2"]) == 2.0
        assert trace.completion_time(0, sink_tasks=["T3"]) is None

    def test_completion_ignores_preempted_sink_spans(self):
        t = TraceRecorder()
        t.record_span(span(0, "T2", 0, 0.0, 1.0, preempted=True))
        assert t.completion_time(0, sink_tasks=["T2"]) is None

    def test_start_time(self, trace):
        assert trace.start_time(1) == 1.0
        assert trace.start_time(1, source_tasks=["T2"]) == 2.0

    def test_completed_timestamps(self, trace):
        assert trace.completed_timestamps(["T2"]) == [0, 1]

    def test_busy_time_and_utilization(self, trace):
        assert trace.busy_time(0) == 2.0
        assert trace.busy_time(0, until=1.5) == 1.5
        assert trace.utilization([0, 1]) == pytest.approx((2.0 + 2.0) / (3.0 * 2))

    def test_item_events(self, trace):
        trace.record_item(ItemEvent(0.5, "frame", "put", 0, task="T1"))
        assert trace.items[0].channel == "frame"

    def test_clear(self, trace):
        trace.clear()
        assert len(trace) == 0 and trace.makespan == 0.0

    def test_empty_trace(self):
        t = TraceRecorder()
        assert t.completion_time(0) is None
        assert t.utilization([0]) == 0.0
        assert t.busy_time(5) == 0.0


class TestChromeTraceExport:
    @pytest.fixture
    def trace(self):
        t = TraceRecorder()
        t.record_span(span(0, "T1", 0, 0.0, 1.0))
        t.record_span(span(1, "T2", 0, 1.0, 2.0, preempted=True))
        t.record_span(span(0, "T1", 1, 1.0, 2.0, chunk=3))
        t.record_item(ItemEvent(0.5, "frame", "put", 0, task="T1"))
        t.record_item(ItemEvent(1.5, "frame", "consume", 0, task="T2"))
        return t

    def test_span_events(self, trace):
        events = trace.to_chrome_trace()
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 3
        first = next(e for e in xs if e["name"] == "T1" and e["args"]["timestamp"] == 0)
        assert first["tid"] == 0
        assert first["ts"] == 0.0
        assert first["dur"] == pytest.approx(1_000_000.0)

    def test_preempted_and_chunk_args(self, trace):
        events = trace.to_chrome_trace()
        pre = next(e for e in events if e.get("cat") == "preempted")
        assert pre["args"]["preempted"] is True
        chunked = next(
            e for e in events if e["ph"] == "X" and e["args"].get("chunk") is not None
        )
        assert chunked["args"]["chunk"] == 3

    def test_item_instants_on_channel_rows(self, trace):
        events = trace.to_chrome_trace()
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 2
        assert {e["cat"] for e in instants} == {"put", "consume"}
        assert all(e["pid"] == 1 for e in instants)

    def test_metadata_rows_name_processors_and_channels(self, trace):
        events = trace.to_chrome_trace()
        names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names[(0, 0)] == "cpu0"
        assert names[(0, 1)] == "cpu1"
        assert names[(1, 0)] == "frame"

    def test_time_scale(self, trace):
        events = trace.to_chrome_trace(time_scale=1000.0)
        first = next(e for e in events if e["ph"] == "X")
        assert first["dur"] == pytest.approx(1000.0)

    def test_serializable(self, trace):
        import json

        text = json.dumps({"traceEvents": trace.to_chrome_trace()})
        assert '"traceEvents"' in text

    def test_empty_trace_exports_minimal(self):
        events = TraceRecorder().to_chrome_trace()
        assert all(e["ph"] == "M" for e in events)


class TestChromeFlowEvents:
    def make_trace(self):
        t = TraceRecorder()
        t.record_item(ItemEvent(0.5, "frame", "put", 0, task="src"))
        t.record_item(ItemEvent(0.8, "frame", "get", 0, task="detect"))
        t.record_item(ItemEvent(0.9, "frame", "get", 0, task="track"))
        t.record_item(ItemEvent(1.5, "frame", "put", 1, task="src"))
        t.record_item(ItemEvent(1.8, "frame", "get", 1, task="detect"))
        return t

    def test_each_get_gets_a_flow_pair(self):
        events = self.make_trace().to_chrome_trace()
        starts = [e for e in events if e["ph"] == "s"]
        ends = [e for e in events if e["ph"] == "f"]
        assert len(starts) == 3 and len(ends) == 3
        assert {e["id"] for e in starts} == {e["id"] for e in ends}
        assert all(e["cat"] == "flow" for e in starts + ends)

    def test_flow_links_put_time_to_get_time(self):
        events = self.make_trace().to_chrome_trace(time_scale=1.0)
        starts = {e["id"]: e for e in events if e["ph"] == "s"}
        for fin in (e for e in events if e["ph"] == "f"):
            start = starts[fin["id"]]
            assert start["ts"] <= fin["ts"]
            assert start["name"] == fin["name"]
            assert fin["bp"] == "e"
        # Fan-out: ts=0 was got twice, so two arrows leave the same put time.
        ts0 = [e for e in starts.values() if e["args"]["timestamp"] == 0]
        assert len(ts0) == 2
        assert {e["ts"] for e in ts0} == {0.5}
        assert all(e["args"]["task"] == "src" for e in ts0)

    def test_get_without_put_emits_no_flow(self):
        t = TraceRecorder()
        t.record_item(ItemEvent(0.8, "frame", "get", 0, task="detect"))
        events = t.to_chrome_trace()
        assert not [e for e in events if e["ph"] in ("s", "f")]

    def test_flows_serializable(self):
        import json

        events = self.make_trace().to_chrome_trace()
        json.dumps({"traceEvents": events})
