"""Unit tests for the contended communication fabric."""

from __future__ import annotations

import pytest

from repro.errors import ClusterError
from repro.sim.cluster import ClusterSpec, SINGLE_NODE_SMP
from repro.sim.engine import Simulator
from repro.sim.fabric import LinkFabric
from repro.sim.network import CommCost, CommModel


def make_fabric(nodes=2, procs=2, inter_latency=1.0, **kw):
    sim = Simulator()
    cluster = ClusterSpec(nodes=nodes, procs_per_node=procs)
    comm = CommModel(
        cluster,
        intra_node=CommCost(0.5, float("inf")),
        inter_node=CommCost(inter_latency, float("inf")),
    )
    return sim, LinkFabric(sim, cluster, comm, **kw)


class TestTransferTiming:
    def test_same_proc_free(self):
        sim, fabric = make_fabric()

        def go(sim):
            yield from fabric.transfer(100, 0, 0)
            return sim.now

        p = sim.process(go(sim))
        sim.run()
        assert p.value == 0.0

    def test_uncontended_transfer_takes_cost_time(self):
        sim, fabric = make_fabric()

        def go(sim):
            yield from fabric.transfer(100, 0, 2)  # inter-node
            return sim.now

        p = sim.process(go(sim))
        sim.run()
        assert p.value == pytest.approx(1.0)

    def test_concurrent_transfers_serialize_on_shared_link(self):
        sim, fabric = make_fabric()
        ends = []

        def go(sim, src, dst):
            yield from fabric.transfer(100, src, dst)
            ends.append(sim.now)

        # Both transfers cross the same node pair (0 <-> 1).
        sim.process(go(sim, 0, 2))
        sim.process(go(sim, 1, 3))
        sim.run()
        assert sorted(ends) == pytest.approx([1.0, 2.0])
        assert fabric.contended_time == pytest.approx(1.0)

    def test_independent_buses_do_not_contend(self):
        sim, fabric = make_fabric()
        ends = []

        def go(sim, src, dst):
            yield from fabric.transfer(100, src, dst)
            ends.append(sim.now)

        sim.process(go(sim, 0, 1))  # node 0 bus
        sim.process(go(sim, 2, 3))  # node 1 bus
        sim.run()
        assert ends == pytest.approx([0.5, 0.5])
        assert fabric.contended_time == 0.0

    def test_link_capacity_two_allows_pairs(self):
        sim, fabric = make_fabric(link_capacity=2)
        ends = []

        def go(sim, src, dst):
            yield from fabric.transfer(100, src, dst)
            ends.append(sim.now)

        for _ in range(2):
            sim.process(go(sim, 0, 2))
        sim.run()
        assert ends == pytest.approx([1.0, 1.0])

    def test_invalid_capacity(self):
        sim = Simulator()
        cluster = SINGLE_NODE_SMP(2)
        with pytest.raises(ClusterError):
            LinkFabric(sim, cluster, CommModel.free(cluster), link_capacity=0)


class TestContendedExecution:
    def test_contention_free_schedule_matches_plain_comm(self, m1):
        """With one consumer per producer nothing contends: the contended
        executor reproduces the plain-comm timing exactly."""
        from repro.core.schedule import IterationSchedule, PipelinedSchedule, Placement
        from repro.graph.builders import chain_graph
        from repro.runtime.static_exec import StaticExecutor

        g = chain_graph([1.0, 1.0], item_bytes=100)
        cluster = ClusterSpec(nodes=2, procs_per_node=1)
        comm = CommModel(
            cluster, inter_node=CommCost(0.5, float("inf")),
            intra_node=CommCost(0.0, float("inf")),
        )
        it = IterationSchedule(
            [Placement("t0", (0,), 0.0, 1.0), Placement("t1", (1,), 1.5, 1.0)]
        )
        sched = PipelinedSchedule(it, period=2.5, shift=0, n_procs=2)
        plain = StaticExecutor(g, m1, cluster, sched, comm=comm).run(3)
        contended = StaticExecutor(
            g, m1, cluster, sched, comm=comm, contended=True
        ).run(3)
        assert contended.meta["contended_time"] == 0.0
        assert contended.latencies() == pytest.approx(plain.latencies())

    def test_fanin_over_one_link_slips(self, m8):
        """A fork-join whose two branch results cross the same link at the
        same instant: the schedule (computed contention-free) slips by the
        serialized transfer."""
        from repro.core.optimal import OptimalScheduler
        from repro.graph.builders import fork_join_graph
        from repro.runtime.static_exec import StaticExecutor

        g = fork_join_graph(0.0, [1.0, 1.0], 0.5, item_bytes=100)
        cluster = ClusterSpec(nodes=2, procs_per_node=2)
        comm = CommModel(
            cluster,
            intra_node=CommCost(0.0, float("inf")),
            inter_node=CommCost(0.3, float("inf")),
        )
        sol = OptimalScheduler(cluster, comm=comm).solve(g, m8)
        plain = StaticExecutor(g, m8, cluster, sol, comm=comm).run(4)
        contended = StaticExecutor(
            g, m8, cluster, sol, comm=comm, contended=True
        ).run(4)
        assert plain.meta["slips"] == 0
        # Contention can only delay, never speed up.
        for ts in range(4):
            lat_p = plain.latency(ts)
            lat_c = contended.latency(ts)
            assert lat_c is not None and lat_p is not None
            assert lat_c >= lat_p - 1e-9
