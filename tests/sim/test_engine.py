"""Unit tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.errors import ProcessError, SimDeadlock, SimTimeError
from repro.sim.engine import Interrupt, Simulator


class TestSimEvent:
    def test_pending_state(self):
        sim = Simulator()
        ev = sim.event("e")
        assert not ev.triggered and not ev.fired and ev.ok

    def test_succeed_fires_after_run(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(42)
        assert ev.triggered and not ev.fired
        sim.run()
        assert ev.fired and ev.value == 42

    def test_succeed_twice_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(ProcessError):
            ev.succeed()

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(ProcessError):
            sim.event().fail("not an exception")  # type: ignore[arg-type]

    def test_fail_carries_exception(self):
        sim = Simulator()
        ev = sim.event()
        ev.fail(ValueError("boom"))
        sim.run()
        assert not ev.ok and isinstance(ev.value, ValueError)

    def test_callback_after_fired_runs_immediately(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("x")
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]

    def test_delayed_succeed(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("late", delay=5.0)
        sim.run()
        assert sim.now == 5.0


class TestTimeout:
    def test_fires_at_delay(self):
        sim = Simulator()
        t = sim.timeout(2.5, value="done")
        sim.run()
        assert sim.now == 2.5 and t.value == "done"

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimTimeError):
            sim.timeout(-1.0)

    def test_zero_delay_fires_at_current_time(self):
        sim = Simulator()
        sim.timeout(0.0)
        sim.run()
        assert sim.now == 0.0


class TestProcesses:
    def test_return_value_becomes_event_value(self):
        sim = Simulator()

        def gen(sim):
            yield sim.timeout(1.0)
            return "result"

        p = sim.process(gen(sim))
        sim.run()
        assert p.value == "result" and not p.alive

    def test_processes_interleave_deterministically(self):
        sim = Simulator()
        log = []

        def worker(sim, name, delay, repeats):
            for _ in range(repeats):
                yield sim.timeout(delay)
                log.append((sim.now, name))

        sim.process(worker(sim, "slow", 2.0, 2))
        sim.process(worker(sim, "fast", 1.0, 4))
        sim.run()
        assert log == [
            (1.0, "fast"), (2.0, "slow"), (2.0, "fast"), (3.0, "fast"),
            (4.0, "slow"), (4.0, "fast"),
        ]

    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        log = []
        for i in range(5):
            ev = sim.event()
            ev.add_callback(lambda e, i=i: log.append(i))
            ev.succeed()
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_process_waiting_on_process(self):
        sim = Simulator()

        def child(sim):
            yield sim.timeout(3.0)
            return 7

        def parent(sim, c):
            value = yield c
            return value * 2

        c = sim.process(child(sim))
        p = sim.process(parent(sim, c))
        sim.run()
        assert p.value == 14 and sim.now == 3.0

    def test_non_generator_rejected(self):
        sim = Simulator()
        with pytest.raises(ProcessError):
            sim.process("not a generator")  # type: ignore[arg-type]

    def test_yielding_non_event_raises(self):
        sim = Simulator()

        def bad(sim):
            yield 42

        sim.process(bad(sim))
        with pytest.raises(ProcessError):
            sim.run()

    def test_failed_event_raises_inside_process(self):
        sim = Simulator()
        caught = []

        def gen(sim, ev):
            try:
                yield ev
            except ValueError as e:
                caught.append(str(e))
            return "recovered"

        ev = sim.event()
        p = sim.process(gen(sim, ev))
        ev.fail(ValueError("bad"), delay=1.0)
        sim.run()
        assert caught == ["bad"] and p.value == "recovered"

    def test_interrupt_resumes_with_exception(self):
        sim = Simulator()
        log = []

        def sleeper(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt as i:
                log.append((sim.now, i.cause))
            return "done"

        def interrupter(sim, target):
            yield sim.timeout(2.0)
            target.interrupt("wake up")

        p = sim.process(sleeper(sim))
        sim.process(interrupter(sim, p))
        sim.run()
        assert log == [(2.0, "wake up")] and p.value == "done"

    def test_interrupt_dead_process_is_noop(self):
        sim = Simulator()

        def quick(sim):
            yield sim.timeout(0.1)

        p = sim.process(quick(sim))
        sim.run()
        p.interrupt()  # must not raise
        sim.run()

    def test_stale_wakeup_after_interrupt_ignored(self):
        sim = Simulator()
        resumed = []

        def sleeper(sim):
            try:
                yield sim.timeout(5.0)
                resumed.append("timeout")
            except Interrupt:
                resumed.append("interrupt")
            yield sim.timeout(10.0)
            resumed.append("second")

        p = sim.process(sleeper(sim))

        def interrupter(sim):
            yield sim.timeout(1.0)
            p.interrupt()

        sim.process(interrupter(sim))
        sim.run()
        # Original 5s timeout firing at t=5 must not resume the process again.
        assert resumed == ["interrupt", "second"]
        assert sim.now == 11.0


class TestCombinators:
    def test_all_of_collects_values(self):
        sim = Simulator()
        events = [sim.timeout(d, value=d) for d in (3.0, 1.0, 2.0)]
        combo = sim.all_of(events)
        sim.run()
        assert combo.fired and combo.value == [3.0, 1.0, 2.0]
        assert sim.now == 3.0

    def test_all_of_empty_fires_immediately(self):
        sim = Simulator()
        combo = sim.all_of([])
        sim.run()
        assert combo.fired and combo.value == []

    def test_any_of_fires_on_first(self):
        sim = Simulator()
        events = [sim.timeout(d, value=d) for d in (3.0, 1.0, 2.0)]
        combo = sim.any_of(events)

        def waiter(sim):
            value = yield combo
            return value

        p = sim.process(waiter(sim))
        sim.run()
        assert p.value == (1, 1.0)

    def test_any_of_empty_rejected(self):
        sim = Simulator()
        with pytest.raises(ProcessError):
            sim.any_of([])


class TestRun:
    def test_run_until_stops_clock(self):
        sim = Simulator()
        sim.timeout(10.0)
        assert sim.run(until=4.0) == 4.0
        assert sim.peek() == 10.0

    def test_run_past_all_events_advances_to_until(self):
        sim = Simulator()
        sim.timeout(1.0)
        assert sim.run(until=100.0) == 100.0

    def test_deadlock_detection(self):
        sim = Simulator()

        def stuck(sim):
            yield sim.event("never")

        sim.process(stuck(sim), name="stuck-proc")
        with pytest.raises(SimDeadlock) as exc:
            sim.run(check_deadlock=True)
        assert "stuck-proc" in str(exc.value)

    def test_no_deadlock_when_all_finish(self):
        sim = Simulator()

        def fine(sim):
            yield sim.timeout(1.0)

        sim.process(fine(sim))
        sim.run(check_deadlock=True)

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False


class TestDeterminismUnderFailure:
    """Same seed + same fault plan => bit-identical simulation.

    The fault subsystem leans on the engine's (time, seq) total event
    order: injected failures, seeded scheduler jitter, and heartbeat
    monitors must all replay identically, or failover experiments would
    not be reproducible.
    """

    def _run(self):
        from repro.faults import FaultPlan
        from repro.graph.builders import chain_graph
        from repro.runtime.dynamic import DynamicExecutor
        from repro.sched.online import PthreadScheduler
        from repro.sim.cluster import ClusterSpec
        from repro.state import State

        cluster = ClusterSpec(nodes=2, procs_per_node=1)
        plan = FaultPlan.poisson(
            cluster, horizon=10.0, rate=0.2, seed=7, mean_downtime=2.0
        )
        ex = DynamicExecutor(
            chain_graph([0.2, 0.2], period=0.2),
            State(n_models=1),
            cluster,
            PthreadScheduler(quantum=0.01, jitter_seed=11),
            faults=plan,
        )
        return ex.run(horizon=10.0, max_timestamps=20)

    def test_identical_trace_across_runs(self):
        a, b = self._run(), self._run()
        assert a.trace.spans == b.trace.spans
        assert a.trace.items == b.trace.items
        assert a.completion_times == b.completion_times
        assert a.meta["faults_applied"] == b.meta["faults_applied"]
        assert a.meta["dead_procs"] == b.meta["dead_procs"]

    def test_different_seed_diverges(self):
        from repro.faults import FaultPlan
        from repro.sim.cluster import ClusterSpec

        cluster = ClusterSpec(nodes=2, procs_per_node=1)
        a = FaultPlan.poisson(cluster, horizon=50.0, rate=0.5, seed=1)
        b = FaultPlan.poisson(cluster, horizon=50.0, rate=0.5, seed=2)
        assert [e.time for e in a.events] != [e.time for e in b.events]
