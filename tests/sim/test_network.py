"""Unit tests for the communication cost model."""

from __future__ import annotations

import pytest

from repro.errors import ClusterError
from repro.sim.cluster import ClusterSpec
from repro.sim.network import CommCost, CommModel


class TestCommCost:
    def test_alpha_beta(self):
        c = CommCost(latency=0.001, bandwidth=1e6)
        assert c.time(0) == pytest.approx(0.001)
        assert c.time(1_000_000) == pytest.approx(1.001)

    def test_infinite_bandwidth(self):
        c = CommCost(latency=0.5, bandwidth=float("inf"))
        assert c.time(10**9) == 0.5

    def test_negative_size_rejected(self):
        with pytest.raises(ClusterError):
            CommCost(0.0, 1.0).time(-1)

    @pytest.mark.parametrize("lat,bw", [(-1.0, 1.0), (0.0, 0.0), (0.0, -5.0)])
    def test_invalid_params(self, lat, bw):
        with pytest.raises(ClusterError):
            CommCost(latency=lat, bandwidth=bw)


class TestCommModel:
    @pytest.fixture
    def cluster(self):
        return ClusterSpec(nodes=2, procs_per_node=2)

    def test_three_tiers(self, cluster):
        m = CommModel(
            cluster,
            intra_node=CommCost(1.0, float("inf")),
            inter_node=CommCost(10.0, float("inf")),
        )
        assert m.transfer_time(100, 0, 0) == 0.0      # same processor
        assert m.transfer_time(100, 0, 1) == 1.0      # same node
        assert m.transfer_time(100, 1, 2) == 10.0     # cross node

    def test_free_model(self, cluster):
        m = CommModel.free(cluster)
        assert m.transfer_time(10**9, 0, 3) == 0.0

    def test_uniform_model(self, cluster):
        m = CommModel.uniform(cluster, latency=2.0, bandwidth=float("inf"))
        assert m.transfer_time(0, 0, 1) == 2.0
        assert m.transfer_time(0, 0, 2) == 2.0
        assert m.transfer_time(0, 1, 1) == 0.0

    def test_worst_case_includes_inter_node_only_multinode(self, cluster):
        m = CommModel(
            cluster,
            intra_node=CommCost(1.0, float("inf")),
            inter_node=CommCost(5.0, float("inf")),
        )
        assert m.worst_case(0) == 5.0
        single = CommModel(
            ClusterSpec(1, 4),
            intra_node=CommCost(1.0, float("inf")),
            inter_node=CommCost(5.0, float("inf")),
        )
        assert single.worst_case(0) == 1.0

    def test_defaults_ordered(self, cluster):
        m = CommModel(cluster)
        size = 100_000
        assert (
            m.transfer_time(size, 0, 0)
            < m.transfer_time(size, 0, 1)
            < m.transfer_time(size, 0, 2)
        )
