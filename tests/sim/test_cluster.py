"""Unit tests for the cluster model."""

from __future__ import annotations

import pytest

from repro.errors import ClusterError
from repro.sim.cluster import ClusterSpec, Processor, SINGLE_NODE_SMP, STAMPEDE_CLUSTER


class TestClusterSpec:
    def test_paper_platform_shape(self):
        c = STAMPEDE_CLUSTER()
        assert c.nodes == 4 and c.procs_per_node == 4
        assert c.total_processors == 16 and len(c) == 16

    def test_processor_indexing(self):
        c = ClusterSpec(nodes=2, procs_per_node=3)
        p = c.processor(4)
        assert (p.index, p.node, p.slot) == (4, 1, 1)

    def test_indices_dense_and_ordered(self):
        c = ClusterSpec(nodes=3, procs_per_node=2)
        assert [p.index for p in c] == list(range(6))

    def test_same_node(self):
        c = ClusterSpec(nodes=2, procs_per_node=2)
        assert c.same_node(0, 1)
        assert not c.same_node(1, 2)
        assert c.same_node(2, 3)

    def test_node_processors(self):
        c = ClusterSpec(nodes=2, procs_per_node=2)
        assert [p.index for p in c.node_processors(1)] == [2, 3]

    def test_node_speeds(self):
        c = ClusterSpec(nodes=2, procs_per_node=1, node_speeds=[1.0, 2.0])
        assert c.processor(1).speed == 2.0

    def test_out_of_range_rejected(self):
        c = SINGLE_NODE_SMP(2)
        with pytest.raises(ClusterError):
            c.processor(2)
        with pytest.raises(ClusterError):
            c.node_processors(1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(nodes=0, procs_per_node=1),
            dict(nodes=1, procs_per_node=0),
            dict(nodes=2, procs_per_node=1, node_speeds=[1.0]),
            dict(nodes=1, procs_per_node=1, node_speeds=[0.0]),
        ],
    )
    def test_invalid_specs(self, kwargs):
        with pytest.raises(ClusterError):
            ClusterSpec(**kwargs)

    def test_equality_and_hash(self):
        assert SINGLE_NODE_SMP(4) == SINGLE_NODE_SMP(4)
        assert SINGLE_NODE_SMP(4) != SINGLE_NODE_SMP(2)
        assert hash(SINGLE_NODE_SMP(4)) == hash(SINGLE_NODE_SMP(4))

    def test_processor_ordering(self):
        a, b = Processor(0, 0, 0), Processor(1, 0, 1)
        assert a < b


class TestDegradedShapes:
    def test_without_node_drops_its_processors(self):
        c = ClusterSpec(nodes=3, procs_per_node=2, node_speeds=[1.0, 2.0, 3.0])
        d = c.without_node(1)
        assert d.nodes == 2 and d.total_processors == 4
        assert d.node_speeds == (1.0, 3.0)
        assert [p.index for p in d] == [0, 1, 2, 3]

    def test_without_last_node_rejected(self):
        with pytest.raises(ClusterError):
            SINGLE_NODE_SMP(4).without_node(0)

    def test_without_processor_makes_non_uniform(self):
        c = ClusterSpec(nodes=2, procs_per_node=2)
        d = c.without_processor(3)
        assert d.procs_by_node == (2, 1)
        assert not d.uniform and c.uniform
        assert d.procs_per_node == 2  # dp cap = largest node
        assert [(p.node, p.slot) for p in d] == [(0, 0), (0, 1), (1, 0)]
        assert [p.index for p in d.node_processors(1)] == [2]

    def test_without_processor_removes_emptied_node(self):
        c = ClusterSpec(nodes=2, procs_per_node=1)
        d = c.without_processor(0)
        assert d.nodes == 1 and d.total_processors == 1

    def test_explicit_procs_by_node(self):
        c = ClusterSpec(procs_by_node=[3, 1])
        assert c.nodes == 2 and c.total_processors == 4
        assert c.node_of(3) == 1
        with pytest.raises(ClusterError):
            ClusterSpec(nodes=2, procs_per_node=2, procs_by_node=[2, 2])

    def test_with_node_speed(self):
        c = ClusterSpec(nodes=2, procs_per_node=2)
        s = c.with_node_speed(1, 0.5)
        assert s.node_speeds == (1.0, 0.5)
        assert s.processor(2).speed == 0.5
        assert s.procs_by_node == c.procs_by_node

    def test_shape_key_ignores_which_node_died(self):
        c = ClusterSpec(nodes=3, procs_per_node=2)
        assert c.without_node(0).shape_key() == c.without_node(2).shape_key()
        assert c.without_processor(0).shape_key() == c.without_processor(5).shape_key()
        assert c.without_node(0).shape_key() != c.without_processor(0).shape_key()

    def test_degraded_equality_and_hash(self):
        c = ClusterSpec(nodes=2, procs_per_node=2)
        assert c.without_processor(3) == c.without_processor(3)
        assert hash(c.without_processor(3)) == hash(c.without_processor(3))
        assert c.without_processor(3) != c.without_processor(1)
