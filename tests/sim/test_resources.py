"""Unit tests for Resource and Store."""

from __future__ import annotations

import pytest

from repro.errors import ProcessError
from repro.sim.engine import Simulator
from repro.sim.resources import Resource, Store


class TestResource:
    def test_grants_up_to_capacity_immediately(self):
        sim = Simulator()
        r = Resource(sim, capacity=2)
        e1, e2, e3 = r.request(), r.request(), r.request()
        assert e1.triggered and e2.triggered and not e3.triggered
        assert r.in_use == 2 and r.queue_length == 1

    def test_release_wakes_fifo(self):
        sim = Simulator()
        r = Resource(sim, capacity=1)
        order = []

        def job(sim, r, name, work):
            grant = yield r.request()
            yield sim.timeout(work)
            order.append(name)
            r.release(grant)

        for name in ("a", "b", "c"):
            sim.process(job(sim, r, name, 1.0))
        sim.run()
        assert order == ["a", "b", "c"] and sim.now == 3.0

    def test_release_idle_raises(self):
        sim = Simulator()
        r = Resource(sim, capacity=1)
        with pytest.raises(ProcessError):
            r.release()

    def test_capacity_validation(self):
        with pytest.raises(ProcessError):
            Resource(Simulator(), capacity=0)

    def test_cancel_pending_request(self):
        sim = Simulator()
        r = Resource(sim, capacity=1)
        r.request()
        pending = r.request()
        assert r.cancel(pending) is True
        assert r.cancel(pending) is False  # already removed
        assert r.queue_length == 0

    def test_available_accounting(self):
        sim = Simulator()
        r = Resource(sim, capacity=3)
        g = r.request()
        assert r.available == 2
        r.release(g)
        assert r.available == 3


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        s = Store(sim)
        s.put("x")
        got = s.get()
        assert got.triggered and got.value == "x"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        s = Store(sim)
        result = []

        def consumer(sim, s):
            item = yield s.get()
            result.append((sim.now, item))

        def producer(sim, s):
            yield sim.timeout(2.0)
            yield s.put("late")

        sim.process(consumer(sim, s))
        sim.process(producer(sim, s))
        sim.run()
        assert result == [(2.0, "late")]

    def test_fifo_ordering(self):
        sim = Simulator()
        s = Store(sim)
        for i in range(5):
            s.put(i)
        values = [s.get().value for _ in range(5)]
        assert values == [0, 1, 2, 3, 4]

    def test_bounded_put_blocks(self):
        sim = Simulator()
        s = Store(sim, capacity=1)
        done = []

        def producer(sim, s):
            yield s.put("a")
            yield s.put("b")   # blocks until consumer gets "a"
            done.append(sim.now)

        def consumer(sim, s):
            yield sim.timeout(3.0)
            yield s.get()

        sim.process(producer(sim, s))
        sim.process(consumer(sim, s))
        sim.run()
        assert done == [3.0]

    def test_is_full(self):
        sim = Simulator()
        s = Store(sim, capacity=2)
        s.put(1)
        assert not s.is_full
        s.put(2)
        assert s.is_full

    def test_try_get(self):
        sim = Simulator()
        s = Store(sim)
        assert s.try_get() == (False, None)
        s.put("v")
        assert s.try_get() == (True, "v")

    def test_peek_does_not_remove(self):
        sim = Simulator()
        s = Store(sim)
        s.put("head")
        assert s.peek() == "head"
        assert len(s) == 1

    def test_drain(self):
        sim = Simulator()
        s = Store(sim)
        for i in range(3):
            s.put(i)
        assert s.drain() == [0, 1, 2]
        assert len(s) == 0

    def test_capacity_validation(self):
        with pytest.raises(ProcessError):
            Store(Simulator(), capacity=0)

    def test_handoff_to_waiting_getter(self):
        sim = Simulator()
        s = Store(sim, capacity=1)
        got = s.get()           # waits
        assert not got.triggered
        put = s.put("direct")   # hand straight to the getter
        assert put.triggered and got.triggered and got.value == "direct"
        assert len(s) == 0
