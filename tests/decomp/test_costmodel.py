"""Unit tests for the Table 1 cost model and planner."""

from __future__ import annotations

import pytest

from repro.errors import DecompositionError
from repro.decomp.costmodel import DetectionCostModel, TABLE1_CALIBRATION
from repro.decomp.planner import DecompositionPlanner
from repro.decomp.strategies import Decomposition
from repro.state import State, StateSpace


class TestCalibration:
    """The calibrated model vs the paper's six Table 1 measurements."""

    @pytest.mark.parametrize(
        "fp,m,mp,paper",
        [
            (1, 1, 1, 0.876),
            (4, 1, 1, 0.275),
            (1, 8, 8, 1.857),
            (4, 8, 8, 2.155),
            (1, 8, 1, 6.850),
            (4, 8, 1, 2.033),
        ],
    )
    def test_within_six_percent_of_paper(self, fp, m, mp, paper):
        got = TABLE1_CALIBRATION.latency(Decomposition(fp, mp), m)
        assert abs(got - paper) / paper < 0.06

    def test_paper_orderings(self):
        cm = TABLE1_CALIBRATION
        # 1 model: frame division wins.
        assert cm.latency(Decomposition(4, 1), 1) < cm.latency(Decomposition(1, 1), 1)
        # 8 models: model division wins over everything.
        best = cm.latency(Decomposition(1, 8), 8)
        assert best < cm.latency(Decomposition(4, 1), 8)
        assert best < cm.latency(Decomposition(4, 8), 8)
        assert best < cm.latency(Decomposition(1, 1), 8)

    def test_serial_time_linear_in_models(self):
        cm = TABLE1_CALIBRATION
        t1, t2, t4 = cm.serial_time(1), cm.serial_time(2), cm.serial_time(4)
        assert (t2 - t1) == pytest.approx((t4 - t2) / 2)

    def test_speedup(self):
        s = TABLE1_CALIBRATION.speedup(Decomposition(4, 1), 1)
        assert s == pytest.approx(0.876 / 0.275, rel=0.02)


class TestCostModelValidation:
    def test_negative_params(self):
        with pytest.raises(DecompositionError):
            DetectionCostModel(scan_rate=-1, setup=0, dispatch=0)

    def test_zero_workers(self):
        with pytest.raises(DecompositionError):
            DetectionCostModel(scan_rate=1, setup=0, dispatch=0, workers=0)

    def test_mp_exceeding_models(self):
        with pytest.raises(DecompositionError):
            TABLE1_CALIBRATION.chunk_time(Decomposition(1, 8), 4)

    def test_waves(self):
        cm = DetectionCostModel(scan_rate=8.0, setup=0.0, dispatch=0.0, workers=4)
        # 32 chunks on 4 workers -> 8 waves.
        d = Decomposition(4, 8)
        assert cm.latency(d, 8) == pytest.approx(8 * cm.chunk_time(d, 8))


class TestPlanner:
    @pytest.fixture
    def planner(self):
        return DecompositionPlanner(TABLE1_CALIBRATION)

    def test_one_model_prefers_frame_split(self, planner):
        choice = planner.plan(State(n_models=1))
        assert choice.decomposition.mp == 1 and choice.decomposition.fp > 1

    def test_eight_models_prefers_model_split(self, planner):
        choice = planner.plan(State(n_models=8))
        assert choice.decomposition.mp > 1

    def test_candidates_sorted_best_first(self, planner):
        cands = planner.candidates(State(n_models=8))
        lats = [lat for _, lat in cands]
        assert lats == sorted(lats)

    def test_plan_cached(self, planner):
        a = planner.plan(State(n_models=4))
        assert planner.plan(State(n_models=4)) is a

    def test_table_covers_space(self, planner):
        table = planner.table(StateSpace.range("n_models", 1, 5))
        assert len(table) == 5

    def test_speedup_positive(self, planner):
        for m in (1, 2, 4, 8):
            assert planner.plan(State(n_models=m)).speedup >= 1.0

    def test_invalid_state(self, planner):
        with pytest.raises(DecompositionError):
            planner.plan(State(other=1))
        with pytest.raises(DecompositionError):
            planner.plan(State(n_models=0))

    def test_paper_grid_planner_matches_table1(self):
        """Restricted to the paper's grid, the planner picks the table's
        winners: FP=4 at one model, MP=8 at eight."""
        planner = DecompositionPlanner(
            TABLE1_CALIBRATION, fp_options=(1, 4), mp_options=(1, 8)
        )
        assert planner.plan(State(n_models=1)).decomposition == Decomposition(4, 1)
        assert planner.plan(State(n_models=8)).decomposition == Decomposition(1, 8)

    def test_frozen_planner_keeps_decomposition(self, planner):
        frozen = planner.frozen(State(n_models=8))
        d8 = planner.plan(State(n_models=8)).decomposition
        assert frozen.plan(State(n_models=4)).decomposition == d8

    def test_frozen_planner_raises_when_inapplicable(self, planner):
        frozen = planner.frozen(State(n_models=8))  # MP=4 decomposition
        with pytest.raises(DecompositionError):
            frozen.plan(State(n_models=1))

    def test_chunk_adapters_consistent(self, planner):
        """chunk_cost_fn x chunks_for_fn reproduce the planned latency."""
        import math

        state = State(n_models=8)
        choice = planner.plan(state)
        chunk_cost = planner.chunk_cost_fn()(state, 0)
        n_chunks = planner.chunks_for_fn()(state, planner.workers)
        waves = math.ceil(n_chunks / planner.workers)
        assert waves * chunk_cost == pytest.approx(choice.predicted_latency)
