"""Unit tests for the live splitter/worker/joiner pool (Figure 9)."""

from __future__ import annotations


import pytest

from repro.errors import DecompositionError
from repro.decomp.sjw import SplitJoinPool
from repro.decomp.strategies import Decomposition, WorkChunk
from repro.state import State


def square_pool(n_workers=3, n_chunks=6):
    """Pool that squares a list by chunking it."""

    def split(state, inputs):
        values = inputs["values"]
        per = max(1, len(values) // n_chunks)
        pieces = []
        idx = 0
        for lo in range(0, len(values), per):
            chunk = WorkChunk(idx, (lo, min(lo + per, len(values))), (0,))
            pieces.append((chunk, {"values": values[lo : lo + per]}))
            idx += 1
        return pieces

    def work(state, chunk, chunk_inputs):
        return [v * v for v in chunk_inputs["values"]]

    def join(state, results):
        flat = [v for part in results for v in part]
        return {"out": flat}

    return SplitJoinPool(n_workers, split, work, join)


class TestCompute:
    def test_matches_serial_computation(self):
        with square_pool() as pool:
            out = pool.compute(State(n_models=1), {"values": list(range(20))})
            assert out["out"] == [v * v for v in range(20)]

    def test_results_sorted_by_chunk_index(self):
        """Workers finish out of order; the done-channel sorting network
        restores chunk order."""
        import time

        def split(state, inputs):
            return [
                (WorkChunk(i, (i, i + 1), (0,)), {"i": i, "delay": (7 - i) * 0.002})
                for i in range(8)
            ]

        def work(state, chunk, ci):
            time.sleep(ci["delay"])  # noqa: TID251  # simulated work, not a sync wait
            return ci["i"]

        def join(state, results):
            return {"out": results}

        with SplitJoinPool(4, split, work, join) as pool:
            out = pool.compute(State(n_models=1), {})
            assert out["out"] == list(range(8))

    def test_reusable_across_invocations(self):
        with square_pool() as pool:
            for _ in range(3):
                out = pool.compute(State(n_models=1), {"values": [1, 2, 3]})
                assert out["out"] == [1, 4, 9]
            assert pool.chunks_processed >= 9

    def test_worker_exception_propagates(self):
        def split(state, inputs):
            return [(WorkChunk(0, (0, 1), (0,)), {})]

        def work(state, chunk, ci):
            raise ValueError("chunk failed")

        with SplitJoinPool(2, split, work, lambda s, r: {"out": r}) as pool:
            with pytest.raises(ValueError, match="chunk failed"):
                pool.compute(State(n_models=1), {})

    def test_empty_split_rejected(self):
        with SplitJoinPool(1, lambda s, i: [], None, None) as pool:  # type: ignore[arg-type]
            with pytest.raises(DecompositionError):
                pool.compute(State(n_models=1), {})

    def test_shutdown_idempotent(self):
        pool = square_pool()
        pool.shutdown()
        pool.shutdown()
        with pytest.raises(DecompositionError):
            pool.compute(State(n_models=1), {"values": [1]})

    def test_invalid_worker_count(self):
        with pytest.raises(DecompositionError):
            SplitJoinPool(0, lambda s, i: [], None, None)  # type: ignore[arg-type]


class TestDataParallelT4Equivalence:
    def test_chunked_t4_equals_serial_t4(self):
        """Figure 9's requirement: the expansion 'exactly duplicates the
        original task's behavior' — chunk reassembly is bit-exact."""
        import numpy as np

        from repro.apps.colormodel import color_histogram
        from repro.apps.tracker.kernels import (
            change_detection,
            frame_histogram,
            target_detection,
            target_detection_chunk,
        )
        from repro.apps.video import VideoSource
        from repro.decomp.strategies import Decomposition

        video = VideoSource(n_targets=4, height=48, width=64, seed=5)
        frame = video.frame(3)
        mask = change_detection(frame, video.frame(2))
        fh = frame_histogram(frame)
        models = [color_histogram(video.model_patch(i)) for i in range(4)]

        serial = target_detection(frame, models, fh, mask)
        for decomp in (Decomposition(2, 2), Decomposition(4, 1), Decomposition(1, 4)):
            reassembled = np.zeros_like(serial)
            for chunk in decomp.chunks(frame.shape[0], 4):
                part = target_detection_chunk(frame, chunk, models, fh, mask)
                lo, hi = chunk.row_range
                for j, mi in enumerate(chunk.model_indices):
                    reassembled[mi, lo:hi] = part[j]
            np.testing.assert_array_equal(reassembled, serial)
