"""Unit and property tests for decomposition strategies."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import DecompositionError
from repro.decomp.strategies import Decomposition, WorkChunk, enumerate_decompositions


class TestWorkChunk:
    def test_properties(self):
        c = WorkChunk(0, (10, 20), (0, 3))
        assert c.rows == 10 and c.n_models == 2

    def test_invalid_range(self):
        with pytest.raises(DecompositionError):
            WorkChunk(0, (5, 5), (0,))

    def test_empty_models(self):
        with pytest.raises(DecompositionError):
            WorkChunk(0, (0, 5), ())


class TestDecomposition:
    def test_chunk_count(self):
        assert Decomposition(4, 8).n_chunks == 32
        assert Decomposition(1, 1).label == "FP=1,MP=1"

    def test_invalid(self):
        with pytest.raises(DecompositionError):
            Decomposition(0, 1)

    def test_model_groups_even(self):
        assert Decomposition(1, 4).model_groups(8) == [
            (0, 1), (2, 3), (4, 5), (6, 7)
        ]

    def test_model_groups_uneven(self):
        groups = Decomposition(1, 3).model_groups(5)
        assert groups == [(0, 1), (2, 3), (4,)]

    def test_too_many_groups_rejected(self):
        with pytest.raises(DecompositionError):
            Decomposition(1, 4).model_groups(2)

    def test_row_bands(self):
        assert Decomposition(4, 1).row_bands(100) == [
            (0, 25), (25, 50), (50, 75), (75, 100)
        ]

    @given(
        fp=st.integers(1, 8),
        mp=st.integers(1, 8),
        rows=st.integers(8, 480),
        models=st.integers(1, 8),
    )
    def test_chunks_exactly_partition_the_work(self, fp, mp, rows, models):
        """Every (row, model) pair is covered by exactly one chunk."""
        if mp > models or fp > rows:
            return
        decomp = Decomposition(fp, mp)
        chunks = decomp.chunks(rows, models)
        assert len(chunks) == decomp.n_chunks
        coverage = [[0] * models for _ in range(rows)]
        for chunk in chunks:
            lo, hi = chunk.row_range
            for r in range(lo, hi):
                for m in chunk.model_indices:
                    coverage[r][m] += 1
        assert all(c == 1 for row in coverage for c in row)

    @given(rows=st.integers(8, 480), fp=st.integers(1, 8))
    def test_bands_nearly_equal(self, rows, fp):
        if fp > rows:
            return
        bands = Decomposition(fp, 1).row_bands(rows)
        sizes = [hi - lo for lo, hi in bands]
        assert max(sizes) - min(sizes) <= 1


class TestEnumerate:
    def test_mp_capped_at_model_count(self):
        ds = list(enumerate_decompositions(2, fp_options=(1,), mp_options=(1, 2, 4, 8)))
        assert {d.mp for d in ds} == {1, 2}

    def test_paper_grid(self):
        ds = list(enumerate_decompositions(8, fp_options=(1, 4), mp_options=(1, 8)))
        assert {(d.fp, d.mp) for d in ds} == {(1, 1), (1, 8), (4, 1), (4, 8)}

    def test_invalid_model_count(self):
        with pytest.raises(DecompositionError):
            list(enumerate_decompositions(0))
