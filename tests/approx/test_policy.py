"""The solver ladder: gap guarantees, ε=0 identity, escalation, caching."""

from __future__ import annotations

import pytest

from repro.analysis import verify_solution
from repro.apps.tracker.graph import TRACKER_STATES, build_tracker_graph
from repro.approx import (
    BoundedPolicy,
    ExactPolicy,
    ListPolicy,
    PolicyLadder,
    resolve_policy,
    solve_states,
)
from repro.core.cache import ScheduleCache, request_digest
from repro.core.optimal import OptimalScheduler
from repro.core.serialize import solution_to_dict
from repro.errors import ScheduleError
from repro.graph.builders import random_dag
from repro.sim.cluster import SINGLE_NODE_SMP, ClusterSpec
from repro.state import State

EPSILONS = (0.0, 0.1, 0.5)


@pytest.fixture(scope="module")
def tracker():
    return build_tracker_graph()


@pytest.fixture(scope="module")
def cluster():
    return ClusterSpec(nodes=2, procs_per_node=2)


@pytest.fixture(scope="module")
def scheduler(cluster):
    return OptimalScheduler(cluster)


@pytest.fixture(scope="module")
def exact_by_state(tracker, scheduler):
    return {
        state: ExactPolicy().solve(tracker, state, scheduler)
        for state in TRACKER_STATES
    }


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_bounded_rung_honors_epsilon_on_tracker_space(
    tracker, scheduler, cluster, exact_by_state, epsilon
):
    """Acceptance: rung 2 never serves a gap above ε, verified by S013."""
    policy = BoundedPolicy(epsilon)
    for state in TRACKER_STATES:
        sol = policy.solve(tracker, state, scheduler)
        exact = exact_by_state[state]
        assert sol.latency <= exact.latency * (1.0 + epsilon) + 1e-9
        cert = sol.certificate
        assert cert is not None
        assert cert.gap_bound <= epsilon + 1e-9
        # The certificate's lower bound really is one: L* is above it.
        assert cert.lower_bound <= exact.latency + 1e-9
        report = verify_solution(sol, tracker, cluster)
        assert not report.findings, f"eps={epsilon} {state}: {report.summary()}"


def test_epsilon_zero_is_bitwise_identical_to_exact(
    tracker, scheduler, exact_by_state
):
    """Acceptance: ε=0 degenerates to the exact search bit for bit."""
    policy = BoundedPolicy(0.0)
    for state in TRACKER_STATES:
        req_exact = ExactPolicy().request(scheduler, tracker, state)
        req_zero = policy.request(scheduler, tracker, state)
        assert req_exact == req_zero
        assert request_digest(req_exact) == request_digest(req_zero)
        sol = policy.solve(tracker, state, scheduler)
        assert solution_to_dict(sol) == solution_to_dict(exact_by_state[state])


def test_exact_certificate_claims_zero_gap(exact_by_state):
    for sol in exact_by_state.values():
        cert = sol.certificate
        assert cert is not None and cert.policy == "exact"
        assert cert.epsilon == 0.0 and cert.gap_bound == 0.0
        assert cert.lower_bound == sol.latency


def test_list_rung_serves_heft_with_certified_gap(tracker, scheduler, cluster):
    policy = ListPolicy()
    for state in (State(n_models=1), State(n_models=4), State(n_models=8)):
        sol = policy.solve(tracker, state, scheduler)
        cert = sol.certificate
        assert cert is not None and cert.policy == "list"
        assert cert.lower_bound == cert.root_bound > 0.0
        assert sol.latency >= cert.lower_bound - 1e-9
        report = verify_solution(sol, tracker, cluster)
        assert not report.findings, report.summary()


def test_bounded_never_beats_exact_latency(tracker, scheduler, exact_by_state):
    """Soundness sanity: no rung can serve below L*."""
    for epsilon in EPSILONS:
        for state in TRACKER_STATES:
            sol = BoundedPolicy(epsilon).solve(tracker, state, scheduler)
            assert sol.latency >= exact_by_state[state].latency - 1e-9


def test_ladder_escalates_exact_to_bounded():
    """A 1-node exact budget must escalate to the bounded stage."""
    graph = random_dag(n_tasks=6, seed=3, dp_prob=0.3)
    cluster = SINGLE_NODE_SMP(3)
    scheduler = OptimalScheduler(cluster)
    state = State(n_models=2)
    exact = ExactPolicy().solve(graph, state, scheduler)
    ladder = PolicyLadder(epsilon=0.5, exact_budget=1, bounded_budget=10_000_000)
    sol = ladder.solve(graph, state, scheduler)
    cert = sol.certificate
    assert cert is not None and cert.policy == "bounded"
    assert cert.epsilon == 0.5
    assert sol.latency <= exact.latency * 1.5 + 1e-9


def test_ladder_exhausted_serves_list_fallback():
    """Blowing every stage budget still serves a certified schedule."""
    graph = random_dag(n_tasks=7, seed=5, dp_prob=0.3)
    cluster = SINGLE_NODE_SMP(3)
    scheduler = OptimalScheduler(cluster)
    state = State(n_models=2)
    ladder = PolicyLadder(epsilon=0.0, exact_budget=1, bounded_budget=1)
    sol = ladder.solve(graph, state, scheduler)
    cert = sol.certificate
    assert cert is not None and cert.policy in ("bounded", "list")
    report = verify_solution(sol, graph, cluster)
    assert not report.findings, report.summary()


def test_ladder_with_room_matches_exact(tracker, scheduler, exact_by_state):
    """Budgets nobody hits leave the exact stage in charge."""
    ladder = PolicyLadder(epsilon=0.5)
    state = State(n_models=3)
    sol = ladder.solve(tracker, state, scheduler)
    assert sol.latency == exact_by_state[state].latency
    assert sol.certificate is not None and sol.certificate.policy == "exact"


def test_resolve_policy_specs():
    assert isinstance(resolve_policy(None), ExactPolicy)
    assert isinstance(resolve_policy("exact"), ExactPolicy)
    assert isinstance(resolve_policy("list"), ListPolicy)
    bounded = resolve_policy("bounded:0.25")
    assert isinstance(bounded, BoundedPolicy) and bounded.epsilon == 0.25
    assert resolve_policy("bounded").epsilon == 0.1
    ladder = resolve_policy("ladder:0.3")
    assert isinstance(ladder, PolicyLadder) and ladder.epsilon == 0.3
    passthrough = BoundedPolicy(0.7)
    assert resolve_policy(passthrough) is passthrough
    for bad in ("oracle", "bounded:abc", "exact:1", 42):
        with pytest.raises(ScheduleError):
            resolve_policy(bad)
    with pytest.raises(ScheduleError):
        BoundedPolicy(-0.1)


def test_policies_cache_and_digests_separate(tracker, scheduler, tmp_path):
    cache = ScheduleCache(tmp_path / "sched")
    state = State(n_models=2)
    exact_req = ExactPolicy().request(scheduler, tracker, state)
    bounded_req = BoundedPolicy(0.5).request(scheduler, tracker, state)
    list_req = ListPolicy().request(scheduler, tracker, state)
    digests = {
        request_digest(exact_req),
        request_digest(bounded_req),
        request_digest(list_req),
    }
    assert len(digests) == 3  # each rung answers a different question

    first = BoundedPolicy(0.5).solve(tracker, state, scheduler, cache=cache)
    again = BoundedPolicy(0.5).solve(tracker, state, scheduler, cache=cache)
    assert cache.stats.hits == 1
    assert solution_to_dict(first) == solution_to_dict(again)
    assert again.certificate is not None and again.certificate.policy in (
        "exact",
        "bounded",
    )


def test_certificate_serialization_roundtrip(tracker, scheduler, tmp_path):
    """list-rung certificates survive the cache's JSON round trip."""
    cache = ScheduleCache(tmp_path / "sched")
    state = State(n_models=3)
    sol = ListPolicy().solve(tracker, state, scheduler, cache=cache)
    hit = ListPolicy().solve(tracker, state, scheduler, cache=cache)
    assert cache.stats.hits == 1
    assert hit.certificate == sol.certificate
    assert hit.certificate.policy == "list"


def test_solve_states_batch(tracker, scheduler, exact_by_state, tmp_path):
    cache = ScheduleCache(tmp_path / "sched")
    states = list(TRACKER_STATES)[:4]
    sols = solve_states(
        tracker, states, scheduler, policy="bounded:0.0", cache=cache
    )
    assert [s.latency for s in sols] == [
        exact_by_state[st].latency for st in states
    ]
    again = solve_states(
        tracker, states, scheduler, policy="bounded:0.0", cache=cache
    )
    assert cache.stats.hits == len(states)
    assert [solution_to_dict(s) for s in again] == [
        solution_to_dict(s) for s in sols
    ]


def test_shape_table_builds_on_the_bounded_rung(tracker, cluster):
    """The faults layer's per-shape solves accept a ladder rung too."""
    from repro.faults.failover import ShapeTable

    exact = ShapeTable.build(tracker, State(n_models=2), cluster)
    bounded = ShapeTable.build(
        tracker, State(n_models=2), cluster, policy="bounded:0.5"
    )
    assert len(bounded) == len(exact)
    for sol in bounded.solutions():
        cert = sol.certificate
        assert cert is not None and cert.policy == "bounded"
        assert cert.gap_bound <= 0.5 + 1e-9
