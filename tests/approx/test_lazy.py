"""LazyScheduleTable: demand fill, pre-fill, duck-typed table surface."""

from __future__ import annotations

import pytest

from repro.approx import LazyScheduleTable
from repro.core.cache import ScheduleCache
from repro.core.optimal import OptimalScheduler
from repro.core.regime import RegimeDetector
from repro.core.serialize import solution_to_dict
from repro.core.table import RegimeSwitcher, ScheduleTable
from repro.errors import ScheduleLookupError
from repro.graph.builders import chain_graph
from repro.obs import Observability
from repro.sim.cluster import SINGLE_NODE_SMP
from repro.state import State, StateSpace

SPACE = StateSpace.range("n_models", 1, 5)


@pytest.fixture(scope="module")
def chain():
    return chain_graph([1.0, 1.0, 1.0])


@pytest.fixture(scope="module")
def smp2():
    return SINGLE_NODE_SMP(2)


def make_lazy(chain, smp2, **kwargs):
    return LazyScheduleTable(chain, SPACE, OptimalScheduler(smp2), **kwargs)


def test_fills_on_demand_and_matches_eager(chain, smp2):
    lazy = make_lazy(chain, smp2)
    eager = ScheduleTable.build(chain, SPACE, OptimalScheduler(smp2))
    assert len(lazy) == 0
    for state in SPACE:
        assert solution_to_dict(lazy.lookup(state)) == solution_to_dict(
            eager.lookup(state)
        )
    assert len(lazy) == len(SPACE)


def test_second_lookup_is_a_hit_not_a_resolve(chain, smp2):
    lazy = make_lazy(chain, smp2)
    first = lazy.lookup(State(n_models=2))
    assert lazy.lookup(State(n_models=2)) is first


def test_out_of_space_states_still_raise(chain, smp2):
    lazy = make_lazy(chain, smp2)
    assert State(n_models=99) not in lazy
    with pytest.raises(ScheduleLookupError):
        lazy.lookup(State(n_models=99))


def test_contains_means_solvable_not_solved(chain, smp2):
    lazy = make_lazy(chain, smp2)
    assert State(n_models=4) in lazy  # laziness never narrows coverage
    assert lazy.states() == []


def test_prefill_solves_neighbors(chain, smp2):
    lazy = make_lazy(chain, smp2, prefill=2)
    lazy.lookup(State(n_models=3))
    assert set(lazy.states()) == {
        State(n_models=3),
        State(n_models=2),
        State(n_models=4),
    }


def test_background_prefill_drains(chain, smp2):
    lazy = make_lazy(chain, smp2, prefill=2, background=True)
    lazy.lookup(State(n_models=3))
    lazy.drain()
    assert len(lazy) == 3


def test_lazy_through_shared_cache(chain, smp2, tmp_path):
    cache = ScheduleCache(tmp_path / "sched")
    a = make_lazy(chain, smp2, cache=cache)
    b = make_lazy(chain, smp2, cache=cache)
    sol_a = a.lookup(State(n_models=1))
    sol_b = b.lookup(State(n_models=1))
    assert cache.stats.hits == 1
    assert solution_to_dict(sol_a) == solution_to_dict(sol_b)


def test_lazy_under_bounded_policy_certifies(chain, smp2):
    lazy = make_lazy(chain, smp2, policy="bounded:0.5")
    sol = lazy.lookup(State(n_models=2))
    assert sol.certificate is not None
    assert sol.certificate.gap_bound <= 0.5 + 1e-9


def test_observability_counters(chain, smp2):
    obs = Observability()
    lazy = make_lazy(chain, smp2, prefill=1, obs=obs)
    lazy.lookup(State(n_models=2))
    lazy.lookup(State(n_models=2))
    snap = obs.snapshot()
    lazy_counts = {
        tuple(s["labels"].values()): s["value"]
        for s in snap["repro_approx_lazy_total"]["series"]
    }
    assert lazy_counts[("miss",)] == 1
    assert lazy_counts[("hit",)] == 1
    assert lazy_counts[("prefill",)] == 1
    solves = {
        tuple(s["labels"].values()): s["value"]
        for s in snap["repro_approx_solves_total"]["series"]
    }
    assert solves[("exact",)] == 2  # miss + prefill


def test_regime_switcher_takes_a_lazy_table(chain, smp2):
    """The on-line §3.4 component works unchanged on a lazy table."""
    detector = RegimeDetector("n_models", State(n_models=1), confirm=1)
    switcher = RegimeSwitcher(make_lazy(chain, smp2), detector)
    record = switcher.observe(1.0, 3)
    assert record is not None
    assert switcher.active.state == State(n_models=3)
