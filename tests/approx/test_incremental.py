"""Incremental re-solve: re-costing, neighbor sets, warm-start tightening."""

from __future__ import annotations

from repro.approx import neighbor_states, recost_schedule, warm_start_from
from repro.apps.tracker.graph import TRACKER_STATES, build_tracker_graph
from repro.core.enumerate import SearchProblem
from repro.core.optimal import OptimalScheduler
from repro.core.parallel import execute_request, make_request
from repro.core.serialize import solution_to_dict
from repro.graph.builders import chain_graph
from repro.sim.cluster import SINGLE_NODE_SMP, ClusterSpec
from repro.state import State, StateSpace


def test_recost_same_state_reproduces_latency():
    graph = build_tracker_graph()
    cluster = ClusterSpec(nodes=2, procs_per_node=2)
    state = State(n_models=3)
    sol = OptimalScheduler(cluster).solve(graph, state)
    problem = SearchProblem.from_graph(
        graph, state, max_workers=cluster.procs_per_node
    )
    replay = recost_schedule(sol.iteration, problem, cluster)
    assert replay is not None
    # Same costs, same placements: the replay can only tighten idle gaps,
    # never exceed the schedule it replays.
    assert replay.latency <= sol.latency + 1e-9


def test_recost_under_new_state_is_legal_but_costed_fresh():
    graph = build_tracker_graph()
    cluster = SINGLE_NODE_SMP(4)
    sol = OptimalScheduler(cluster).solve(graph, State(n_models=2))
    problem = SearchProblem.from_graph(
        graph, State(n_models=3), max_workers=cluster.procs_per_node
    )
    replay = recost_schedule(sol.iteration, problem, cluster)
    assert replay is not None
    # n_models grew, so the re-costed latency grows with the new costs.
    assert replay.latency > sol.latency


def test_recost_rejects_vanished_variants():
    graph = build_tracker_graph(worker_counts=(2,))
    wide = build_tracker_graph(worker_counts=(2, 3, 4))
    cluster = SINGLE_NODE_SMP(4)
    sol = OptimalScheduler(cluster).solve(wide, State(n_models=8))
    problem = SearchProblem.from_graph(graph, State(n_models=8), max_workers=2)
    if any(p.variant not in ("serial",) and len(p.procs) > 2 for p in sol.iteration):
        assert recost_schedule(sol.iteration, problem, cluster) is None


def test_recost_rejects_foreign_task_sets():
    cluster = SINGLE_NODE_SMP(2)
    sol = OptimalScheduler(cluster).solve(chain_graph([1.0, 1.0]), State(n_models=1))
    other = chain_graph([1.0, 1.0, 1.0])
    problem = SearchProblem.from_graph(other, State(n_models=1), max_workers=2)
    assert recost_schedule(sol.iteration, problem, cluster) is None


def test_neighbor_states_are_adjacent():
    space = StateSpace.range("n_models", 1, 5)
    assert neighbor_states(space, State(n_models=3)) == [
        State(n_models=2),
        State(n_models=4),
    ]
    assert neighbor_states(space, State(n_models=1)) == [State(n_models=2)]
    assert neighbor_states(space, State(n_models=5)) == [State(n_models=4)]


def test_warm_start_tightens_the_incumbent():
    graph = build_tracker_graph()
    cluster = ClusterSpec(nodes=2, procs_per_node=2)
    neighbor = OptimalScheduler(cluster).solve(graph, State(n_models=3))
    request = make_request(
        graph, State(n_models=4), cluster, mode="solve", warm_start=False
    )
    assert request.incumbent is None
    assert warm_start_from(request, neighbor.iteration)
    assert request.incumbent is not None
    # The warm-started search still finds the true optimum.
    warm = execute_request(request)
    cold = OptimalScheduler(cluster).solve(graph, State(n_models=4))
    assert solution_to_dict(warm) == solution_to_dict(cold)


def test_warm_start_never_loosens():
    graph = build_tracker_graph()
    cluster = SINGLE_NODE_SMP(4)
    neighbor = OptimalScheduler(cluster).solve(graph, State(n_models=2))
    request = make_request(graph, State(n_models=3), cluster, mode="solve")
    tight = 0.001
    request.incumbent = tight
    assert not warm_start_from(request, neighbor.iteration)
    assert request.incumbent == tight


def test_warm_start_across_every_tracker_adjacency():
    """Warm-started solves are bitwise-identical to cold ones, space-wide."""
    graph = build_tracker_graph()
    cluster = SINGLE_NODE_SMP(4)
    scheduler = OptimalScheduler(cluster)
    cold = {st: scheduler.solve(graph, st) for st in TRACKER_STATES}
    states = list(TRACKER_STATES)
    for prev, cur in zip(states, states[1:]):
        request = scheduler.request(graph, cur)
        warm_start_from(request, cold[prev].iteration)
        assert solution_to_dict(execute_request(request)) == solution_to_dict(
            cold[cur]
        )
