"""Property-based tests over seeded random task graphs (no hypothesis dep).

A lightweight generator builds small random layered DAGs from a seeded
``random.Random``; each property then holds over every generated instance:

* every schedule the branch-and-bound enumerates is *legal* — dependency
  order respected, no processor double-booked, no placement outside the
  cluster;
* the reported optimal latency L is exactly what the simulator measures
  when the schedule executes (zero slips, single iteration);
* a :class:`~repro.core.table.ScheduleTable` built over a regime space is
  total — every state looks up to a real solution.
"""

from __future__ import annotations

import random

import pytest

from repro.core.optimal import OptimalScheduler
from repro.core.table import ScheduleTable
from repro.errors import RegimeError
from repro.graph.channel import ChannelSpec
from repro.graph.cost import ConstantCost, LinearCost
from repro.graph.task import Task
from repro.graph.taskgraph import TaskGraph
from repro.runtime.static_exec import StaticExecutor
from repro.sim.cluster import SINGLE_NODE_SMP
from repro.state import State, StateSpace

_EPS = 1e-9
SEEDS = list(range(10))


def random_layered_graph(seed: int) -> TaskGraph:
    """A random DAG: one source, 1-2 middle layers, random fan-in edges.

    Every task writes one channel; every non-source task reads 1-2
    channels from strictly earlier layers, so the graph is acyclic by
    construction and has a unique topological source.
    """
    rng = random.Random(seed)
    g = TaskGraph(f"random-{seed}")
    layers: list[list[str]] = [["t0"]]
    g.add_channel(ChannelSpec("c_t0", item_bytes=100))
    g.add_task(Task("t0", cost=ConstantCost(round(rng.uniform(0.1, 1.0), 3)),
                    outputs=["c_t0"]))
    n_layers = rng.randint(1, 2)
    idx = 1
    for _ in range(n_layers):
        width = rng.randint(1, 2)
        layer = []
        earlier = [name for l in layers for name in l]
        for _ in range(width):
            name = f"t{idx}"
            idx += 1
            fan_in = rng.sample(earlier, k=min(len(earlier), rng.randint(1, 2)))
            g.add_channel(ChannelSpec(f"c_{name}", item_bytes=100))
            g.add_task(Task(
                name,
                cost=ConstantCost(round(rng.uniform(0.1, 1.0), 3)),
                inputs=[f"c_{src}" for src in fan_in],
                outputs=[f"c_{name}"],
            ))
            layer.append(name)
        layers.append(layer)
    # A sink joining all loose ends keeps every channel consumed but one.
    loose = [name for l in layers for name in l
             if not g.consumers(f"c_{name}")]
    g.add_channel(ChannelSpec("c_sink", item_bytes=100))
    g.add_task(Task("t_sink", cost=ConstantCost(0.1),
                    inputs=[f"c_{src}" for src in loose],
                    outputs=["c_sink"]))
    g.validate()
    return g


def assert_schedule_legal(schedule, graph: TaskGraph, n_procs: int) -> None:
    placed = {p.task: p for p in schedule.placements}
    assert set(placed) == {t.name for t in graph.tasks}, "every task placed once"
    for p in schedule.placements:
        for proc in p.procs:
            assert 0 <= proc < n_procs, f"{p.task} placed off-cluster"
        for pred in graph.predecessors(p.task):
            assert p.start >= placed[pred].end - _EPS, (
                f"{p.task} starts before predecessor {pred} ends"
            )
    by_proc: dict[int, list] = {}
    for p in schedule.placements:
        for proc in p.procs:
            by_proc.setdefault(proc, []).append(p)
    for proc, ps in by_proc.items():
        ps.sort(key=lambda p: p.start)
        for a, b in zip(ps, ps[1:]):
            assert a.end <= b.start + _EPS, (
                f"proc {proc} double-booked: {a.task} overlaps {b.task}"
            )


class TestEnumeratedSchedulesAreLegal:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_schedule_in_s_is_legal(self, seed):
        g = random_layered_graph(seed)
        cluster = SINGLE_NODE_SMP(2 + seed % 2)
        result = OptimalScheduler(cluster).enumerate(g, State(n_models=1))
        assert result.schedules, "enumeration found no schedule"
        for schedule in result.schedules:
            assert_schedule_legal(schedule, g, cluster.total_processors)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_reported_latency_is_the_makespan_of_s(self, seed):
        g = random_layered_graph(seed)
        cluster = SINGLE_NODE_SMP(2)
        result = OptimalScheduler(cluster).enumerate(g, State(n_models=1))
        for schedule in result.schedules:
            makespan = max(p.end for p in schedule.placements)
            assert makespan == pytest.approx(result.latency)


class TestLatencyMatchesSimulator:
    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_solver_latency_equals_measured(self, seed):
        """L from the optimizer == the simulator's single-iteration latency.

        Latency is measured from the source's output put (after the source
        placement runs), so the source span is subtracted — same contract
        as the tracker executor tests.
        """
        g = random_layered_graph(seed)
        cluster = SINGLE_NODE_SMP(2)
        state = State(n_models=1)
        sol = OptimalScheduler(cluster).solve(g, state)
        result = StaticExecutor(g, state, cluster, sol).run(1)
        assert result.meta["slips"] == 0
        assert result.completed == [0]
        source_end = sol.iteration.placement("t0").end
        assert result.latency(0) == pytest.approx(sol.latency - source_end)


class TestScheduleTableTotality:
    def test_lookup_total_over_regime_space(self):
        g = TaskGraph("regime")
        g.add_channel(ChannelSpec("a", item_bytes=100))
        g.add_channel(ChannelSpec("b", item_bytes=100))
        g.add_task(Task("src", cost=ConstantCost(0.2), outputs=["a"]))
        g.add_task(Task("work", cost=LinearCost(base=0.1, slope=0.3,
                                                variable="n_models"),
                        inputs=["a"], outputs=["b"]))
        g.validate()
        space = StateSpace.range("n_models", 1, 4)
        table = ScheduleTable.build(g, space, OptimalScheduler(SINGLE_NODE_SMP(2)))
        assert len(table) == len(list(space))
        for state in space:
            sol = table.lookup(state)
            assert sol is not None
            assert sol.latency > 0.0
            assert state in table
        with pytest.raises(RegimeError):
            table.lookup(State(n_models=99))
