"""Tests for the persistent schedule cache (repro.core.cache)."""

from __future__ import annotations

import json

import pytest

from repro.core.cache import ScheduleCache, default_cache_dir, request_digest
from repro.core.optimal import OptimalScheduler
from repro.core.parallel import execute_request, make_request
from repro.core.serialize import table_to_json
from repro.core.table import ScheduleTable
from repro.graph.builders import chain_graph
from repro.sim.cluster import ClusterSpec, SINGLE_NODE_SMP
from repro.sim.network import CommCost, CommModel
from repro.state import State, StateSpace


@pytest.fixture
def cluster():
    return ClusterSpec(nodes=2, procs_per_node=2)


@pytest.fixture
def cache(tmp_path):
    return ScheduleCache(tmp_path / "schedules")


def _request(graph, state, cluster, **kwargs):
    return make_request(graph, state, cluster, **kwargs)


def test_roundtrip_hit(tracker_graph, cluster, cache):
    req = _request(tracker_graph, State(n_models=3), cluster)
    assert cache.fetch(req) is None
    solution = execute_request(req)
    cache.store(req, solution)
    hit = cache.fetch(req)
    assert hit is not None
    assert hit.latency == solution.latency
    assert hit.period == solution.period
    assert hit.iteration.canonical_key() == solution.iteration.canonical_key()
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    assert cache.stats.stores == 1 and len(cache) == 1


def test_digest_stable_across_processes_and_names(tracker_graph, cluster):
    a = _request(tracker_graph, State(n_models=2), cluster)
    b = _request(tracker_graph, State(n_models=2), cluster)
    assert request_digest(a) == request_digest(b)
    # Accelerator knobs never change the answer, so they never change the key.
    c = _request(
        tracker_graph, State(n_models=2), cluster, warm_start=False, dominance=False
    )
    assert request_digest(a) == request_digest(c)


def test_digest_sensitive_to_inputs(tracker_graph, cluster):
    base = _request(tracker_graph, State(n_models=2), cluster)
    other_state = _request(tracker_graph, State(n_models=3), cluster)
    assert request_digest(base) != request_digest(other_state)
    other_cluster = _request(
        tracker_graph, State(n_models=2), ClusterSpec(nodes=1, procs_per_node=4)
    )
    assert request_digest(base) != request_digest(other_cluster)
    comm = CommModel(
        cluster,
        intra_node=CommCost(latency=0.001, bandwidth=1e9),
        inter_node=CommCost(latency=0.01, bandwidth=1e8),
    )
    with_comm = _request(tracker_graph, State(n_models=2), cluster, comm=comm)
    assert request_digest(base) != request_digest(with_comm)
    other_params = _request(
        tracker_graph, State(n_models=2), cluster, latency_slack=0.5
    )
    assert request_digest(base) != request_digest(other_params)


def test_digest_sensitive_to_costs(cluster):
    g1 = chain_graph([1.0, 2.0])
    g2 = chain_graph([1.0, 2.5])
    s = State(n_models=1)
    assert request_digest(_request(g1, s, cluster)) != request_digest(
        _request(g2, s, cluster)
    )


def test_digest_ignores_graph_name(cluster):
    g1 = chain_graph([1.0, 2.0], name="alpha")
    g2 = chain_graph([1.0, 2.0], name="beta")
    s = State(n_models=1)
    assert request_digest(_request(g1, s, cluster)) == request_digest(
        _request(g2, s, cluster)
    )


def test_corrupt_entry_invalidated(tracker_graph, cluster, cache):
    req = _request(tracker_graph, State(n_models=1), cluster)
    cache.store(req, execute_request(req))
    path = cache.root / f"{request_digest(req)}.json"
    path.write_text("{ truncated garbage")
    assert cache.fetch(req) is None
    assert cache.stats.invalidations == 1
    assert not path.exists(), "corrupt entry must be deleted"
    # A re-solve + store recovers.
    cache.store(req, execute_request(req))
    assert cache.fetch(req) is not None


def test_wrong_format_invalidated(tracker_graph, cluster, cache):
    req = _request(tracker_graph, State(n_models=1), cluster)
    cache.store(req, execute_request(req))
    path = cache.root / f"{request_digest(req)}.json"
    payload = json.loads(path.read_text())
    payload["format"] = "something.else"
    path.write_text(json.dumps(payload))
    assert cache.fetch(req) is None
    assert cache.stats.invalidations == 1


def test_enumerate_mode_never_cached(tracker_graph, cluster, cache):
    req = _request(tracker_graph, State(n_models=1), cluster, mode="enumerate")
    result = execute_request(req)
    cache.store(req, result)
    assert len(cache) == 0
    assert cache.fetch(req) is None


def test_clear(tracker_graph, cluster, cache):
    for m in (1, 2):
        req = _request(tracker_graph, State(n_models=m), cluster)
        cache.store(req, execute_request(req))
    assert len(cache) == 2
    assert cache.clear() == 2
    assert len(cache) == 0


def test_default_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SCHEDULE_CACHE", str(tmp_path / "override"))
    assert default_cache_dir() == tmp_path / "override"
    monkeypatch.delenv("REPRO_SCHEDULE_CACHE")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == tmp_path / "xdg" / "repro" / "schedules"


def test_table_build_cache_lossless(tracker_graph, cache):
    cluster = SINGLE_NODE_SMP(4)
    space = StateSpace.range("n_models", 1, 3)
    sched = OptimalScheduler(cluster)
    reference = table_to_json(ScheduleTable.build(tracker_graph, space, sched))
    ScheduleTable.build(tracker_graph, space, sched, cache=cache)
    cached = ScheduleTable.build(tracker_graph, space, sched, cache=cache)
    assert cache.stats.hits == len(space)
    assert table_to_json(cached) == reference
