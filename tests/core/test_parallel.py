"""Tests for the batch solve fan-out (repro.core.parallel)."""

from __future__ import annotations

import pickle

import pytest

from repro.core.enumerate import enumerate_schedules
from repro.core.optimal import OptimalScheduler, ScheduleSolution
from repro.core.parallel import (
    SolveRequest,
    default_workers,
    execute_request,
    make_request,
    solve_many,
)
from repro.core.serialize import table_to_json
from repro.core.table import ScheduleTable
from repro.errors import ScheduleError
from repro.graph.builders import chain_graph, fork_join_graph
from repro.sim.cluster import ClusterSpec, SINGLE_NODE_SMP
from repro.state import State, StateSpace


@pytest.fixture
def cluster():
    return ClusterSpec(nodes=2, procs_per_node=2)


def test_state_pickles_roundtrip():
    s = State(n_models=5, n_cameras=2)
    clone = pickle.loads(pickle.dumps(s))
    assert clone == s and hash(clone) == hash(s)
    assert clone.n_models == 5


def test_request_pickles_roundtrip(tracker_graph, cluster):
    req = make_request(tracker_graph, State(n_models=4), cluster, tag=("m", 4))
    clone = pickle.loads(pickle.dumps(req))
    assert clone.problem.order_names == req.problem.order_names
    assert clone.incumbent == req.incumbent
    assert clone.tag == ("m", 4)


def test_execute_request_matches_direct_solve(tracker_graph, cluster):
    state = State(n_models=4)
    sched = OptimalScheduler(cluster)
    direct = sched.solve(tracker_graph, state)
    via_request = execute_request(sched.request(tracker_graph, state))
    assert via_request.latency == direct.latency
    assert via_request.period == direct.period
    assert (
        via_request.iteration.canonical_key() == direct.iteration.canonical_key()
    )


def test_enumerate_mode_returns_enumeration_result(tracker_graph, cluster):
    state = State(n_models=2)
    req = make_request(tracker_graph, state, cluster, mode="enumerate")
    result = execute_request(req)
    direct = enumerate_schedules(tracker_graph, state, cluster)
    assert result.latency == direct.latency
    assert {s.canonical_key() for s in result.schedules} == {
        s.canonical_key() for s in direct.schedules
    }


def test_unknown_mode_rejected(tracker_graph, cluster):
    with pytest.raises(ValueError, match="mode"):
        make_request(tracker_graph, State(n_models=1), cluster, mode="wat")


def test_solve_many_in_process_order(tracker_graph, cluster):
    sched = OptimalScheduler(cluster)
    states = [State(n_models=m) for m in (3, 1, 2)]
    reqs = [sched.request(tracker_graph, s, tag=s) for s in states]
    out = solve_many(reqs, workers=1)
    assert [sol.state for sol in out] == states


def test_solve_many_pool_matches_in_process(tracker_graph, cluster):
    sched = OptimalScheduler(cluster)
    states = [State(n_models=m) for m in (1, 2, 3, 4)]
    reqs = [sched.request(tracker_graph, s) for s in states]
    seq = solve_many(reqs, workers=1)
    par = solve_many(reqs, workers=2)
    for a, b in zip(seq, par):
        assert a.latency == b.latency and a.period == b.period
        assert a.iteration.canonical_key() == b.iteration.canonical_key()


@pytest.mark.parametrize("workers", [1, 2])
def test_solve_many_return_exceptions(tracker_graph, cluster, workers):
    sched = OptimalScheduler(cluster)
    ok = sched.request(tracker_graph, State(n_models=1))
    bad = SolveRequest(
        problem=ok.problem,
        state=ok.state,
        cluster=cluster,
        node_limit=1,  # guaranteed to trip the safety valve
    )
    out = solve_many([ok, bad, ok], workers=workers, return_exceptions=True)
    assert isinstance(out[0], ScheduleSolution)
    assert isinstance(out[1], ScheduleError)
    assert isinstance(out[2], ScheduleSolution)


def test_solve_many_raises_without_flag(tracker_graph, cluster):
    ok = OptimalScheduler(cluster).request(tracker_graph, State(n_models=1))
    bad = SolveRequest(
        problem=ok.problem, state=ok.state, cluster=cluster, node_limit=1
    )
    with pytest.raises(ScheduleError, match="node_limit"):
        solve_many([ok, bad], workers=1)


def test_default_workers_positive():
    assert default_workers() >= 1


@pytest.mark.parametrize("workers", [2, 4])
def test_table_build_bitwise_identical_across_workers(workers):
    graph = fork_join_graph(0.2, [1.0, 1.0, 0.5], 0.2)
    space = StateSpace.range("n_models", 1, 4)
    sched = OptimalScheduler(SINGLE_NODE_SMP(3))
    seq = ScheduleTable.build(graph, space, sched)
    par = ScheduleTable.build(graph, space, sched, parallel=workers)
    assert table_to_json(seq) == table_to_json(par)


def test_table_build_progress_order_preserved(cluster):
    graph = chain_graph([1.0, 0.5])
    space = StateSpace.range("n_models", 1, 3)
    seen = []
    ScheduleTable.build(
        graph,
        space,
        OptimalScheduler(cluster),
        progress=lambda state, sol: seen.append(state),
        parallel=2,
    )
    assert seen == list(space)
