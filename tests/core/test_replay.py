"""Unit tests for schedule-structure replay under a different state."""

from __future__ import annotations

import pytest

from repro.errors import ScheduleError
from repro.core.optimal import OptimalScheduler
from repro.core.replay import replay_pipelined, replay_with_state, variant_duration
from repro.core.schedule import IterationSchedule, Placement
from repro.graph.builders import chain_graph
from repro.state import State


class TestVariantDuration:
    def test_serial(self, tracker_graph, m8):
        assert variant_duration(tracker_graph, "T2", "serial", m8) == pytest.approx(0.12)

    def test_dp(self, tracker_graph, m8):
        d = variant_duration(tracker_graph, "T4", "dp4", m8)
        assert d < tracker_graph.task("T4").cost(m8)

    def test_dp_on_non_dp_task_rejected(self, tracker_graph, m8):
        with pytest.raises(ScheduleError):
            variant_duration(tracker_graph, "T2", "dp2", m8)

    def test_unknown_label_rejected(self, tracker_graph, m8):
        with pytest.raises(ScheduleError):
            variant_duration(tracker_graph, "T2", "mystery", m8)


class TestReplay:
    def test_identity_at_same_state(self, tracker_graph, m8, smp4):
        sol = OptimalScheduler(smp4).solve(tracker_graph, m8)
        replayed = replay_with_state(sol.iteration, tracker_graph, m8)
        assert replayed.latency == pytest.approx(sol.latency)

    def test_replayed_schedule_is_valid(self, tracker_graph, smp4):
        sol = OptimalScheduler(smp4).solve(tracker_graph, State(n_models=2))
        for m in (1, 4, 8):
            replayed = replay_with_state(
                sol.iteration, tracker_graph, State(n_models=m)
            )
            replayed.validate(tracker_graph, State(n_models=m), smp4)

    def test_replay_never_beats_exact_optimum(self, tracker_graph, smp4):
        sched = OptimalScheduler(smp4)
        sol2 = sched.solve(tracker_graph, State(n_models=2))
        for m in (1, 4, 8):
            exact = sched.solve(tracker_graph, State(n_models=m)).latency
            replayed = replay_with_state(
                sol2.iteration, tracker_graph, State(n_models=m)
            ).latency
            assert replayed >= exact - 1e-9

    def test_bad_order_rejected(self, m1):
        g = chain_graph([1.0, 1.0])
        # t1 scheduled before its predecessor t0 in start order.
        bad = IterationSchedule(
            [Placement("t1", (0,), 0.0, 1.0), Placement("t0", (1,), 0.5, 1.0)]
        )
        with pytest.raises(ScheduleError, match="predecessor"):
            replay_with_state(bad, g, m1)

    def test_replay_pipelined_recomputes_period(self, tracker_graph, smp4):
        sol = OptimalScheduler(smp4).solve(tracker_graph, State(n_models=1))
        heavier = replay_pipelined(
            sol.iteration, tracker_graph, State(n_models=8), smp4
        )
        assert heavier.period > sol.period  # heavier state -> slower rate
        heavier.validate_conflict_free()
