"""Regression tests for transition-policy lost-work accounting.

The boundary cases matter to the fault subsystem: a failover from (or to)
a degenerate schedule — period 0 because the solution is unpipelined, or
latency 0 because the iteration is empty — must not fabricate in-flight
work that was never there.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.core.transition import (
    CheckpointTransition,
    DrainTransition,
    ImmediateTransition,
    TransitionEffect,
    TransitionPolicy,
)


@dataclass
class _Solution:
    """Just the latency/period surface the policies consume."""

    latency: float
    period: float


NORMAL = _Solution(latency=3.0, period=1.0)
EMPTY = _Solution(latency=0.0, period=1.0)       # empty in-flight set
UNPIPELINED = _Solution(latency=2.0, period=0.0)  # period-0 degenerate


class TestInFlight:
    def test_pipelined_depth(self):
        assert TransitionPolicy.in_flight(NORMAL) == 3

    def test_sub_period_latency_still_one_in_flight(self):
        assert TransitionPolicy.in_flight(_Solution(0.5, 1.0)) == 1

    def test_period_zero_has_no_in_flight(self):
        assert TransitionPolicy.in_flight(UNPIPELINED) == 0

    def test_empty_iteration_has_no_in_flight(self):
        assert TransitionPolicy.in_flight(EMPTY) == 0


class TestBoundaryEffects:
    @pytest.mark.parametrize("degenerate", [EMPTY, UNPIPELINED])
    def test_immediate_loses_nothing_from_degenerate(self, degenerate):
        effect = ImmediateTransition(setup=0.5).effect(degenerate, NORMAL)
        assert effect.lost_iterations == 0
        assert effect.stall == 0.5

    def test_immediate_loses_in_flight_from_normal(self):
        effect = ImmediateTransition(setup=0.5).effect(NORMAL, EMPTY)
        assert effect.lost_iterations == 3
        assert effect.stall == 0.5

    @pytest.mark.parametrize("degenerate", [EMPTY, UNPIPELINED])
    def test_drain_from_degenerate(self, degenerate):
        effect = DrainTransition(setup=0.25).effect(degenerate, NORMAL)
        assert effect.lost_iterations == 0
        assert effect.stall == degenerate.latency + 0.25

    def test_drain_never_loses_work(self):
        effect = DrainTransition().effect(NORMAL, NORMAL)
        assert effect.lost_iterations == 0
        assert effect.stall == NORMAL.latency


class TestCheckpointTransition:
    def test_replays_instead_of_losing(self):
        effect = CheckpointTransition(setup=0.5).effect(NORMAL, NORMAL)
        assert effect.lost_iterations == 0
        assert effect.replayed_iterations == 3
        assert effect.stall == pytest.approx(0.5 + 3 * NORMAL.period)

    @pytest.mark.parametrize("degenerate", [EMPTY, UNPIPELINED])
    def test_nothing_to_replay_from_degenerate(self, degenerate):
        effect = CheckpointTransition(setup=0.5).effect(degenerate, NORMAL)
        assert effect.replayed_iterations == 0
        assert effect.stall == 0.5

    def test_replay_into_degenerate_new_schedule(self):
        # A period-0 new solution must not drive the stall negative.
        effect = CheckpointTransition().effect(NORMAL, UNPIPELINED)
        assert effect.stall == 0.0
        assert effect.replayed_iterations == 3

    def test_negative_setup_rejected(self):
        with pytest.raises(ValueError):
            CheckpointTransition(setup=-1.0)


class TestTransitionEffect:
    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError):
            TransitionEffect(stall=-1.0, lost_iterations=0)
        with pytest.raises(ValueError):
            TransitionEffect(stall=0.0, lost_iterations=-1)
        with pytest.raises(ValueError):
            TransitionEffect(stall=0.0, lost_iterations=0, replayed_iterations=-1)

    def test_replayed_defaults_to_zero(self):
        assert TransitionEffect(stall=1.0, lost_iterations=2).replayed_iterations == 0
