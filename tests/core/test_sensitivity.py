"""Unit tests for schedule sensitivity analysis and random DAG scheduling."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ScheduleError
from repro.core.enumerate import enumerate_schedules
from repro.core.optimal import OptimalScheduler
from repro.core.pipeline import best_pipelined
from repro.core.sensitivity import (
    perturbed_graph,
    perturbed_latency,
    sensitivity_profile,
)
from repro.graph.builders import random_dag
from repro.sched.listsched import list_schedule
from repro.sim.cluster import SINGLE_NODE_SMP
from repro.state import State


class TestPerturbedGraph:
    def test_costs_scaled(self, tracker_graph, m8):
        noisy = perturbed_graph(tracker_graph, {"T4": 2.0})
        assert noisy.task("T4").cost(m8) == pytest.approx(
            2.0 * tracker_graph.task("T4").cost(m8)
        )
        assert noisy.task("T2").cost(m8) == tracker_graph.task("T2").cost(m8)

    def test_dp_chunks_scale_with_task(self, tracker_graph, m8):
        noisy = perturbed_graph(tracker_graph, {"T4": 2.0})
        orig = tracker_graph.task("T4").best_variant(m8, 4).duration
        scaled = noisy.task("T4").best_variant(m8, 4).duration
        assert scaled == pytest.approx(2.0 * orig)

    def test_invalid_factor(self, tracker_graph):
        with pytest.raises(ScheduleError):
            perturbed_graph(tracker_graph, {"T4": 0.0})


class TestPerturbedLatency:
    def test_identity_factors(self, tracker_graph, m8, smp4):
        sol = OptimalScheduler(smp4).solve(tracker_graph, m8)
        lat = perturbed_latency(sol.iteration, tracker_graph, m8, {})
        assert lat == pytest.approx(sol.latency)

    def test_uniform_scaling_scales_latency(self, tracker_graph, m8, smp4):
        sol = OptimalScheduler(smp4).solve(tracker_graph, m8)
        factors = {t.name: 1.5 for t in tracker_graph.tasks}
        lat = perturbed_latency(sol.iteration, tracker_graph, m8, factors)
        assert lat == pytest.approx(1.5 * sol.latency)

    def test_slower_critical_task_hurts(self, tracker_graph, m8, smp4):
        sol = OptimalScheduler(smp4).solve(tracker_graph, m8)
        lat = perturbed_latency(sol.iteration, tracker_graph, m8, {"T4": 1.3})
        assert lat > sol.latency


class TestSensitivityProfile:
    def test_tracker_structure_is_robust(self, tracker_graph, m8, smp4):
        """The tracker's optimal structure survives 20% cost error: the
        guideline that rough calibration suffices."""
        sol = OptimalScheduler(smp4).solve(tracker_graph, m8)
        profile = sensitivity_profile(
            sol.iteration, tracker_graph, m8, smp4,
            error_level=0.2, trials=10, seed=1,
        )
        assert profile.mean_regret < 0.05
        assert profile.structure_stable_fraction >= 0.5

    def test_zero_error_zero_regret(self, tracker_graph, m8, smp4):
        sol = OptimalScheduler(smp4).solve(tracker_graph, m8)
        profile = sensitivity_profile(
            sol.iteration, tracker_graph, m8, smp4,
            error_level=0.0, trials=3,
        )
        assert profile.max_regret == pytest.approx(0.0, abs=1e-9)
        assert profile.structure_stable_fraction == 1.0

    def test_parameter_validation(self, tracker_graph, m8, smp4):
        sol = OptimalScheduler(smp4).solve(tracker_graph, m8)
        with pytest.raises(ScheduleError):
            sensitivity_profile(sol.iteration, tracker_graph, m8, smp4, error_level=1.5)
        with pytest.raises(ScheduleError):
            sensitivity_profile(
                sol.iteration, tracker_graph, m8, smp4, error_level=0.1, trials=0
            )


class TestRandomDagProperties:
    """Cross-scheduler invariants on randomly generated graphs."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n_tasks=st.integers(2, 6),
        procs=st.sampled_from([1, 2, 4]),
    )
    def test_optimal_le_heuristic_le_serial(self, seed, n_tasks, procs):
        g = random_dag(n_tasks, seed)
        cluster = SINGLE_NODE_SMP(procs)
        state = State(n_models=1)
        opt = enumerate_schedules(g, state, cluster).latency
        heur = list_schedule(g, state, cluster).latency
        serial = g.serial_time(state)
        cp = g.critical_path(state)
        assert cp - 1e-9 <= opt <= heur + 1e-9 <= serial + 2e-9

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), n_tasks=st.integers(2, 5))
    def test_optimal_schedules_validate_and_pipeline(self, seed, n_tasks):
        g = random_dag(n_tasks, seed, dp_prob=0.3)
        cluster = SINGLE_NODE_SMP(2)
        state = State(n_models=1)
        res = enumerate_schedules(g, state, cluster)
        for sched in res.schedules[:3]:
            sched.validate(g, state, cluster)
            piped = best_pipelined(sched, cluster)
            piped.validate_conflict_free()
            assert piped.period <= sched.latency + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_static_execution_has_no_slips(self, seed):
        """Any optimal schedule executes exactly as planned on the DES."""
        from repro.runtime.static_exec import StaticExecutor

        g = random_dag(4, seed)
        cluster = SINGLE_NODE_SMP(2)
        state = State(n_models=1)
        sol = OptimalScheduler(cluster).solve(g, state)
        result = StaticExecutor(g, state, cluster, sol).run(3)
        assert result.meta["slips"] == 0
        assert result.completed_count == 3

    def test_random_dag_deterministic(self):
        a, b = random_dag(5, 42), random_dag(5, 42)
        assert a.topo_order() == b.topo_order()
        s = State(n_models=1)
        assert [t.cost(s) for t in a.tasks] == [t.cost(s) for t in b.tasks]
