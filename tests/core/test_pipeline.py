"""Unit and property tests for software pipelining."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidSchedule, ScheduleError
from repro.core.pipeline import best_pipelined, min_initiation_interval, naive_pipeline
from repro.core.schedule import IterationSchedule, Placement, PipelinedSchedule
from repro.graph.builders import chain_graph
from repro.sim.cluster import SINGLE_NODE_SMP


class TestNaivePipeline:
    def test_figure_4b_properties(self, tracker_graph, m8, smp4):
        p = naive_pipeline(tracker_graph, m8, smp4)
        # One processor, tasks back to back, no idle within the iteration.
        assert p.iteration.procs_used() == {0}
        assert p.iteration.idle_fraction(n_procs=1) == pytest.approx(0.0)
        # "This schedule has no idle time": II = serial / P.
        assert p.period == pytest.approx(tracker_graph.serial_time(m8) / 4)
        assert p.shift == 1
        p.validate_conflict_free()

    def test_latency_equals_serial_time(self, tracker_graph, m8, smp4):
        p = naive_pipeline(tracker_graph, m8, smp4)
        assert p.latency == pytest.approx(tracker_graph.serial_time(m8))

    def test_single_processor_cluster(self, m1):
        g = chain_graph([1.0, 1.0])
        p = naive_pipeline(g, m1, SINGLE_NODE_SMP(1))
        assert p.period == pytest.approx(2.0) and p.shift == 0

    def test_custom_order_must_cover_graph(self, tracker_graph, m8, smp4):
        with pytest.raises(ScheduleError):
            naive_pipeline(tracker_graph, m8, smp4, order=["T1", "T2"])

    def test_zero_cost_iteration_rejected(self, m1):
        g = chain_graph([0.0, 0.0])
        with pytest.raises(ScheduleError):
            naive_pipeline(g, m1, SINGLE_NODE_SMP(2))


class TestMinInitiationInterval:
    def test_single_span_no_shift(self):
        it = IterationSchedule([Placement("t", (0,), 0.0, 1.0)])
        assert min_initiation_interval(it, 1, 0) == pytest.approx(1.0)

    def test_single_span_with_rotation(self):
        """Rotating over 4 procs lets iterations start every L/4."""
        it = IterationSchedule([Placement("t", (0,), 0.0, 4.0)])
        assert min_initiation_interval(it, 4, 1) == pytest.approx(1.0)

    def test_periodic_packing_non_monotone_case(self):
        """Busy [0,1] and [3,4] on one proc: II=2 packs perfectly even
        though II=3 would collide — the classic non-monotone case."""
        it = IterationSchedule(
            [Placement("a", (0,), 0.0, 1.0), Placement("b", (0,), 3.0, 1.0)]
        )
        ii = min_initiation_interval(it, 1, 0)
        assert ii == pytest.approx(2.0)

    def test_area_lower_bound_respected(self):
        it = IterationSchedule(
            [Placement("a", (0,), 0.0, 2.0), Placement("b", (1,), 0.0, 2.0)]
        )
        assert min_initiation_interval(it, 2, 1) >= 2.0 - 1e-9

    def test_empty_iteration_rejected(self):
        with pytest.raises(InvalidSchedule):
            min_initiation_interval(IterationSchedule([]), 2, 0)

    def test_invalid_shift_rejected(self):
        it = IterationSchedule([Placement("t", (0,), 0.0, 1.0)])
        with pytest.raises(InvalidSchedule):
            min_initiation_interval(it, 2, 2)

    @settings(max_examples=40, deadline=None)
    @given(
        durations=st.lists(st.floats(0.1, 3.0), min_size=1, max_size=4),
        n_procs=st.integers(1, 4),
        shift=st.integers(0, 3),
        data=st.data(),
    )
    def test_computed_ii_is_always_feasible(self, durations, n_procs, shift, data):
        """Whatever II the solver returns must produce a conflict-free
        pipelined schedule (correctness of the candidate search)."""
        if shift >= n_procs:
            shift = shift % n_procs
        placements = []
        t = 0.0
        for i, d in enumerate(durations):
            proc = data.draw(st.integers(0, n_procs - 1), label=f"proc{i}")
            placements.append(Placement(f"t{i}", (proc,), t, d))
            t += d
        it = IterationSchedule(placements)
        ii = min_initiation_interval(it, n_procs, shift)
        sched = PipelinedSchedule(it, period=ii, shift=shift, n_procs=n_procs)
        sched.validate_conflict_free()


class TestBestPipelined:
    def test_result_is_conflict_free(self, tracker_graph, m8, smp4):
        from repro.core.enumerate import enumerate_schedules

        res = enumerate_schedules(tracker_graph, m8, smp4)
        piped = best_pipelined(res.best, smp4)
        piped.validate_conflict_free()
        assert piped.period <= res.best.latency + 1e-9

    def test_prefers_rotating_pattern_on_tie(self):
        """A one-span iteration pipelines equally at any shift; the
        tie-break must pick a rotating pattern (the paper's wrap-around)."""
        it = IterationSchedule([Placement("t", (0,), 0.0, 1.0)])
        piped = best_pipelined(it, SINGLE_NODE_SMP(4))
        assert piped.shift != 0

    def test_throughput_bounded_by_area(self, tracker_graph, m8, smp4):
        from repro.core.enumerate import enumerate_schedules

        res = enumerate_schedules(tracker_graph, m8, smp4)
        piped = best_pipelined(res.best, smp4)
        area_bound = res.best.busy_area() / smp4.total_processors
        assert piped.period >= area_bound - 1e-9
