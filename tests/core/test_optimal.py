"""Unit tests for the full Figure 6 algorithm on the tracker."""

from __future__ import annotations

import pytest

from repro.core.optimal import OptimalScheduler
from repro.graph.builders import chain_graph
from repro.sim.cluster import SINGLE_NODE_SMP
from repro.state import State


class TestTrackerSolution:
    @pytest.fixture(scope="class")
    def solution(self):
        from repro.apps.tracker.graph import build_tracker_graph

        return OptimalScheduler(SINGLE_NODE_SMP(4)).solve(
            build_tracker_graph(), State(n_models=8)
        )

    def test_reproduces_figure_5b_structure(self, solution):
        """T2 and T3 overlap in time; T4 runs data-parallel on all 4 procs."""
        t2, t3 = solution.iteration.placement("T2"), solution.iteration.placement("T3")
        assert t2.start < t3.end and t3.start < t2.end  # concurrent
        assert t2.primary != t3.primary
        t4 = solution.iteration.placement("T4")
        assert t4.workers == 4 and t4.variant == "dp4"

    def test_latency_is_critical_path_with_best_variants(self, solution):
        """L = T1 + max(T2, T3) + T4(dp4) + T5 — nothing can be lower."""
        from repro.apps.tracker.graph import build_tracker_graph

        g = build_tracker_graph()
        m8 = State(n_models=8)
        lb = g.critical_path(m8, use_best_variants=True, max_workers=4)
        assert solution.latency == pytest.approx(lb)

    def test_pipelined_valid_and_within_bounds(self, solution):
        solution.pipelined.validate_conflict_free()
        assert solution.period <= solution.latency + 1e-9
        assert solution.throughput == pytest.approx(1.0 / solution.period)

    def test_solution_beats_naive_pipeline_on_latency(self, solution):
        from repro.apps.tracker.graph import build_tracker_graph
        from repro.core.pipeline import naive_pipeline

        naive = naive_pipeline(build_tracker_graph(), State(n_models=8), SINGLE_NODE_SMP(4))
        assert solution.latency < naive.latency / 3  # dramatic, as in Fig 5

    def test_summary_mentions_key_numbers(self, solution):
        text = solution.summary()
        assert "L=" in text and "II=" in text


class TestSmallCases:
    def test_chain_on_two_procs(self, m1):
        sol = OptimalScheduler(SINGLE_NODE_SMP(2)).solve(chain_graph([1.0, 1.0]), m1)
        assert sol.latency == pytest.approx(2.0)
        assert sol.period == pytest.approx(1.0)  # perfect pipelining

    def test_alternatives_counted(self, m1):
        from repro.graph.builders import fork_join_graph

        sol = OptimalScheduler(SINGLE_NODE_SMP(2)).solve(
            fork_join_graph(0.0, [1.0, 1.0], 0.0), m1
        )
        assert sol.alternatives >= 1
        assert sol.explored > 0

    def test_per_state_latency_monotone_in_models(self, smp4):
        """More people to track can never reduce the optimal latency."""
        from repro.apps.tracker.graph import build_tracker_graph

        g = build_tracker_graph()
        sched = OptimalScheduler(smp4)
        lats = [sched.solve(g, State(n_models=m)).latency for m in (1, 2, 4, 8)]
        assert lats == sorted(lats)
