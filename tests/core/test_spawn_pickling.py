"""Spawn-start-method regression: solve payloads must pickle round-trip.

``fork`` inherits everything by memory, which silently tolerates
unpicklable payloads; ``spawn`` re-imports the world and ships every
object through pickle.  These tests pin the contract that the off-line
solve pipeline (``SearchProblem`` → ``SolveRequest`` → ``solve_many``)
and the ``ScheduleCache`` stay pure picklable data, so tables can be
built on platforms where ``fork`` is unavailable or unsafe.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.cache import ScheduleCache
from repro.core.enumerate import SearchProblem
from repro.core.optimal import OptimalScheduler
from repro.core.parallel import make_request, solve_many
from repro.graph.builders import chain_graph
from repro.sim.cluster import SINGLE_NODE_SMP


@pytest.fixture
def tracker_problem(tracker_graph, m8):
    return SearchProblem.from_graph(tracker_graph, m8, max_workers=4)


class TestPickleRoundTrips:
    def test_search_problem_round_trips(self, tracker_problem):
        clone = pickle.loads(pickle.dumps(tracker_problem))
        assert clone == tracker_problem
        # The digest payload drives cache keys: identical after the trip.
        assert clone.digest_payload() == tracker_problem.digest_payload()

    def test_solve_request_round_trips(self, tracker_graph, m8):
        request = make_request(tracker_graph, m8, SINGLE_NODE_SMP(4))
        clone = pickle.loads(pickle.dumps(request))
        assert clone.problem == request.problem
        assert clone.state == request.state
        assert clone.incumbent == request.incumbent

    def test_schedule_cache_round_trips(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.root == cache.root
        assert clone.stats.hits == 0

    def test_cache_usable_after_round_trip(self, tmp_path, m1):
        g = chain_graph([0.5, 0.5])
        cluster = SINGLE_NODE_SMP(2)
        scheduler = OptimalScheduler(cluster)
        request = scheduler.request(g, m1)
        sol = solve_many([request])[0]
        cache = pickle.loads(pickle.dumps(ScheduleCache(tmp_path)))
        cache.store(request, sol)
        hit = cache.fetch(request)
        assert hit is not None
        assert hit.latency == pytest.approx(sol.latency)


class TestSpawnExecution:
    def test_solve_many_under_spawn(self, m1):
        """A spawn pool produces the same solutions as the in-process path."""
        cluster = SINGLE_NODE_SMP(2)
        scheduler = OptimalScheduler(cluster)
        graphs = [chain_graph([0.5, 0.5]), chain_graph([0.3, 0.3, 0.3])]
        requests = [scheduler.request(g, m1) for g in graphs]
        baseline = solve_many(requests, workers=1)
        spawned = solve_many(requests, workers=2, start_method="spawn")
        for base, spawn in zip(baseline, spawned):
            assert spawn.latency == pytest.approx(base.latency)
            assert spawn.period == pytest.approx(base.period)
            assert spawn.iteration.placements == base.iteration.placements
