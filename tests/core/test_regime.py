"""Unit tests for regime detection, schedule tables, and transitions."""

from __future__ import annotations

import pytest

from repro.errors import RegimeError
from repro.core.optimal import OptimalScheduler
from repro.core.regime import RegimeDetector
from repro.core.table import RegimeSwitcher, ScheduleTable
from repro.core.transition import DrainTransition, ImmediateTransition
from repro.graph.builders import chain_graph
from repro.sim.cluster import SINGLE_NODE_SMP
from repro.state import State, StateSpace


class TestRegimeDetector:
    def test_immediate_confirmation(self):
        d = RegimeDetector("n_models", State(n_models=1), confirm=1)
        change = d.observe(1.0, 3)
        assert change is not None and change.new == State(n_models=3)
        assert d.current == State(n_models=3)

    def test_debounce_requires_consecutive_observations(self):
        d = RegimeDetector("n_models", State(n_models=1), confirm=3)
        assert d.observe(1.0, 2) is None
        assert d.observe(2.0, 2) is None
        change = d.observe(3.0, 2)
        assert change is not None and change.time == 3.0

    def test_flicker_absorbed(self):
        d = RegimeDetector("n_models", State(n_models=2), confirm=2)
        assert d.observe(1.0, 3) is None   # blip
        assert d.observe(2.0, 2) is None   # back to normal resets pending
        assert d.observe(3.0, 3) is None   # new candidate, count restarts
        assert d.observe(4.0, 3) is not None

    def test_pending_value_switch_resets_count(self):
        d = RegimeDetector("n_models", State(n_models=1), confirm=2)
        assert d.observe(1.0, 2) is None
        assert d.observe(2.0, 3) is None  # different candidate
        assert d.observe(3.0, 3) is not None  # 3 confirmed, not 2

    def test_clamping_to_space(self):
        space = StateSpace.range("n_models", 1, 5)
        d = RegimeDetector("n_models", State(n_models=5), confirm=1, space=space)
        assert d.observe(1.0, 9) is None  # clamps to 5 == current
        change = d.observe(2.0, 0)        # clamps to 1
        assert change is not None and change.new == State(n_models=1)

    def test_change_log(self):
        d = RegimeDetector("n_models", State(n_models=1))
        d.observe(1.0, 2)
        d.observe(2.0, 3)
        assert d.change_count == 2
        assert [c.new["n_models"] for c in d.changes] == [2, 3]

    def test_invalid_confirm(self):
        with pytest.raises(RegimeError):
            RegimeDetector("n_models", State(n_models=1), confirm=0)

    def test_missing_variable(self):
        with pytest.raises(RegimeError):
            RegimeDetector("n_models", State(other=1))


class TestScheduleTable:
    @pytest.fixture(scope="class")
    def table(self):
        return ScheduleTable.build(
            chain_graph([1.0, 1.0]),
            StateSpace.range("n_models", 1, 3),
            OptimalScheduler(SINGLE_NODE_SMP(2)),
        )

    def test_covers_space(self, table):
        assert len(table) == 3
        for m in (1, 2, 3):
            assert State(n_models=m) in table

    def test_lookup_missing_state(self, table):
        with pytest.raises(RegimeError):
            table.lookup(State(n_models=99))

    def test_summary(self, table):
        assert table.summary().count("L=") == 3

    def test_progress_callback(self):
        seen = []
        ScheduleTable.build(
            chain_graph([1.0]),
            StateSpace.range("n_models", 1, 2),
            OptimalScheduler(SINGLE_NODE_SMP(1)),
            progress=lambda s, sol: seen.append(s["n_models"]),
        )
        assert seen == [1, 2]


class TestRegimeSwitcher:
    def make_switcher(self, policy=None):
        table = ScheduleTable.build(
            chain_graph([1.0, 1.0]),
            StateSpace.range("n_models", 1, 3),
            OptimalScheduler(SINGLE_NODE_SMP(2)),
        )
        detector = RegimeDetector("n_models", State(n_models=1), confirm=1)
        return RegimeSwitcher(table, detector, policy=policy)

    def test_switch_on_confirmed_change(self):
        sw = self.make_switcher()
        record = sw.observe(5.0, 2)
        assert record is not None
        assert sw.active.state == State(n_models=2)
        assert sw.switch_count == 1

    def test_no_switch_without_change(self):
        sw = self.make_switcher()
        assert sw.observe(1.0, 1) is None
        assert sw.switch_count == 0

    def test_drain_stall_accounting(self):
        sw = self.make_switcher(policy=DrainTransition(setup=0.5))
        record = sw.observe(1.0, 3)
        assert record.effect.stall == pytest.approx(record.change and 2.0 + 0.5)
        assert record.effect.lost_iterations == 0
        assert sw.total_stall == pytest.approx(2.5)

    def test_immediate_loses_in_flight(self):
        sw = self.make_switcher(policy=ImmediateTransition(setup=0.1))
        record = sw.observe(1.0, 2)
        assert record.effect.stall == pytest.approx(0.1)
        assert record.effect.lost_iterations >= 1
        assert sw.total_lost_iterations >= 1

    def test_initial_state_must_be_in_table(self):
        table = ScheduleTable.build(
            chain_graph([1.0]),
            StateSpace.range("n_models", 1, 2),
            OptimalScheduler(SINGLE_NODE_SMP(1)),
        )
        detector = RegimeDetector("n_models", State(n_models=7))
        with pytest.raises(RegimeError):
            RegimeSwitcher(table, detector)
