"""Unit tests for the schedule data model."""

from __future__ import annotations

import pytest

from repro.errors import InvalidSchedule
from repro.core.schedule import IterationSchedule, PipelinedSchedule, Placement
from repro.graph.builders import chain_graph, fork_join_graph
from repro.sim.cluster import SINGLE_NODE_SMP, ClusterSpec
from repro.sim.network import CommCost, CommModel


class TestPlacement:
    def test_basic(self):
        p = Placement("t", (1, 2), 0.5, 1.5)
        assert p.end == 2.0 and p.primary == 1 and p.workers == 2

    def test_no_procs_rejected(self):
        with pytest.raises(InvalidSchedule):
            Placement("t", (), 0.0, 1.0)

    def test_repeated_proc_rejected(self):
        with pytest.raises(InvalidSchedule):
            Placement("t", (1, 1), 0.0, 1.0)

    def test_negative_times_rejected(self):
        with pytest.raises(InvalidSchedule):
            Placement("t", (0,), -1.0, 1.0)
        with pytest.raises(InvalidSchedule):
            Placement("t", (0,), 0.0, -1.0)


class TestIterationSchedule:
    def chain_schedule(self):
        return IterationSchedule(
            [
                Placement("t0", (0,), 0.0, 1.0),
                Placement("t1", (0,), 1.0, 2.0),
                Placement("t2", (1,), 3.0, 3.0),
            ]
        )

    def test_latency_and_span(self):
        s = self.chain_schedule()
        assert s.latency == 6.0 and s.span == 6.0

    def test_duplicate_task_rejected(self):
        with pytest.raises(InvalidSchedule):
            IterationSchedule(
                [Placement("t", (0,), 0.0, 1.0), Placement("t", (1,), 0.0, 1.0)]
            )

    def test_lookup(self):
        s = self.chain_schedule()
        assert s.placement("t1").start == 1.0
        assert "t1" in s and "ghost" not in s
        with pytest.raises(InvalidSchedule):
            s.placement("ghost")

    def test_busy_area_and_idle(self):
        s = self.chain_schedule()
        assert s.busy_area() == pytest.approx(6.0)
        assert s.idle_fraction(n_procs=2) == pytest.approx(0.5)

    def test_validate_passes_for_legal_schedule(self, m1):
        g = chain_graph([1.0, 2.0, 3.0])
        self.chain_schedule().validate(g, m1, SINGLE_NODE_SMP(2))

    def test_validate_missing_task(self, m1):
        g = chain_graph([1.0, 2.0, 3.0])
        s = IterationSchedule([Placement("t0", (0,), 0.0, 1.0)])
        with pytest.raises(InvalidSchedule, match="misses"):
            s.validate(g, m1, SINGLE_NODE_SMP(2))

    def test_validate_unknown_processor(self, m1):
        g = chain_graph([1.0])
        s = IterationSchedule([Placement("t0", (9,), 0.0, 1.0)])
        with pytest.raises(InvalidSchedule, match="processor"):
            s.validate(g, m1, SINGLE_NODE_SMP(2))

    def test_validate_resource_overlap(self, m1):
        g = fork_join_graph(0.0, [1.0, 1.0], 0.0)
        s = IterationSchedule(
            [
                Placement("source", (0,), 0.0, 0.0),
                Placement("branch0", (0,), 0.0, 1.0),
                Placement("branch1", (0,), 0.5, 1.0),  # overlaps on proc 0
                Placement("sink", (0,), 1.5, 0.0),
            ]
        )
        with pytest.raises(InvalidSchedule, match="overlaps"):
            s.validate(g, m1, SINGLE_NODE_SMP(2))

    def test_validate_precedence(self, m1):
        g = chain_graph([1.0, 1.0])
        s = IterationSchedule(
            [
                Placement("t0", (0,), 0.0, 1.0),
                Placement("t1", (1,), 0.5, 1.0),  # starts before t0 ends
            ]
        )
        with pytest.raises(InvalidSchedule, match="precedence"):
            s.validate(g, m1, SINGLE_NODE_SMP(2))

    def test_validate_includes_comm_delay(self, m1):
        g = chain_graph([1.0, 1.0], item_bytes=1000)
        cluster = ClusterSpec(nodes=2, procs_per_node=1)
        comm = CommModel(
            cluster, inter_node=CommCost(latency=0.5, bandwidth=float("inf"))
        )
        tight = IterationSchedule(
            [Placement("t0", (0,), 0.0, 1.0), Placement("t1", (1,), 1.0, 1.0)]
        )
        with pytest.raises(InvalidSchedule, match="comm"):
            tight.validate(g, m1, cluster, comm)
        padded = IterationSchedule(
            [Placement("t0", (0,), 0.0, 1.0), Placement("t1", (1,), 1.5, 1.0)]
        )
        padded.validate(g, m1, cluster, comm)

    def test_canonical_key_stable(self):
        assert self.chain_schedule().canonical_key() == self.chain_schedule().canonical_key()


class TestPipelinedSchedule:
    def one_proc_iteration(self):
        return IterationSchedule([Placement("t", (0,), 0.0, 1.0)])

    def test_throughput(self):
        p = PipelinedSchedule(self.one_proc_iteration(), period=0.5, shift=1, n_procs=2)
        assert p.throughput == 2.0

    def test_instantiate_rotates_and_offsets(self):
        p = PipelinedSchedule(self.one_proc_iteration(), period=0.5, shift=1, n_procs=4)
        k2 = p.instantiate(2)
        assert k2[0].procs == (2,) and k2[0].start == 1.0

    def test_wraparound(self):
        p = PipelinedSchedule(self.one_proc_iteration(), period=1.0, shift=1, n_procs=2)
        assert p.proc_for(0, 5) == 1

    def test_conflict_detection(self):
        # II shorter than the task on the same processor with no shift.
        p = PipelinedSchedule(self.one_proc_iteration(), period=0.5, shift=0, n_procs=2)
        with pytest.raises(InvalidSchedule, match="collide"):
            p.validate_conflict_free()

    def test_conflict_free_with_rotation(self):
        p = PipelinedSchedule(self.one_proc_iteration(), period=0.5, shift=1, n_procs=2)
        p.validate_conflict_free()

    def test_invalid_parameters(self):
        it = self.one_proc_iteration()
        with pytest.raises(InvalidSchedule):
            PipelinedSchedule(it, period=0.0, shift=0, n_procs=1)
        with pytest.raises(InvalidSchedule):
            PipelinedSchedule(it, period=1.0, shift=5, n_procs=2)
        with pytest.raises(InvalidSchedule):
            PipelinedSchedule(it, period=1.0, shift=0, n_procs=0)

    def test_iteration_beyond_procs_rejected(self):
        it = IterationSchedule([Placement("t", (3,), 0.0, 1.0)])
        with pytest.raises(InvalidSchedule):
            PipelinedSchedule(it, period=1.0, shift=0, n_procs=2)
