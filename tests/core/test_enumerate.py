"""Unit tests for the Figure 6 enumeration (minimal latency L and set S)."""

from __future__ import annotations

import pytest

from repro.errors import ScheduleError
from repro.core.enumerate import enumerate_schedules
from repro.graph.builders import chain_graph, fork_join_graph
from repro.graph.channel import ChannelSpec
from repro.graph.task import DataParallelSpec, Task
from repro.graph.taskgraph import TaskGraph
from repro.sim.cluster import SINGLE_NODE_SMP, ClusterSpec
from repro.sim.network import CommCost, CommModel


class TestKnownOptima:
    def test_chain_is_serial(self, m1):
        """A chain has no parallelism: L = sum of costs on any cluster."""
        g = chain_graph([1.0, 2.0, 3.0])
        res = enumerate_schedules(g, m1, SINGLE_NODE_SMP(4))
        assert res.latency == pytest.approx(6.0)

    def test_fork_join_parallel_branches(self, m1):
        g = fork_join_graph(0.5, [1.0, 2.0, 3.0], 0.25)
        res = enumerate_schedules(g, m1, SINGLE_NODE_SMP(4))
        # 0.5 + max branch (3.0) + 0.25: branches run concurrently.
        assert res.latency == pytest.approx(3.75)

    def test_fork_join_on_one_processor_serializes(self, m1):
        g = fork_join_graph(0.5, [1.0, 2.0], 0.25)
        res = enumerate_schedules(g, m1, SINGLE_NODE_SMP(1))
        assert res.latency == pytest.approx(0.5 + 1.0 + 2.0 + 0.25)

    def test_two_wide_fork_on_two_procs(self, m1):
        g = fork_join_graph(0.0, [2.0, 2.0, 2.0, 2.0], 0.0)
        res = enumerate_schedules(g, m1, SINGLE_NODE_SMP(2))
        # 4 branches of 2s on 2 procs: two waves.
        assert res.latency == pytest.approx(4.0)

    def test_data_parallel_variant_chosen(self, m8):
        g = TaskGraph("dp")
        g.add_channel(ChannelSpec("c"))
        g.add_task(Task("src", cost=0.0, outputs=["c"]))
        g.add_task(
            Task(
                "heavy",
                cost=8.0,
                inputs=["c"],
                data_parallel=DataParallelSpec(worker_counts=[2, 4]),
            )
        )
        res = enumerate_schedules(g, m8, SINGLE_NODE_SMP(4))
        assert res.latency == pytest.approx(2.0)
        heavy = res.best.placement("heavy")
        assert heavy.workers == 4 and heavy.variant == "dp4"

    def test_dp_capped_by_node_width(self, m8):
        g = TaskGraph("dp")
        g.add_channel(ChannelSpec("c"))
        g.add_task(Task("src", cost=0.0, outputs=["c"]))
        g.add_task(
            Task(
                "heavy",
                cost=8.0,
                inputs=["c"],
                data_parallel=DataParallelSpec(worker_counts=[2, 8]),
            )
        )
        res = enumerate_schedules(g, m8, ClusterSpec(nodes=2, procs_per_node=2))
        # dp8 does not fit in a 2-proc node; dp2 gives 4.0.
        assert res.latency == pytest.approx(4.0)

    def test_single_task(self, m1):
        g = chain_graph([5.0])
        res = enumerate_schedules(g, m1, SINGLE_NODE_SMP(4))
        assert res.latency == pytest.approx(5.0)
        assert len(res.best) == 1


class TestCommunicationAware:
    def test_cross_node_cost_respected(self, m1):
        """With expensive inter-node links, both tasks stay on one node."""
        g = chain_graph([1.0, 1.0], item_bytes=1)
        cluster = ClusterSpec(nodes=2, procs_per_node=1)
        comm = CommModel(
            cluster,
            intra_node=CommCost(0.0, float("inf")),
            inter_node=CommCost(10.0, float("inf")),
        )
        res = enumerate_schedules(g, m1, cluster, comm=comm)
        assert res.latency == pytest.approx(2.0)
        procs = {pl.primary for pl in res.best}
        assert len({cluster.node_of(p) for p in procs}) == 1

    def test_parallelism_worth_paying_comm(self, m1):
        """Cheap comm: branches spread over nodes despite the transfer."""
        g = fork_join_graph(0.0, [2.0, 2.0], 0.0, item_bytes=1)
        cluster = ClusterSpec(nodes=2, procs_per_node=1)
        comm = CommModel(
            cluster,
            intra_node=CommCost(0.0, float("inf")),
            inter_node=CommCost(0.1, float("inf")),
        )
        res = enumerate_schedules(g, m1, cluster, comm=comm)
        # Spread: branch1 starts remotely at 0.1, ends 2.1; the sink joins
        # on the remote node (branch0's result crosses once): L = 2.1.
        assert res.latency == pytest.approx(2.1)
        nodes = {cluster.node_of(pl.primary) for pl in res.best}
        assert len(nodes) == 2  # the iteration does spread


class TestSetS:
    def test_set_contains_distinct_optima(self, m1):
        """Two independent 1s branches on 2 procs: both assignments optimal."""
        g = fork_join_graph(0.0, [1.0, 1.0], 0.0)
        res = enumerate_schedules(g, m1, SINGLE_NODE_SMP(2))
        assert res.latency == pytest.approx(1.0)
        assert res.optimal_count >= 2
        keys = {s.canonical_key() for s in res.schedules}
        assert len(keys) == len(res.schedules)

    def test_max_solutions_caps_materialization(self, m1):
        g = fork_join_graph(0.0, [1.0, 1.0, 1.0], 0.0)
        res = enumerate_schedules(g, m1, SINGLE_NODE_SMP(4), max_solutions=1)
        assert len(res.schedules) == 1
        assert res.optimal_count >= 1

    def test_every_member_validates(self, tracker_graph, m8, smp4):
        res = enumerate_schedules(tracker_graph, m8, smp4)
        for s in res.schedules:
            s.validate(tracker_graph, m8, smp4)


class TestGuards:
    def test_node_limit(self, m8, smp4, tracker_graph):
        with pytest.raises(ScheduleError, match="node_limit"):
            enumerate_schedules(tracker_graph, m8, smp4, node_limit=3)

    def test_empty_graph(self, m1):
        res = enumerate_schedules(TaskGraph("empty"), m1, SINGLE_NODE_SMP(1))
        assert res.latency == 0.0

    def test_heterogeneous_speeds(self, m1):
        """A 2x-speed node halves the serial chain latency."""
        g = chain_graph([2.0, 2.0])
        cluster = ClusterSpec(nodes=2, procs_per_node=1, node_speeds=[1.0, 2.0])
        res = enumerate_schedules(g, m1, cluster)
        assert res.latency == pytest.approx(2.0)
        for pl in res.best:
            assert cluster.node_of(pl.primary) == 1


class TestSameProcessorPlacement:
    def test_same_proc_beats_earlier_free_proc_under_costly_comm(self, m1):
        """With expensive intra-node transfers, the consumer belongs on the
        producer's own processor (same-proc tier is free) even though the
        other processor is free earlier — a case a pure earliest-free
        canonicalization would miss."""
        g = chain_graph([1.0, 1.0], item_bytes=100)
        cluster = SINGLE_NODE_SMP(2)
        comm = CommModel(
            cluster, intra_node=CommCost(latency=10.0, bandwidth=float("inf"))
        )
        res = enumerate_schedules(g, m1, cluster, comm=comm)
        assert res.latency == pytest.approx(2.0)
        t0 = res.best.placement("t0")
        t1 = res.best.placement("t1")
        assert t0.primary == t1.primary

    def test_cheap_comm_still_spreads(self, m1):
        """Sanity: with free communication the extra same-proc candidates
        change nothing (parallel branches still spread)."""
        g = fork_join_graph(0.0, [1.0, 1.0], 0.0)
        res = enumerate_schedules(g, m1, SINGLE_NODE_SMP(2))
        assert res.latency == pytest.approx(1.0)
