"""Unit tests for the latency/throughput frontier."""

from __future__ import annotations

import pytest

from repro.core.frontier import latency_throughput_frontier
from repro.core.optimal import OptimalScheduler
from repro.core.pipeline import naive_pipeline
from repro.graph.builders import chain_graph, random_dag
from repro.sim.cluster import SINGLE_NODE_SMP
from repro.state import State


class TestTrackerFrontier:
    @pytest.fixture(scope="class")
    def frontier(self):
        from repro.apps.tracker.graph import build_tracker_graph

        return latency_throughput_frontier(
            build_tracker_graph(), State(n_models=8), SINGLE_NODE_SMP(4),
            latency_slack=3.0,
        )

    def test_sorted_and_pareto(self, frontier):
        lats = [p.latency for p in frontier]
        thrs = [p.throughput for p in frontier]
        assert lats == sorted(lats)
        # Along a Pareto frontier, higher latency must buy throughput.
        assert thrs == sorted(thrs)
        assert len(set(zip(lats, thrs))) == len(frontier)

    def test_leftmost_point_is_papers_choice(self, frontier):
        from repro.apps.tracker.graph import build_tracker_graph

        sol = OptimalScheduler(SINGLE_NODE_SMP(4)).solve(
            build_tracker_graph(), State(n_models=8)
        )
        assert frontier[0].latency == pytest.approx(sol.latency)
        assert frontier[0].throughput == pytest.approx(sol.throughput)

    def test_naive_pipeline_anchors_throughput_end(self, frontier):
        from repro.apps.tracker.graph import build_tracker_graph

        naive = naive_pipeline(
            build_tracker_graph(), State(n_models=8), SINGLE_NODE_SMP(4)
        )
        assert frontier[-1].throughput == pytest.approx(naive.throughput)

    def test_wasted_space_quantified(self, frontier):
        """§3.3's trade-off: the latency-first point gives up a few
        percent of throughput relative to the frontier's right end."""
        gap = frontier[-1].throughput / frontier[0].throughput - 1.0
        assert 0.0 < gap < 0.10

    def test_all_schedules_conflict_free(self, frontier):
        for p in frontier:
            p.schedule.validate_conflict_free()


class TestFrontierGeneral:
    def test_single_point_when_no_tradeoff(self, m1):
        """A chain on one processor has exactly one operating point."""
        g = chain_graph([1.0, 1.0])
        front = latency_throughput_frontier(g, m1, SINGLE_NODE_SMP(1))
        assert len(front) == 1
        assert front[0].latency == pytest.approx(2.0)

    def test_chain_on_two_procs_pipeline_dominates(self, m1):
        """Perfectly balanced chain: optimal latency already achieves the
        area-bound throughput, so the frontier is a single point."""
        g = chain_graph([1.0, 1.0])
        front = latency_throughput_frontier(g, m1, SINGLE_NODE_SMP(2))
        assert len(front) == 1
        assert front[0].throughput == pytest.approx(1.0)

    def test_slack_zero_still_includes_naive_anchor(self, m1):
        g = chain_graph([1.0, 2.0])
        front = latency_throughput_frontier(
            g, m1, SINGLE_NODE_SMP(2), latency_slack=0.0
        )
        assert front[0].latency == pytest.approx(3.0)

    @pytest.mark.parametrize("seed", [3, 17, 99])
    def test_random_graphs_monotone_frontier(self, seed):
        g = random_dag(5, seed, dp_prob=0.3)
        front = latency_throughput_frontier(
            g, State(n_models=1), SINGLE_NODE_SMP(2), latency_slack=1.0,
            max_solutions=64,
        )
        assert front, "frontier can never be empty"
        lats = [p.latency for p in front]
        thrs = [p.throughput for p in front]
        assert lats == sorted(lats) and thrs == sorted(thrs)
