"""Differential tests: the accelerated search vs. the unoptimized path.

The warm start, the transposition table and the hoisted inner loops are
all claimed to be semantics-preserving — same minimal latency L, same set
S up to canonical order.  These tests check that claim on a seeded
battery of random DAGs across cluster shapes and communication models,
including the ``latency_slack > 0`` frontier mode.

``max_solutions`` is set high enough that S is never truncated: when the
cap overflows, a cold run and a dominance run legitimately materialize
different ``max_solutions``-sized subsets of the same S.
"""

from __future__ import annotations

import pytest

from repro.core.enumerate import enumerate_schedules
from repro.graph.builders import random_dag
from repro.sim.cluster import ClusterSpec, SINGLE_NODE_SMP
from repro.sim.network import CommCost, CommModel
from repro.state import State

_CAP = 4096


def _cold(graph, state, cluster, **kw):
    return enumerate_schedules(
        graph, state, cluster, warm_start=False, dominance=False,
        max_solutions=_CAP, **kw,
    )


def _fast(graph, state, cluster, **kw):
    return enumerate_schedules(graph, state, cluster, max_solutions=_CAP, **kw)


def _keys(result):
    return {s.canonical_key() for s in result.schedules}


def _check_identical(graph, state, cluster, **kw):
    cold = _cold(graph, state, cluster, **kw)
    fast = _fast(graph, state, cluster, **kw)
    assert fast.latency == cold.latency
    assert fast.optimal_count == cold.optimal_count
    assert _keys(fast) == _keys(cold)
    assert fast.explored <= cold.explored
    return cold, fast


@pytest.mark.parametrize("seed", range(8))
def test_random_dags_single_node(seed):
    graph = random_dag(n_tasks=5, seed=seed)
    _check_identical(graph, State(n_models=1), SINGLE_NODE_SMP(3))


@pytest.mark.parametrize("seed", range(8))
def test_random_dags_multi_node(seed):
    graph = random_dag(n_tasks=5, seed=100 + seed, edge_prob=0.5)
    _check_identical(graph, State(n_models=1), ClusterSpec(nodes=2, procs_per_node=2))


@pytest.mark.parametrize("seed", range(4))
def test_random_dags_with_comm(seed):
    cluster = ClusterSpec(nodes=2, procs_per_node=2)
    comm = CommModel(
        cluster,
        intra_node=CommCost(latency=0.01, bandwidth=1e6),
        inter_node=CommCost(latency=0.1, bandwidth=1e5),
    )
    graph = random_dag(n_tasks=5, seed=200 + seed, item_bytes=1000)
    _check_identical(graph, State(n_models=1), cluster, comm=comm)


@pytest.mark.parametrize("seed", range(4))
def test_random_dags_data_parallel(seed):
    graph = random_dag(n_tasks=4, seed=300 + seed, dp_prob=0.6)
    _check_identical(graph, State(n_models=2), SINGLE_NODE_SMP(4))


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("slack", [0.25, 0.5])
def test_random_dags_latency_slack(seed, slack):
    """Frontier mode: the near-optimal set must also match exactly."""
    graph = random_dag(n_tasks=4, seed=400 + seed)
    _check_identical(
        graph, State(n_models=1), ClusterSpec(nodes=2, procs_per_node=2),
        latency_slack=slack,
    )


def test_tracker_m8_both_clusters(tracker_graph):
    state = State(n_models=8)
    for cluster in (SINGLE_NODE_SMP(4), ClusterSpec(nodes=2, procs_per_node=4)):
        _check_identical(tracker_graph, state, cluster)


def test_heterogeneous_speeds():
    graph = random_dag(n_tasks=5, seed=7)
    cluster = ClusterSpec(nodes=2, procs_per_node=2, node_speeds=(1.0, 2.0))
    _check_identical(graph, State(n_models=1), cluster)


def test_counters_accounting(tracker_graph):
    """elapsed_s and the pruning counters are populated and consistent."""
    result = _fast(tracker_graph, State(n_models=8), ClusterSpec(nodes=2, procs_per_node=4))
    assert result.elapsed_s > 0.0
    assert result.pruned == result.pruned_bound + result.pruned_dominance
    assert result.pruned_dominance > 0  # transpositions exist on 2 nodes
    cold = _cold(tracker_graph, State(n_models=8), ClusterSpec(nodes=2, procs_per_node=4))
    assert cold.pruned_dominance == 0  # table disabled
