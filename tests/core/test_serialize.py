"""Unit tests for schedule persistence and the interpolating table."""

from __future__ import annotations

import pytest

from repro.errors import RegimeError, ScheduleError
from repro.core.interpolate import InterpolatingTable
from repro.core.optimal import OptimalScheduler
from repro.core.serialize import (
    iteration_from_dict,
    iteration_to_dict,
    pipelined_from_dict,
    pipelined_to_dict,
    solution_from_dict,
    solution_to_dict,
    table_from_json,
    table_to_json,
)
from repro.core.table import ScheduleTable
from repro.sim.cluster import SINGLE_NODE_SMP
from repro.state import State, StateSpace


@pytest.fixture(scope="module")
def tracker_solution():
    from repro.apps.tracker.graph import build_tracker_graph

    return OptimalScheduler(SINGLE_NODE_SMP(4)).solve(
        build_tracker_graph(), State(n_models=8)
    )


class TestRoundTrips:
    def test_iteration_round_trip(self, tracker_solution):
        restored = iteration_from_dict(iteration_to_dict(tracker_solution.iteration))
        assert restored.canonical_key() == tracker_solution.iteration.canonical_key()
        assert restored.latency == pytest.approx(tracker_solution.latency)

    def test_pipelined_round_trip(self, tracker_solution):
        restored = pipelined_from_dict(pipelined_to_dict(tracker_solution.pipelined))
        assert restored.period == pytest.approx(tracker_solution.period)
        assert restored.shift == tracker_solution.pipelined.shift
        restored.validate_conflict_free()

    def test_solution_round_trip(self, tracker_solution):
        restored = solution_from_dict(solution_to_dict(tracker_solution))
        assert restored.state == tracker_solution.state
        assert restored.latency == pytest.approx(tracker_solution.latency)
        assert restored.alternatives == tracker_solution.alternatives

    def test_table_round_trip(self):
        from repro.apps.tracker.graph import build_tracker_graph

        table = ScheduleTable.build(
            build_tracker_graph(),
            StateSpace.range("n_models", 1, 3),
            OptimalScheduler(SINGLE_NODE_SMP(4)),
        )
        restored = table_from_json(table_to_json(table))
        assert len(restored) == 3
        for state in table.states():
            assert restored.lookup(state).latency == pytest.approx(
                table.lookup(state).latency
            )

    def test_restored_schedule_executes(self, tracker_solution):
        """A loaded schedule runs through the static executor unchanged."""
        from repro.apps.tracker.graph import build_tracker_graph
        from repro.runtime.static_exec import StaticExecutor

        restored = pipelined_from_dict(pipelined_to_dict(tracker_solution.pipelined))
        result = StaticExecutor(
            build_tracker_graph(), State(n_models=8), SINGLE_NODE_SMP(4), restored
        ).run(4)
        assert result.meta["slips"] == 0


class TestMalformedInput:
    def test_not_json(self):
        with pytest.raises(ScheduleError, match="JSON"):
            table_from_json("{nope")

    def test_wrong_format_marker(self):
        with pytest.raises(ScheduleError, match="not a schedule table"):
            table_from_json('{"format": "something-else"}')

    def test_wrong_version(self):
        with pytest.raises(ScheduleError, match="version"):
            table_from_json('{"format": "repro.schedule_table", "version": 99}')

    def test_missing_fields(self):
        with pytest.raises(ScheduleError, match="missing"):
            iteration_from_dict({"name": "x"})
        with pytest.raises(ScheduleError, match="missing"):
            pipelined_from_dict({"period": 1.0})


class TestInterpolatingTable:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.apps.tracker.graph import build_tracker_graph

        graph = build_tracker_graph()
        cluster = SINGLE_NODE_SMP(4)
        # Sparse coverage: only states 1 and 8.
        table = ScheduleTable.build(
            graph,
            StateSpace(iter([State(n_models=1), State(n_models=8)])),
            OptimalScheduler(cluster),
        )
        return graph, cluster, table

    def test_exact_hit_passthrough(self, setup):
        graph, cluster, table = setup
        interp = InterpolatingTable(table, graph, cluster)
        sol = interp.lookup(State(n_models=8))
        assert sol is table.lookup(State(n_models=8))
        assert interp.interpolations == 0

    def test_interpolated_lookup_valid_for_state(self, setup):
        graph, cluster, table = setup
        interp = InterpolatingTable(table, graph, cluster)
        sol = interp.lookup(State(n_models=4))
        assert sol.state == State(n_models=4)
        sol.iteration.validate(graph, State(n_models=4), cluster)
        sol.pipelined.validate_conflict_free()
        assert interp.interpolations == 1

    def test_nearest_selection(self, setup):
        graph, cluster, table = setup
        interp = InterpolatingTable(table, graph, cluster)
        assert interp.nearest_covered(State(n_models=2))["n_models"] == 1
        assert interp.nearest_covered(State(n_models=7))["n_models"] == 8

    def test_interpolated_never_beats_exact(self, setup):
        graph, cluster, table = setup
        interp = InterpolatingTable(table, graph, cluster)
        exact = OptimalScheduler(cluster).solve(graph, State(n_models=4))
        assert interp.lookup(State(n_models=4)).latency >= exact.latency - 1e-9

    def test_missing_variable_rejected(self, setup):
        graph, cluster, table = setup
        interp = InterpolatingTable(table, graph, cluster)
        with pytest.raises(RegimeError):
            interp.lookup(State(other=3))
