"""Unit tests for EWMA drift detection: fire, hysteresis, cooldown."""

from __future__ import annotations

import pytest

from repro.obs.drift import DriftDetector, DriftError, Ewma

KEY = ("exec", "T4", "serial", "nominal")


class TestEwma:
    def test_seeded_by_first_sample(self):
        e = Ewma(alpha=0.5)
        assert e.update(10.0) == 10.0

    def test_moves_toward_new_samples(self):
        e = Ewma(alpha=0.5)
        e.update(0.0)
        assert e.update(10.0) == 5.0
        assert e.update(10.0) == 7.5

    def test_alpha_validated(self):
        with pytest.raises(DriftError):
            Ewma(alpha=0.0)
        with pytest.raises(DriftError):
            Ewma(alpha=1.5)


class TestDriftDetector:
    def detector(self, **kw):
        defaults = dict(threshold=0.25, confirm=3, min_samples=3, alpha=1.0,
                        rearm_ratio=0.5, cooldown=0)
        defaults.update(kw)
        return DriftDetector(**defaults)

    def test_no_fire_below_threshold(self):
        det = self.detector()
        for _ in range(10):
            assert det.observe(KEY, modeled=1.0, observed=1.1) is None
        assert det.detection_count == 0

    def test_fires_after_consecutive_breaches(self):
        det = self.detector()
        assert det.observe(KEY, 1.0, 2.0, time=1.0) is None
        assert det.observe(KEY, 1.0, 2.0, time=2.0) is None
        signal = det.observe(KEY, 1.0, 2.0, time=3.0)
        assert signal is not None
        assert signal.key == KEY
        assert signal.rel_error == pytest.approx(1.0)
        assert signal.time == 3.0
        assert "drift on T4/serial/nominal" in signal.summary()

    def test_breach_streak_resets_on_good_sample(self):
        det = self.detector()
        det.observe(KEY, 1.0, 2.0)
        det.observe(KEY, 1.0, 2.0)
        det.observe(KEY, 1.0, 1.0)  # streak broken
        assert det.observe(KEY, 1.0, 2.0) is None
        assert det.detection_count == 0

    def test_min_samples_gate(self):
        det = self.detector(confirm=1, min_samples=5)
        for _ in range(4):
            assert det.observe(KEY, 1.0, 2.0) is None
        assert det.observe(KEY, 1.0, 2.0) is not None

    def test_hysteresis_one_regime_one_signal(self):
        det = self.detector()
        for _ in range(3):
            det.observe(KEY, 1.0, 2.0)
        assert det.detection_count == 1
        # the drifted regime persists: disarmed key stays silent
        for _ in range(20):
            assert det.observe(KEY, 1.0, 2.0) is None
        assert det.detection_count == 1

    def test_rearm_after_error_collapses(self):
        det = self.detector()
        for _ in range(3):
            det.observe(KEY, 1.0, 2.0)
        # recalibration fixes the model: error under rearm band -> re-arm
        for _ in range(3):
            assert det.observe(KEY, 2.0, 2.0) is None
        # a second genuine drift fires again
        for _ in range(3):
            det.observe(KEY, 2.0, 8.0)
        assert det.detection_count == 2

    def test_cooldown_spaces_firings(self):
        det = self.detector(cooldown=50)
        for _ in range(3):
            det.observe(KEY, 1.0, 2.0)
        # collapse error to re-arm, then drift again immediately
        for _ in range(3):
            det.observe(KEY, 2.0, 2.0)
        for _ in range(3):
            assert det.observe(KEY, 2.0, 8.0) is None  # inside cooldown
        assert det.detection_count == 1

    def test_keys_are_independent(self):
        det = self.detector()
        other = ("exec", "T2", "serial", "nominal")
        for _ in range(3):
            det.observe(KEY, 1.0, 2.0)
            det.observe(other, 1.0, 1.0)
        assert det.detection_count == 1
        assert det.error_of(other, 1.0) == pytest.approx(0.0)
        assert det.error_of(("unseen",), 1.0) is None

    def test_negative_drift_detected_too(self):
        det = self.detector()
        for _ in range(3):
            det.observe(KEY, 1.0, 0.5)
        assert det.detection_count == 1
        assert det.detections[0].rel_error == pytest.approx(-0.5)

    def test_config_validation(self):
        with pytest.raises(DriftError):
            DriftDetector(threshold=0.0)
        with pytest.raises(DriftError):
            DriftDetector(confirm=0)
        with pytest.raises(DriftError):
            DriftDetector(rearm_ratio=1.0)
        with pytest.raises(DriftError):
            DriftDetector(cooldown=-1)
