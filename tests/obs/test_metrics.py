"""Unit tests for the metrics registry and its expositions."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsError,
    MetricsRegistry,
    Snapshotter,
    parse_prometheus_text,
)


class TestCounter:
    def test_inc_and_default_child(self):
        reg = MetricsRegistry()
        c = reg.counter("frames_total", "Frames")
        c.inc()
        c.inc(2.5)
        assert ("frames_total", ()) in parse_prometheus_text(reg.to_prometheus_text())
        assert parse_prometheus_text(reg.to_prometheus_text())[("frames_total", ())] == 3.5

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("c_total")
        with pytest.raises(MetricsError):
            c.inc(-1)

    def test_labeled_series_are_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", labelnames=("kind",))
        c.labels("put").inc(3)
        c.labels("get").inc(5)
        samples = parse_prometheus_text(reg.to_prometheus_text())
        assert samples[("ops_total", (("kind", "put"),))] == 3
        assert samples[("ops_total", (("kind", "get"),))] == 5

    def test_labels_are_memoized(self):
        c = MetricsRegistry().counter("x_total", labelnames=("a",))
        assert c.labels("v") is c.labels("v")
        assert c.labels("v") is c.labels(a="v")

    def test_label_shape_errors(self):
        c = MetricsRegistry().counter("y_total", labelnames=("a", "b"))
        with pytest.raises(MetricsError):
            c.labels("only-one")
        with pytest.raises(MetricsError):
            c.labels("one", b="two")
        with pytest.raises(MetricsError):
            c.labels(a="x", nope="y")


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("period_seconds")
        g.set(1.5)
        g.labels().inc(0.5)
        g.labels().dec(1.0)
        assert parse_prometheus_text(reg.to_prometheus_text())[
            ("period_seconds", ())
        ] == pytest.approx(1.0)


class TestHistogram:
    def test_bucket_counts_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        samples = parse_prometheus_text(reg.to_prometheus_text())
        assert samples[("lat_seconds_bucket", (("le", "0.1"),))] == 1
        assert samples[("lat_seconds_bucket", (("le", "1"),))] == 3
        assert samples[("lat_seconds_bucket", (("le", "10"),))] == 4
        assert samples[("lat_seconds_bucket", (("le", "+Inf"),))] == 5
        assert samples[("lat_seconds_count", ())] == 5
        assert samples[("lat_seconds_sum", ())] == pytest.approx(56.05)

    def test_boundary_is_le_inclusive(self):
        h = MetricsRegistry().histogram("h_s", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h.labels().cumulative()[0] == 1

    def test_non_finite_observation_rejected(self):
        h = MetricsRegistry().histogram("h2_s", buckets=(1.0,))
        with pytest.raises(MetricsError):
            h.observe(float("nan"))

    def test_bad_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricsError):
            reg.histogram("bad_s", buckets=())
        with pytest.raises(MetricsError):
            reg.histogram("bad2_s", buckets=(2.0, 1.0))

    def test_default_buckets_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_get_or_create_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total", labelnames=("x",)) is reg.counter(
            "a_total", labelnames=("x",)
        )

    def test_conflicting_reregistration_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m_total")
        with pytest.raises(MetricsError):
            reg.gauge("m_total")
        with pytest.raises(MetricsError):
            reg.counter("m_total", labelnames=("k",))

    def test_invalid_name_rejected(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().counter("bad name")

    def test_snapshot_matches_prometheus(self):
        reg = MetricsRegistry()
        reg.counter("frames_total").inc(7)
        reg.gauge("period_seconds").set(0.25)
        h = reg.histogram("lat_seconds", labelnames=("task",), buckets=(1.0, 2.0))
        h.labels("T1").observe(0.5)
        h.labels("T1").observe(1.5)

        snap = reg.snapshot()
        samples = parse_prometheus_text(reg.to_prometheus_text())

        assert snap["frames_total"]["type"] == "counter"
        assert snap["frames_total"]["series"][0]["value"] == samples[("frames_total", ())]
        assert snap["period_seconds"]["series"][0]["value"] == samples[
            ("period_seconds", ())
        ]
        hseries = snap["lat_seconds"]["series"][0]
        assert hseries["labels"] == {"task": "T1"}
        assert hseries["count"] == samples[("lat_seconds_count", (("task", "T1"),))]
        assert hseries["sum"] == samples[("lat_seconds_sum", (("task", "T1"),))]
        # snapshot counts are per-bucket; prometheus buckets are cumulative
        assert sum(hseries["counts"]) == hseries["count"]
        assert json.loads(json.dumps(snap)) == snap  # JSON-able throughout

    def test_concurrent_updates_lose_nothing(self):
        reg = MetricsRegistry()
        c = reg.counter("n_total")
        h = reg.histogram("v_seconds", buckets=(0.5, 1.0))

        def work():
            for _ in range(2000):
                c.inc()
                h.observe(0.25)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        samples = parse_prometheus_text(reg.to_prometheus_text())
        assert samples[("n_total", ())] == 8000
        assert samples[("v_seconds_count", ())] == 8000


class TestParsePrometheusText:
    def test_round_trip_with_escapes(self):
        reg = MetricsRegistry()
        reg.counter("e_total", labelnames=("msg",)).labels('say "hi"\\now').inc()
        samples = parse_prometheus_text(reg.to_prometheus_text())
        assert samples[("e_total", (("msg", 'say "hi"\\now'),))] == 1

    def test_malformed_lines_rejected(self):
        with pytest.raises(MetricsError):
            parse_prometheus_text("just_a_name_no_value\n")
        with pytest.raises(MetricsError):
            parse_prometheus_text("name{unclosed 1\n")
        with pytest.raises(MetricsError):
            parse_prometheus_text("name not-a-number\n")

    def test_comments_and_blanks_skipped(self):
        assert parse_prometheus_text("# HELP x y\n\n# TYPE x counter\n") == {}


class TestSnapshotter:
    def test_simulated_time_interval(self):
        reg = MetricsRegistry()
        c = reg.counter("ticks_total")
        snap = Snapshotter(reg, interval=1.0)
        c.inc()
        assert snap.maybe(0.0) is not None     # first call always snapshots
        assert snap.maybe(0.5) is None         # too soon
        c.inc()
        rec = snap.maybe(1.0)
        assert rec is not None
        assert rec["time"] == 1.0
        assert rec["metrics"]["ticks_total"]["series"][0]["value"] == 2
        assert len(snap.snapshots) == 2

    def test_jsonl_sink_path(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        path = tmp_path / "snaps.jsonl"
        snap = Snapshotter(reg, interval=1.0, sink=str(path))
        snap.force(1.0)
        snap.force(2.0)
        lines = [json.loads(x) for x in path.read_text().splitlines()]
        assert [r["time"] for r in lines] == [1.0, 2.0]

    def test_keep_bounds_memory(self):
        reg = MetricsRegistry()
        snap = Snapshotter(reg, interval=1.0, keep=3)
        for t in range(10):
            snap.force(float(t))
        assert [r["time"] for r in snap.snapshots] == [7.0, 8.0, 9.0]

    def test_bad_interval_rejected(self):
        with pytest.raises(MetricsError):
            Snapshotter(MetricsRegistry(), interval=0.0)

    def test_wall_clock_thread_start_stop(self):
        reg = MetricsRegistry()
        snap = Snapshotter(reg, interval=0.01)
        snap.start()
        with pytest.raises(MetricsError):
            snap.start()
        snap.stop(final=True)
        assert len(snap.snapshots) >= 1
