"""Unit tests for the cost calibrator and its calibrated-graph output."""

from __future__ import annotations

import pytest

from repro.apps.tracker.graph import build_tracker_graph
from repro.core.replay import variant_duration
from repro.obs.calibrate import (
    CostCalibrator,
    CostStats,
    ScaledCost,
    graph_with_costs,
    node_class_of,
    tier_name,
)
from repro.obs.drift import DriftDetector
from repro.sim.cluster import SINGLE_NODE_SMP
from repro.state import State


@pytest.fixture()
def graph():
    return build_tracker_graph()


@pytest.fixture()
def calibrator(graph):
    return CostCalibrator(
        graph,
        State(n_models=2),
        SINGLE_NODE_SMP(4),
        detector=DriftDetector(threshold=0.25, confirm=3, min_samples=3,
                               alpha=1.0, cooldown=0),
    )


class TestCostStats:
    def test_welford_matches_reference(self):
        s = CostStats()
        for v in (1.0, 2.0, 3.0, 4.0):
            s.add(v)
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.variance == pytest.approx(5.0 / 3.0)
        assert (s.min, s.max) == (1.0, 4.0)

    def test_empty_is_safe(self):
        s = CostStats()
        assert s.variance == 0.0 and s.std == 0.0


class TestScaledCost:
    def test_scales_and_stays_state_dependent(self, graph):
        base = graph.task("T4").cost
        scaled = ScaledCost(base, 2.0)
        for n in (1, 2, 4):
            st = State(n_models=n)
            assert scaled(st) == pytest.approx(2.0 * base(st))

    def test_invalid_factor_rejected(self, graph):
        with pytest.raises(ValueError):
            ScaledCost(graph.task("T4").cost, 0.0)
        with pytest.raises(ValueError):
            ScaledCost(graph.task("T4").cost, float("inf"))


class TestHelpers:
    def test_node_class_of(self):
        cluster = SINGLE_NODE_SMP(4)
        assert node_class_of(cluster, 0) == "nominal"
        assert node_class_of(None, 0) == "nominal"
        assert node_class_of(cluster, 99) == "nominal"  # out of range: benign

    def test_tier_name(self):
        cluster = SINGLE_NODE_SMP(4)
        assert tier_name(cluster, 1, 1) == "same_proc"
        assert tier_name(cluster, 0, 1) == "intra_node"


class TestGraphWithCosts:
    def test_replaces_only_named_tasks(self, graph):
        st = State(n_models=2)
        out = graph_with_costs(
            graph, {"T4": ScaledCost(graph.task("T4").cost, 3.0)}, name="g2"
        )
        assert out.name == "g2"
        assert out.task("T4").cost(st) == pytest.approx(3.0 * graph.task("T4").cost(st))
        assert out.task("T2").cost(st) == pytest.approx(graph.task("T2").cost(st))
        # structure preserved
        assert [t.name for t in out.tasks] == [t.name for t in graph.tasks]

    def test_chunk_cost_scales_with_serial(self, graph):
        st = State(n_models=2)
        out = graph_with_costs(graph, {"T4": ScaledCost(graph.task("T4").cost, 2.0)})
        # a data-parallel variant's duration must scale consistently
        for variant in ("dp2", "serial"):
            assert variant_duration(out, "T4", variant, st) == pytest.approx(
                2.0 * variant_duration(graph, "T4", variant, st), rel=0.05
            )


class TestCostCalibrator:
    def test_agreeing_observations_no_drift(self, calibrator):
        modeled = calibrator.modeled_exec("T2", "serial")
        for _ in range(8):
            assert calibrator.observe_exec("T2", "serial", modeled) is None
        assert calibrator.drifts == []
        assert calibrator.scale_factors()["T2"] == pytest.approx(1.0)
        assert calibrator.calibrated_costs() == {}

    def test_perturbed_observations_fire_and_calibrate(self, calibrator):
        modeled = calibrator.modeled_exec("T4", "serial")
        fired = [
            calibrator.observe_exec("T4", "serial", 2.0 * modeled, time=float(i))
            for i in range(5)
        ]
        assert any(fired)
        assert len(calibrator.drifts) == 1
        factors = calibrator.scale_factors()
        assert factors["T4"] == pytest.approx(2.0)
        costs = calibrator.calibrated_costs()
        assert isinstance(costs["T4"], ScaledCost)
        calibrated = calibrator.calibrated_graph()
        st = calibrator.state
        assert calibrated.task("T4").cost(st) == pytest.approx(
            2.0 * calibrator.graph.task("T4").cost(st)
        )

    def test_dead_band_leaves_small_errors_alone(self, calibrator):
        modeled = calibrator.modeled_exec("T2", "serial")
        for _ in range(6):
            calibrator.observe_exec("T2", "serial", 1.02 * modeled)
        assert calibrator.calibrated_costs(min_rel_change=0.05) == {}
        assert "T2" in calibrator.calibrated_costs(min_rel_change=0.01)

    def test_report_renders_rows_and_drifts(self, calibrator):
        modeled = calibrator.modeled_exec("T4", "serial")
        for i in range(5):
            calibrator.observe_exec("T4", "serial", 2.0 * modeled, time=float(i))
        calibrator.observe_comm("frame", "intra_node", 0.001, nbytes=1000)
        text = calibrator.report().render()
        assert "T4/serial/nominal" in text
        assert "frame/intra_node" in text
        assert "Drift signals:" in text

    def test_report_no_drift_note(self, calibrator):
        assert "No drift detected." in calibrator.report().render()

    def test_zero_cost_tasks_cannot_drift(self, graph):
        cal = CostCalibrator(graph, State(n_models=2))
        # T1 (digitizer plumbing) has a tiny but nonzero cost; fabricate a
        # zero-modeled case through a comm observation with no comm model.
        assert cal.observe_comm("frame", "intra_node", 0.5) is None
        assert cal.drifts == []
