"""Unit tests for the span tracer ring buffer."""

from __future__ import annotations

import pytest

from repro.obs.tracing import Span, SpanTracer


class TestSpan:
    def test_duration_and_instant(self):
        s = Span("work", "exec", 1.0, 3.5)
        assert s.duration == 2.5
        assert not s.is_instant
        assert Span("mark", "sched", 2.0, 2.0).is_instant

    def test_equality(self):
        a = Span("n", "c", 0.0, 1.0, track="t", timestamp=3, args={"k": 1})
        b = Span("n", "c", 0.0, 1.0, track="t", timestamp=3, args={"k": 1})
        assert a == b
        assert a != Span("n", "c", 0.0, 2.0, track="t", timestamp=3)

    def test_to_dict_omits_defaults(self):
        d = Span("n", "c", 0.0, 1.0).to_dict()
        assert "timestamp" not in d and "args" not in d
        full = Span("n", "c", 0.0, 1.0, timestamp=2, args={"x": 1}).to_dict()
        assert full["timestamp"] == 2 and full["args"] == {"x": 1}


class TestSpanTracer:
    def test_record_and_read(self):
        tr = SpanTracer()
        tr.complete("a", "exec", 0.0, 1.0, track=3)
        tr.instant("b", "sched", 2.0)
        spans = tr.spans()
        assert [s.name for s in spans] == ["a", "b"]
        assert spans[0].track == "3"  # tracks normalize to strings
        assert len(tr) == 2 and tr.dropped == 0

    def test_ring_buffer_evicts_oldest(self):
        tr = SpanTracer(capacity=3)
        for i in range(5):
            tr.instant(f"s{i}", "t", float(i))
        assert [s.name for s in tr.spans()] == ["s2", "s3", "s4"]
        assert tr.recorded == 5
        assert tr.dropped == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SpanTracer(capacity=0)

    def test_sink_streams_every_span_even_evicted(self):
        seen = []
        tr = SpanTracer(capacity=1, sink=seen.append)
        tr.instant("a", "t", 0.0)
        tr.instant("b", "t", 1.0)
        assert [s.name for s in seen] == ["a", "b"]
        assert [s.name for s in tr.spans()] == ["b"]

    def test_span_context_manager_times_body(self):
        ticks = iter([1.0, 3.5])
        tr = SpanTracer(clock=lambda: next(ticks))
        with tr.span("work", cat="test", track="w"):
            pass
        (s,) = tr.spans()
        assert (s.start, s.end, s.track) == (1.0, 3.5, "w")

    def test_span_context_manager_records_errors(self):
        ticks = iter([0.0, 1.0])
        tr = SpanTracer(clock=lambda: next(ticks))
        with pytest.raises(RuntimeError):
            with tr.span("boom", cat="test"):
                raise RuntimeError("nope")
        (s,) = tr.spans()
        assert s.args["error"] == "RuntimeError"

    def test_clear_keeps_counters(self):
        tr = SpanTracer()
        tr.instant("a", "t", 0.0)
        tr.clear()
        assert len(tr) == 0
        assert tr.recorded == 1
