"""Executor instrumentation: every runtime feeds the same obs bundle."""

from __future__ import annotations

import pytest

from repro.apps.tracker.graph import build_tracker_graph
from repro.core.optimal import OptimalScheduler
from repro.graph.builders import chain_graph
from repro.obs import Observability, parse_prometheus_text
from repro.runtime.dynamic import DynamicExecutor
from repro.runtime.static_exec import StaticExecutor
from repro.sched.online import PthreadScheduler
from repro.sim.cluster import SINGLE_NODE_SMP
from repro.state import State


@pytest.fixture(scope="module")
def static_run():
    g = build_tracker_graph()
    state = State(n_models=2)
    cluster = SINGLE_NODE_SMP(4)
    sol = OptimalScheduler(cluster).solve(g, state)
    obs = Observability()
    result = StaticExecutor(g, state, cluster, sol, obs=obs).run(6)
    return obs, result


class TestStaticExecutorInstrumentation:
    def test_exec_spans_recorded(self, static_run):
        obs, result = static_run
        execs = [s for s in obs.tracer.spans() if s.cat == "exec"]
        assert execs, "no execution spans recorded"
        names = {s.name for s in execs}
        assert {"T1", "T4"} <= names
        for s in execs:
            assert s.end >= s.start
            assert s.track.startswith("proc")

    def test_stm_spans_recorded(self, static_run):
        obs, _ = static_run
        stm = [s for s in obs.tracer.spans() if s.cat == "stm"]
        kinds = {s.name.split(":")[0] for s in stm}
        assert {"put", "get", "consume"} <= kinds

    def test_prometheus_parses_and_counts_frames(self, static_run):
        obs, result = static_run
        samples = parse_prometheus_text(obs.prometheus())
        assert samples[("repro_frames_completed_total", ())] == result.completed_count
        assert samples[("repro_schedule_period_seconds", ())] == pytest.approx(
            result.meta["period"]
        )
        exec_totals = {
            labels: v
            for (name, labels), v in samples.items()
            if name == "repro_task_executions_total"
        }
        assert sum(exec_totals.values()) > 0

    def test_snapshot_agrees_with_prometheus(self, static_run):
        obs, _ = static_run
        samples = parse_prometheus_text(obs.prometheus())
        snap = obs.snapshot()
        frames = snap["repro_frames_completed_total"]["series"][0]["value"]
        assert frames == samples[("repro_frames_completed_total", ())]

    def test_frame_latency_histogram_populated(self, static_run):
        obs, result = static_run
        samples = parse_prometheus_text(obs.prometheus())
        assert samples[("repro_frame_latency_seconds_count", ())] == result.completed_count


class TestDynamicExecutorInstrumentation:
    def test_quanta_traced_frames_counted(self):
        g = chain_graph([0.01, 0.02], period=0.2)
        obs = Observability()
        result = DynamicExecutor(
            g, State(n_models=1), SINGLE_NODE_SMP(2),
            PthreadScheduler(quantum=0.01), obs=obs,
        ).run(horizon=5.0, max_timestamps=5)
        samples = parse_prometheus_text(obs.prometheus())
        assert samples[("repro_frames_completed_total", ())] == result.completed_count
        assert any(s.cat == "exec" for s in obs.tracer.spans())


class TestThreadedRuntimeInstrumentation:
    def test_live_kernels_feed_obs(self):
        from repro.apps.tracker.graph import attach_kernels
        from repro.apps.video import VideoSource
        from repro.runtime.threaded import ThreadedRuntime

        video = VideoSource(n_targets=2, height=48, width=64, seed=5)
        live, statics = attach_kernels(
            build_tracker_graph(frame_shape=(48, 64)), video
        )
        obs = Observability()
        rt = ThreadedRuntime(
            live, State(n_models=2), static_inputs=statics, op_timeout=30, obs=obs,
        )
        rt.run(4)
        spans = obs.tracer.spans()
        assert any(s.cat == "exec" for s in spans)
        assert any(s.cat == "stm" for s in spans)
        samples = parse_prometheus_text(obs.prometheus())
        exec_counts = [
            v for (name, _), v in samples.items()
            if name == "repro_task_executions_total"
        ]
        assert sum(exec_counts) >= 4  # at least one execution per frame


class TestFaultHooks:
    def test_detection_and_failover_metrics(self):
        obs = Observability()
        obs.on_detection(3.0, "heartbeat", detail="node1 silent")
        obs.on_failover(3.0, 3.4, detail="rebuilt without node1")
        samples = parse_prometheus_text(obs.prometheus())
        assert samples[("repro_fault_detections_total", (("kind", "heartbeat"),))] == 1
        assert samples[("repro_failovers_total", ())] == 1
        assert samples[("repro_failover_stall_seconds_total", ())] == pytest.approx(0.4)
        cats = {s.cat for s in obs.tracer.spans()}
        assert "faults" in cats
