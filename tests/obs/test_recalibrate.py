"""Closing the loop: confirmed drift re-builds the table and switches.

Includes the PR's acceptance test: a tracker run whose true costs are
>= 2x the model is detected, triggers a warm re-build, and the post-switch
measured latency beats the stale schedule's.
"""

from __future__ import annotations

import tempfile

import pytest

from repro.apps.tracker.graph import build_tracker_graph
from repro.core.cache import ScheduleCache
from repro.core.optimal import OptimalScheduler
from repro.core.table import ScheduleTable
from repro.obs import CalibrationController, CostCalibrator, ScaledCost
from repro.obs.drift import DriftDetector
from repro.sim.cluster import SINGLE_NODE_SMP
from repro.state import State, StateSpace


@pytest.fixture(scope="module")
def setup():
    graph = build_tracker_graph()
    cluster = SINGLE_NODE_SMP(4)
    space = StateSpace.range("n_models", 2, 2)
    scheduler = OptimalScheduler(cluster)
    table = ScheduleTable.build(graph, space, scheduler)
    return graph, cluster, space, scheduler, table


def make_controller(setup, cache=None):
    graph, cluster, space, scheduler, table = setup
    calibrator = CostCalibrator(
        graph, State(n_models=2), cluster,
        detector=DriftDetector(threshold=0.25, confirm=3, min_samples=3,
                               alpha=1.0, cooldown=0),
    )
    return CalibrationController(
        table=table, space=space, scheduler=scheduler,
        calibrator=calibrator, cache=cache,
    )


class TestCalibrationController:
    def test_rebuild_switches_to_honest_schedule(self, setup):
        controller = make_controller(setup)
        cal = controller.calibrator
        old = controller.active
        modeled = cal.modeled_exec("T4", "serial")
        drifts = [
            s for i in range(4)
            if (s := cal.observe_exec("T4", "serial", 2.5 * modeled, time=float(i)))
        ]
        assert drifts, "synthetic 2.5x perturbation must confirm drift"

        record = controller.recalibrate(time=10.0, drifts=drifts)
        assert controller.records == [record]
        assert controller.rebuild_count == 1
        assert record.scale_factors["T4"] == pytest.approx(2.5)
        # the honest schedule must slow down to the true bottleneck
        assert record.new_solution.period > record.old_solution.period
        assert controller.active is record.new_solution
        assert controller.active is not old
        assert record.effect.stall >= 0
        assert "recalibrated" in record.summary()

    def test_rebaseline_rearms_detector(self, setup):
        controller = make_controller(setup)
        cal = controller.calibrator
        modeled = cal.modeled_exec("T4", "serial")
        drifts = [
            s for i in range(4)
            if (s := cal.observe_exec("T4", "serial", 2.5 * modeled, time=float(i)))
        ]
        controller.recalibrate(time=10.0, drifts=drifts)
        # the calibrator now judges against the corrected model: the same
        # observed duration matches it, so no further drift fires
        corrected = cal.modeled_exec("T4", "serial")
        assert corrected == pytest.approx(2.5 * modeled)
        for i in range(6):
            assert cal.observe_exec("T4", "serial", corrected, time=20.0 + i) is None
        assert controller.rebuild_count == 1

    def test_process_without_drift_is_a_noop(self, setup):
        graph, cluster, space, scheduler, table = setup
        controller = make_controller(setup)
        from repro.runtime.static_exec import StaticExecutor

        result = StaticExecutor(
            graph, State(n_models=2), cluster, controller.active
        ).run(4)
        assert controller.process(result, time=result.horizon) is None
        assert controller.rebuild_count == 0

    def test_rebuild_uses_cache(self, setup):
        cache = ScheduleCache(tempfile.mkdtemp(prefix="repro-test-obs-cache-"))
        controller = make_controller(setup, cache=cache)
        cal = controller.calibrator
        modeled = cal.modeled_exec("T4", "serial")
        drifts = [
            s for i in range(4)
            if (s := cal.observe_exec("T4", "serial", 2.0 * modeled, time=float(i)))
        ]
        controller.recalibrate(time=5.0, drifts=drifts)
        # calibrated costs change the solve digest: a miss, then a store
        assert cache.stats.misses >= 1
        assert cache.stats.stores >= 1

    def test_recost_rebuild_misses_cache_never_serves_stale(self, setup):
        """Changed costs change the digest: the re-build must never be a
        cache hit against the stale-cost entries."""
        graph, cluster, space, scheduler, table = setup
        cache = ScheduleCache(tempfile.mkdtemp(prefix="repro-test-obs-cache-"))
        # Populate the cache with every stale-cost solve first.
        ScheduleTable.build(graph, space, scheduler, cache=cache)
        assert cache.stats.stores == len(list(space))
        hits_before = cache.stats.hits

        controller = make_controller(setup, cache=cache)
        cal = controller.calibrator
        modeled = cal.modeled_exec("T4", "serial")
        drifts = [
            s for i in range(4)
            if (s := cal.observe_exec("T4", "serial", 3.0 * modeled, time=float(i)))
        ]
        record = controller.recalibrate(time=5.0, drifts=drifts)
        # Every state re-solved fresh: zero hits against stale entries.
        assert cache.stats.hits == hits_before
        assert cache.stats.misses >= len(list(space))
        # And the served schedule reflects the re-costed model, not the
        # stale table's entry.
        stale = table.lookup(controller.calibrator.state)
        assert record.new_solution.period > stale.period
        # A second drift-free rebuild against the *same* calibrated costs
        # is the case the cache exists for: all hits.
        controller.recalibrate(time=6.0, drifts=drifts)
        assert cache.stats.hits == hits_before + len(list(space))

    def test_rebuild_under_bounded_solve_policy(self, setup):
        """The drift re-build can run on the bounded rung, certified."""
        graph, cluster, space, scheduler, table = setup
        calibrator = CostCalibrator(
            graph, State(n_models=2), cluster,
            detector=DriftDetector(threshold=0.25, confirm=3, min_samples=3,
                                   alpha=1.0, cooldown=0),
        )
        controller = CalibrationController(
            table=table, space=space, scheduler=scheduler,
            calibrator=calibrator, solve_policy="bounded:0.5",
        )
        modeled = calibrator.modeled_exec("T4", "serial")
        drifts = [
            s for i in range(4)
            if (s := calibrator.observe_exec("T4", "serial", 2.0 * modeled,
                                             time=float(i)))
        ]
        record = controller.recalibrate(time=5.0, drifts=drifts)
        cert = record.new_solution.certificate
        assert cert is not None
        assert cert.gap_bound <= 0.5 + 1e-9


class TestAcceptance:
    """ISSUE acceptance: perturbed >= 2x -> detected -> re-built -> faster."""

    @pytest.fixture(scope="class")
    def demo(self):
        from repro.experiments.obs_exp import run_obs

        return run_obs(perturb=2.5, iterations=10, overhead_frames=0)

    def test_drift_detected(self, demo):
        assert demo.drift_count >= 1

    def test_rebuild_happened(self, demo):
        assert demo.rebuild_summaries

    def test_stale_schedule_saturates(self, demo):
        assert demo.stale.slips > 0
        assert demo.stale.max_latency > 2.0 * demo.stale.mean_latency / 2.0

    def test_post_switch_latency_improves(self, demo):
        assert demo.rebuilt.mean_latency < demo.stale.mean_latency
        assert demo.rebuilt.slips < demo.stale.slips

    def test_loop_closed(self, demo):
        assert demo.drift_repaired
        assert "drift detected, repaired and measurably faster: True" in demo.render()

    def test_prometheus_excerpt_present(self, demo):
        assert "repro_drift_signals_total" in demo.prometheus_excerpt


class TestScaledCostInRebuild:
    def test_perturbed_graph_name(self):
        graph = build_tracker_graph()
        from repro.obs import graph_with_costs

        true = graph_with_costs(
            graph, {"T4": ScaledCost(graph.task("T4").cost, 2.0)}, name="x@true"
        )
        assert true.name == "x@true"
