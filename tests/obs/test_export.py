"""Unit tests for the JSONL and Chrome-trace span exporters."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import (
    JsonlSpanSink,
    chrome_trace_events,
    read_jsonl_spans,
    write_chrome_trace,
)
from repro.obs.tracing import Span, SpanTracer


def sample_spans() -> list[Span]:
    return [
        Span("T1", "exec", 0.0, 0.5, track="proc0", timestamp=0, args={"variant": "serial"}),
        Span("put:frame", "stm", 0.5, 0.5, track="frame", timestamp=0),
        Span("T2", "exec", 0.5, 1.5, track="proc1", timestamp=0),
    ]


class TestJsonl:
    def test_round_trip_through_file(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        with JsonlSpanSink(path, flush_every=1) as sink:
            tracer = SpanTracer(sink=sink)
            for s in sample_spans():
                tracer.record(s)
        assert read_jsonl_spans(path) == sample_spans()

    def test_streaming_is_o1_memory(self, tmp_path):
        # spans evicted from the ring buffer are still on disk
        path = str(tmp_path / "spans.jsonl")
        with JsonlSpanSink(path, flush_every=1) as sink:
            tracer = SpanTracer(capacity=1, sink=sink)
            for s in sample_spans():
                tracer.record(s)
            assert len(tracer) == 1
        assert len(read_jsonl_spans(path)) == 3

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "gap.jsonl"
        path.write_text('{"name": "a", "cat": "t", "start": 0, "end": 1}\n\n')
        (s,) = read_jsonl_spans(str(path))
        assert s.name == "a"

    def test_flush_every_validated(self):
        with pytest.raises(ValueError):
            JsonlSpanSink("/dev/null", flush_every=0)


class TestChromeTrace:
    def test_events_structure(self):
        events = chrome_trace_events(sample_spans())
        meta = [e for e in events if e["ph"] == "M"]
        assert {m["args"]["name"] for m in meta if m["name"] == "thread_name"} == {
            "proc0", "frame", "proc1"
        }
        durs = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert [d["name"] for d in durs] == ["T1", "T2"]
        assert [i["name"] for i in instants] == ["put:frame"]
        t1 = durs[0]
        assert t1["ts"] == 0.0 and t1["dur"] == pytest.approx(500_000.0)
        assert t1["args"]["variant"] == "serial"
        assert t1["args"]["timestamp"] == 0

    def test_tracks_share_tids(self):
        spans = [Span("a", "t", 0.0, 1.0, track="x"), Span("b", "t", 1.0, 2.0, track="x")]
        events = chrome_trace_events(spans)
        xs = [e for e in events if e["ph"] == "X"]
        assert xs[0]["tid"] == xs[1]["tid"]

    def test_accepts_tracer_directly(self):
        tr = SpanTracer()
        tr.record(sample_spans()[0])
        assert any(e["ph"] == "X" for e in chrome_trace_events(tr))

    def test_write_chrome_trace_file_parses(self, tmp_path):
        path = str(tmp_path / "trace.json")
        n = write_chrome_trace(sample_spans(), path)
        with open(path) as fh:
            doc = json.load(fh)
        assert len(doc["traceEvents"]) == n
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])
