"""Tests for the fault-tolerance sweep experiment and its CLI entry."""

from __future__ import annotations

import pytest

from repro.experiments.faults_exp import FaultsResult, run_faults


class TestFaultsExperiment:
    @pytest.fixture(scope="class")
    def result(self) -> FaultsResult:
        return run_faults(rates=(0.0, 0.08), iterations=20)

    def test_zero_rate_is_lossless(self, result):
        for r in result.rows:
            if r.rate == 0.0:
                assert r.completed == r.emitted
                assert r.recovery.frames_lost == 0
                assert r.recovery.availability == 1.0
                assert r.stall_fraction == 0.0

    def test_failures_cost_availability(self, result):
        faulty = [r for r in result.rows if r.rate > 0.0]
        assert faulty
        assert all(r.recovery.crashes >= 1 for r in faulty)
        assert all(r.recovery.availability < 1.0 for r in faulty)

    def test_policies_face_identical_fault_plans(self, result):
        faulty = [r for r in result.rows if r.rate > 0.0]
        # Same seeded plan per rate: detection latencies agree across
        # policies that saw the same number of crashes.
        by_crashes = {}
        for r in faulty:
            by_crashes.setdefault(r.recovery.crashes, set()).add(
                round(r.recovery.detection_latency_mean, 9)
            )
        for latencies in by_crashes.values():
            assert len(latencies) == 1

    def test_policy_trade(self, result):
        rows = {r.policy: r for r in result.rows if r.rate > 0.0}
        assert rows["immediate"].stall_fraction < rows["drain"].stall_fraction
        assert rows["immediate"].recovery.frames_lost_transition > 0
        assert rows["drain"].recovery.frames_lost_transition == 0
        assert rows["checkpoint"].recovery.frames_replayed > 0

    def test_breaking_rate(self, result):
        assert result.breaking_rate("drain") == 0.08
        assert result.breaking_rate("immediate") is None

    def test_render(self, result):
        text = result.render()
        assert "amortization" in text
        assert "BREAKS" in text and "holds" in text

    def test_cli(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["faults", "--quick"]) == 0
        assert "faults" in capsys.readouterr().out
