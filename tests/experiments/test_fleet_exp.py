"""Tests for the fleet experiment and its CLI entry.

The class-scoped result runs a scaled-down configuration (quarter-size
cluster, smaller waves) whose assertions mirror the full run's acceptance
criteria proportionally: concurrency must reach at least the scaled
floor, the second arrival wave must hit the schedule cache, and the final
packing must carry a clean F001/S-rule verdict.  The full-scale numbers
(>= 50 concurrent tenants on 16x4) are asserted in ``benchmarks`` /CI via
the same driver; re-running them here would double multi-second work.
"""

from __future__ import annotations

import pytest

from repro.experiments.fleet_exp import (
    FleetResult,
    kiosk_tenant_classes,
    run_fleet,
)
from repro.sim.cluster import ClusterSpec

# Quarter of the default 16x4 cluster; the >= 50 acceptance floor for the
# full run scales to >= 13 here (concurrency tracks capacity).
SCALE_FLOOR = 13


class TestFleetExperiment:
    @pytest.fixture(scope="class")
    def result(self) -> FleetResult:
        return run_fleet(
            cluster=ClusterSpec(nodes=4, procs_per_node=4),
            wave_sizes=(18, 10),
            wave_gap=150.0,
            mean_dwell=300.0,
            seed=5,
        )

    def test_sustains_scaled_concurrency(self, result):
        assert result.peak_concurrent >= SCALE_FLOOR

    def test_zero_capacity_overflow_findings(self, result):
        assert result.findings_errors == 0

    def test_second_wave_hits_cache(self, result):
        wave2 = result.waves[1]
        assert wave2.cache_hits > 0
        assert wave2.hit_rate > 0.5  # same classes as wave 1 -> mostly reuse

    def test_all_offered_accounted(self, result):
        w = result.waves
        assert sum(x.arrivals for x in w) == result.offered
        assert result.admitted + result.rejected + result.final_queued >= 0
        assert 0.0 <= result.admission_rate <= 1.0

    def test_preemption_happened_and_was_accounted(self, result):
        # Contended kiosks must have been demoted at least once, and
        # every demotion is accounted on some tenant class row.
        assert result.demotions > 0
        assert sum(r["demotions"] for r in result.class_rows) > 0
        assert result.total_stall >= 0.0

    def test_tenants_eventually_leave(self, result):
        assert result.departures > 0
        assert result.final_concurrent <= result.peak_concurrent

    def test_utilization_bounded(self, result):
        assert 0.0 < result.mean_utilization <= 1.0
        assert result.peak_utilization <= 1.0

    def test_render(self, result):
        text = result.render()
        assert "Arrival waves" in text
        assert "verification: 0 error(s)" in text
        assert "cache:" in text

    def test_classes_are_distinct(self):
        classes = kiosk_tenant_classes()
        assert len({c.name for c in classes}) == 3
        assert {c.priority for c in classes} == {0, 1, 2}

    def test_cli(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fleet", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fleet: multi-tenant kiosks" in out
