"""Integration tests: every paper table/figure reproduces its shape.

These run the real experiment harnesses at reduced scale, then assert the
paper's qualitative claims — the same checks EXPERIMENTS.md reports.
"""

from __future__ import annotations

import pytest



class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.table1 import run_table1

        return run_table1()

    def test_shape_holds(self, result):
        assert result.shape_holds()

    def test_simulation_matches_analytic_model(self, result):
        """The DES execution of the Figure 9 expansion reproduces the
        analytic wave model exactly (uniform chunks)."""
        for cell in result.cells:
            assert cell.simulated == pytest.approx(cell.analytic, rel=1e-6)

    def test_within_six_percent_of_paper(self, result):
        for cell in result.cells:
            assert abs(cell.simulated - cell.paper) / cell.paper < 0.06

    def test_chunk_counts_match_paper_parentheses(self, result):
        assert result.cell(1, 8, 8).chunks == 8
        assert result.cell(4, 8, 8).chunks == 32
        assert result.cell(4, 8, 1).chunks == 4

    def test_render(self, result):
        text = result.render()
        assert "shape holds: True" in text and "6.8" in text


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.figure3 import run_figure3

        return run_figure3(
            periods=(0.033, 1.0, 2.0, 3.0, 5.0), horizon=60.0,
            optimal_iterations=12,
        )

    def test_optimal_dominates_curve(self, result):
        assert result.optimal_dominates_curve()

    def test_optimal_matches_best_latency(self, result):
        assert result.optimal_has_min_latency()

    def test_optimal_halves_worst_latency(self, result):
        assert result.halves_worst_latency()

    def test_curve_shape_saturated_vs_drained(self, result):
        by_period = {p.period: p for p in result.points}
        saturated = by_period[0.033]
        drained = by_period[5.0]
        assert saturated.latency > 2 * drained.latency
        assert saturated.throughput > 2 * drained.throughput

    def test_measured_optimal_matches_plan(self, result):
        assert result.measured_optimal_latency == pytest.approx(
            result.optimal_latency, rel=0.05
        )
        assert result.measured_optimal_throughput == pytest.approx(
            result.optimal_throughput, rel=0.05
        )

    def test_render(self, result):
        text = result.render()
        assert "optimal dominates whole curve" in text and "*" in text


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.figure4 import run_figure4

        return run_figure4(horizon=60.0, iterations=10)

    def test_pipeline_beats_pthread(self, result):
        assert result.pipeline_beats_pthread()

    def test_pthread_shows_partial_processing(self, result):
        """§3.2: the on-line scheduler preempts threads mid-item."""
        assert result.pthread_preempted_spans > 0
        assert result.pipeline_preempted_spans == 0

    def test_pthread_skips_frames(self, result):
        assert result.pthread_uniformity.coverage < 0.5
        assert result.pipeline_uniformity.coverage == 1.0

    def test_pipeline_perfectly_regular(self, result):
        assert result.pipeline_uniformity.interarrival_cv == pytest.approx(0.0)

    def test_render(self, result):
        text = result.render()
        assert "(a) pthread-style" in text and "(b) naive software pipeline" in text


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.figure5 import run_figure5

        return run_figure5(iterations=8)

    def test_latency_ordering(self, result):
        assert result.latency_ordering_holds()

    def test_throughput_tradeoff(self, result):
        assert result.throughput_tradeoff_holds()

    def test_data_parallel_much_faster(self, result):
        """Fig 5(b) vs naive: T4's data parallelism is the big win."""
        assert result.data_parallel_measured_latency < result.naive_measured_latency / 3

    def test_wraparound_pattern_exists(self, result):
        assert result.wraps_around()

    def test_render(self, result):
        assert "latency ordering" in result.render()


class TestRegime:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.regime import run_regime

        return run_regime(horizon=1800.0)

    def test_switching_beats_all_fixed(self, result):
        assert result.switching_beats_all_fixed()

    def test_oracle_bounds_switched(self, result):
        oracle = result.outcome("oracle")
        switched = result.outcome("regime-switched")
        assert switched.frames_processed <= oracle.frames_processed + 1e-9
        assert switched.mean_latency == pytest.approx(oracle.mean_latency)

    def test_light_fixed_schedules_saturate(self, result):
        assert result.outcome("fixed-1").saturated_time > 0
        assert result.outcome("fixed-5").saturated_time == 0.0

    def test_heavy_fixed_schedule_wastes_throughput(self, result):
        f5 = result.outcome("fixed-5")
        switched = result.outcome("regime-switched")
        assert switched.frames_processed > f5.frames_processed * 1.2

    def test_stall_accounting(self, result):
        switched = result.outcome("regime-switched")
        assert switched.switches > 0
        assert switched.total_stall > 0
        assert result.outcome("oracle").total_stall == 0.0

    def test_render(self, result):
        assert "regime switching beats every fixed schedule: True" in result.render()


class TestAblations:
    def test_interpolation_has_inapplicable_state(self):
        from repro.experiments.ablations import interpolation

        rows = interpolation()
        by_m = {r.n_models: r for r in rows}
        # §2.1's discontinuity: no neighbouring strategy can track 1 model.
        assert by_m[1].neighbour_latency is None

    def test_comm_cost_localizes(self):
        from repro.experiments.ablations import comm_cost

        rows = comm_cost(latencies=(0.0, 1.0))
        assert rows[0].nodes_touched == 2   # cheap comm: spread
        assert rows[1].nodes_touched == 1   # expensive comm: localize
        # Localized iterations overlap across nodes: II < L (§3.3).
        assert rows[1].period < rows[1].latency - 1e-9

    def test_flow_control_inadequate(self):
        from repro.experiments.ablations import flow_control

        rows = flow_control(capacities=(2, None), horizon=60.0)
        for row in rows:
            assert row.gap > 1.5  # nowhere near the optimal schedule

    def test_space_footprint_claim(self):
        """§3.3: the static schedule's live footprint is bounded and tiny;
        the saturated dynamic baseline's backlog dwarfs it."""
        from repro.experiments.ablations import space_footprint

        rows = {r.mode: r for r in space_footprint(horizon=60.0, iterations=15)}
        static = rows["optimal static schedule"]
        dynamic = rows["pthread dynamic (saturated)"]
        assert static.high_water_items <= 8
        assert dynamic.high_water_items > 20 * static.high_water_items

    def test_link_contention_assumption_validated(self):
        from repro.experiments.ablations import link_contention

        rows = link_contention(latencies=(0.05,), iterations=6)
        assert rows[0].slips == 0
        assert rows[0].degradation == pytest.approx(0.0, abs=0.01)

    def test_switch_frequency_amortizes(self):
        from repro.experiments.ablations import switch_frequency

        rows = switch_frequency(dwells=(60.0, 600.0), horizon=1200.0)
        assert rows[0].stall_fraction > rows[1].stall_fraction
        assert all(r.switching_wins for r in rows)
