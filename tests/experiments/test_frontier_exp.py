"""Tests for the frontier experiment and its CLI entry."""

from __future__ import annotations

import pytest

from repro.experiments.frontier_exp import run_frontier


class TestFrontierExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_frontier(model_counts=(1, 8))

    def test_chosen_point_is_frontier_leftmost(self, result):
        for m, front in result.frontiers.items():
            chosen_lat, chosen_thr = result.chosen[m]
            assert front[0].latency == pytest.approx(chosen_lat)
            assert front[0].throughput == pytest.approx(chosen_thr)

    def test_wasted_space_shrinks_with_load(self, result):
        """The paper concedes 'some wasted space'.  Quantified: large at
        light states (the latency-first point gives up ~45% throughput at
        one model, where T4 is small and deep pipelining shines) and
        single-digit percent at eight models, where T4's data-parallel
        width already saturates the machine."""
        assert result.wasted_space(1) > 0.2
        assert result.wasted_space(8) < 0.10
        assert result.wasted_space(1) > result.wasted_space(8)

    def test_render(self, result):
        text = result.render()
        assert "paper's choice" in text and "wasted space" in text

    def test_cli(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["frontier", "--quick"]) == 0
        assert "frontier" in capsys.readouterr().out
