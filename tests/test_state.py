"""Unit and property tests for State/StateSpace and the error hierarchy."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

import repro.errors as errors
from repro.state import State, StateSpace


class TestState:
    def test_attribute_and_item_access(self):
        s = State(n_models=3, n_cameras=2)
        assert s.n_models == 3 and s["n_cameras"] == 2

    def test_mapping_protocol(self):
        s = State(b=2, a=1)
        assert dict(s) == {"a": 1, "b": 2}
        assert len(s) == 2 and "a" in s

    def test_immutability(self):
        s = State(n_models=1)
        with pytest.raises(AttributeError):
            s.n_models = 2  # type: ignore[misc]

    def test_equality_ignores_kwarg_order(self):
        assert State(a=1, b=2) == State(b=2, a=1)
        assert hash(State(a=1, b=2)) == hash(State(b=2, a=1))

    def test_usable_as_dict_key(self):
        d = {State(n_models=4): "x"}
        assert d[State(n_models=4)] == "x"

    def test_replace(self):
        s = State(n_models=1)
        t = s.replace(n_models=2, extra=True)
        assert t.n_models == 2 and t.extra is True
        assert s.n_models == 1  # original untouched

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            State()

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            State(a=1).b

    @given(st.integers(-100, 100), st.integers(-100, 100))
    def test_equality_iff_same_values(self, a, b):
        assert (State(x=a) == State(x=b)) == (a == b)


class TestStateSpace:
    def test_range(self):
        space = StateSpace.range("n_models", 1, 5)
        assert len(space) == 5
        assert space[0] == State(n_models=1)
        assert space.index(State(n_models=3)) == 2

    def test_product(self):
        space = StateSpace.product(a=[1, 2], b=["x", "y"])
        assert len(space) == 4
        assert State(a=2, b="x") in space

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StateSpace([])
        with pytest.raises(ValueError):
            StateSpace.range("m", 5, 4)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            StateSpace([State(a=1), State(a=1)])

    def test_membership(self):
        space = StateSpace.range("n_models", 1, 3)
        assert State(n_models=2) in space
        assert State(n_models=9) not in space


class TestErrorHierarchy:
    """Every library error must be catchable as ReproError."""

    @pytest.mark.parametrize(
        "exc",
        [
            errors.SimulationError,
            errors.SimTimeError,
            errors.SimDeadlock,
            errors.ProcessError,
            errors.ClusterError,
            errors.GraphError,
            errors.DuplicateNameError,
            errors.UnknownNameError,
            errors.CycleError,
            errors.CostModelError,
            errors.STMError,
            errors.ChannelClosed,
            errors.DuplicateTimestamp,
            errors.ItemConsumed,
            errors.ConnectionError_,
            errors.ScheduleError,
            errors.InvalidSchedule,
            errors.InfeasibleSchedule,
            errors.RegimeError,
            errors.DecompositionError,
            errors.ExperimentError,
        ],
    )
    def test_subclass_of_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_deadlock_message_lists_blocked(self):
        e = errors.SimDeadlock(["taskA", "taskB"])
        assert "taskA" in str(e) and "taskB" in str(e)

    def test_item_unavailable_carries_neighbours(self):
        e = errors.ItemUnavailable(5, below=3, above=8)
        assert (e.timestamp, e.below, e.above) == (5, 3, 8)
        assert issubclass(errors.ItemUnavailable, errors.STMError)

    def test_unknown_name_reads_cleanly(self):
        # KeyError subclass, but str() must not add quotes.
        e = errors.UnknownNameError("no task named 'x'")
        assert str(e) == "no task named 'x'"


class TestReportFormatter:
    def test_alignment_and_floats(self):
        from repro.experiments.report import format_table

        text = format_table(["name", "value"], [["a", 1.23456], ["bbbb", 7]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in text  # floats rendered to 3 decimals
        assert "bbbb" in text

    def test_title_and_empty_rows(self):
        from repro.experiments.report import format_table

        text = format_table(["h"], [], title="T")
        assert text.splitlines()[0] == "T"


class TestExperimentsCLI:
    def test_table1_via_cli(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1 reproduction" in out and "shape holds: True" in out

    def test_unknown_experiment_rejected(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_quick_figure5(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["figure5", "--quick"]) == 0
        assert "latency ordering" in capsys.readouterr().out
