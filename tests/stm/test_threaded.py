"""Unit tests for the thread-safe blocking STM channel."""

from __future__ import annotations

import threading

import pytest

from repro.stm.channel import NEWEST
from repro.stm.threaded import ChannelPoisoned, ThreadedChannel


class TestBlockingGet:
    def test_get_blocks_until_put(self, wait_until):
        chan = ThreadedChannel("c")
        out = chan.attach_output("p")
        inp = chan.attach_input("q")
        result = []

        def consumer():
            result.append(chan.get(inp, 0, timeout=5.0))

        t = threading.Thread(target=consumer)
        t.start()
        wait_until(lambda: chan.waiting_threads == 1)
        chan.put(out, 0, "hello")
        t.join(timeout=5.0)
        assert result == [(0, "hello")]

    def test_get_timeout(self):
        chan = ThreadedChannel("c")
        inp = chan.attach_input("q")
        with pytest.raises(TimeoutError):
            chan.get(inp, 0, timeout=0.05)

    def test_try_get(self):
        chan = ThreadedChannel("c")
        out = chan.attach_output("p")
        inp = chan.attach_input("q")
        assert chan.try_get(inp, NEWEST) is None
        chan.put(out, 3, "x")
        assert chan.try_get(inp, NEWEST) == (3, "x")


class TestBlockingPut:
    def test_put_blocks_at_capacity(self, wait_until):
        chan = ThreadedChannel("c", capacity=1)
        out = chan.attach_output("p")
        inp = chan.attach_input("q")
        chan.put(out, 0, "a")
        unblocked = []

        def producer():
            chan.put(out, 1, "b", timeout=5.0)
            unblocked.append(True)

        t = threading.Thread(target=producer)
        t.start()
        wait_until(lambda: chan.waiting_threads == 1)
        assert not unblocked
        chan.get(inp, 0)
        chan.consume(inp, 0)  # consume + GC frees the slot
        t.join(timeout=5.0)
        assert unblocked == [True]

    def test_put_timeout_when_full(self):
        chan = ThreadedChannel("c", capacity=1)
        out = chan.attach_output("p")
        chan.attach_input("q")  # an input conn exists, but never consumes
        chan.put(out, 0, "a")
        with pytest.raises(TimeoutError):
            chan.put(out, 1, "b", timeout=0.05)


class TestPoison:
    def test_poison_wakes_blocked_getter(self, wait_until):
        chan = ThreadedChannel("c")
        inp = chan.attach_input("q")
        seen = []

        def consumer():
            try:
                chan.get(inp, 0, timeout=5.0)
            except ChannelPoisoned:
                seen.append("poisoned")

        t = threading.Thread(target=consumer)
        t.start()
        wait_until(lambda: chan.waiting_threads == 1)
        chan.poison()
        t.join(timeout=5.0)
        assert seen == ["poisoned"]

    def test_operations_after_poison_raise(self):
        chan = ThreadedChannel("c")
        out = chan.attach_output("p")
        chan.poison()
        with pytest.raises(ChannelPoisoned):
            chan.put(out, 0, "x")


class TestConcurrency:
    def test_pipeline_of_three_threads(self):
        """producer -> relay -> consumer, 50 items, in order."""
        a = ThreadedChannel("a")
        b = ThreadedChannel("b")
        pa = a.attach_output("prod")
        ra = a.attach_input("relay")
        rb = b.attach_output("relay")
        cb = b.attach_input("cons")
        N = 50
        received = []

        def producer():
            for ts in range(N):
                a.put(pa, ts, ts * 2, timeout=10.0)

        def relay():
            for ts in range(N):
                _, v = a.get(ra, ts, timeout=10.0)
                b.put(rb, ts, v + 1, timeout=10.0)
                a.consume(ra, ts)

        def consumer():
            for ts in range(N):
                _, v = b.get(cb, ts, timeout=10.0)
                received.append(v)
                b.consume(cb, ts)

        threads = [threading.Thread(target=f) for f in (producer, relay, consumer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert received == [ts * 2 + 1 for ts in range(N)]
        # Everything consumed -> everything collected.
        assert a.stats["collected"] == N
        assert b.stats["collected"] == N
