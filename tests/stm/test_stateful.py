"""Model-based stateful tests for the STM channel (hypothesis).

A reference model (plain dicts) shadows every operation on the real
channel; invariants are checked after each step:

* live timestamps match the model exactly;
* an item is collectible iff every attached input connection has consumed
  it (directly or via a later consume);
* counters never decrease; neighbour queries agree with the model.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.errors import DuplicateTimestamp, ItemConsumed, ItemUnavailable
from repro.stm.channel import NEWEST, STMChannel
from repro.stm.gc import collect_channel


class STMMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.chan = STMChannel("model-test")
        self.out = self.chan.attach_output("producer")
        self.inputs = [self.chan.attach_input(f"consumer{i}") for i in range(2)]
        # Model: ts -> set of conn indices that consumed it; per-conn
        # virtual time (everything below it is dead to that connection).
        self.model: dict[int, set[int]] = {}
        self.collected: set[int] = set()
        self.vt = [0, 0]

    @rule(ts=st.integers(0, 30))
    def put(self, ts):
        if ts in self.model:
            try:
                self.chan.put(self.out, ts, ts)
                raise AssertionError("duplicate accepted")
            except DuplicateTimestamp:
                return
        self.chan.put(self.out, ts, ts)
        # A late put is born consumed for connections already past it.
        self.model[ts] = {c for c in (0, 1) if self.vt[c] > ts}

    @rule(ts=st.integers(0, 30), conn=st.integers(0, 1))
    def get_exact(self, ts, conn):
        try:
            got_ts, value = self.chan.get(self.inputs[conn], ts)
            assert got_ts == ts and value == ts
            assert ts in self.model and conn not in self.model[ts]
        except ItemUnavailable:
            assert ts not in self.model
        except ItemConsumed:
            assert conn in self.model[ts]

    @rule(conn=st.integers(0, 1))
    def get_newest(self, conn):
        visible = sorted(t for t, c in self.model.items() if conn not in c)
        try:
            got_ts, _ = self.chan.get(self.inputs[conn], NEWEST)
            assert visible and got_ts == visible[-1]
        except ItemUnavailable:
            assert not visible

    @rule(ts=st.integers(0, 30), conn=st.integers(0, 1))
    def consume(self, ts, conn):
        self.chan.consume(self.inputs[conn], ts)
        self.vt[conn] = max(self.vt[conn], ts + 1)
        for t in list(self.model):
            if t <= ts:
                self.model[t].add(conn)

    @rule()
    def gc(self):
        n = collect_channel(self.chan)
        dead = {t for t, consumers in self.model.items() if consumers == {0, 1}}
        assert n == len(dead)
        for t in dead:
            del self.model[t]
            self.collected.add(t)
        # A collected timestamp may legitimately be re-put later; the
        # model allows it by simply removing the entry.

    @invariant()
    def live_timestamps_match_model(self):
        assert self.chan.timestamps() == sorted(self.model)

    @invariant()
    def collectible_matches_model(self):
        expected = sorted(
            t for t, consumers in self.model.items() if consumers == {0, 1}
        )
        assert self.chan.collectible() == expected

    @invariant()
    def neighbours_consistent(self):
        live = sorted(self.model)
        if live:
            mid = live[len(live) // 2]
            below, above = self.chan.neighbours(mid)
            idx = live.index(mid)
            assert below == (live[idx - 1] if idx > 0 else None)
            assert above == (live[idx + 1] if idx + 1 < len(live) else None)


STMMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
TestSTMStateful = STMMachine.TestCase
