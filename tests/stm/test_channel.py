"""Unit tests for the STM channel API (Figures 7-8)."""

from __future__ import annotations

import pytest

from repro.errors import (
    ChannelClosed,
    ConnectionError_,
    DuplicateTimestamp,
    ItemConsumed,
    ItemUnavailable,
    STMError,
)
from repro.stm.channel import NEWEST, NEWEST_UNSEEN, OLDEST, STMChannel


@pytest.fixture
def chan():
    return STMChannel("c")


@pytest.fixture
def wired(chan):
    out = chan.attach_output("producer")
    inp = chan.attach_input("consumer")
    return chan, out, inp


class TestPut:
    def test_out_of_order_puts_allowed(self, wired):
        chan, out, inp = wired
        chan.put(out, 5, "five")
        chan.put(out, 2, "two")   # "items can be put in any order"
        assert chan.timestamps() == [2, 5]

    def test_duplicate_timestamp_rejected(self, wired):
        chan, out, _ = wired
        chan.put(out, 1, "a")
        with pytest.raises(DuplicateTimestamp):
            chan.put(out, 1, "b")

    def test_put_over_input_connection_rejected(self, wired):
        chan, _, inp = wired
        with pytest.raises(ConnectionError_):
            chan.put(inp, 0, "x")

    def test_put_after_close_rejected(self, wired):
        chan, out, _ = wired
        chan.close()
        with pytest.raises(ChannelClosed):
            chan.put(out, 0, "x")

    def test_put_beyond_capacity_rejected(self):
        chan = STMChannel("c", capacity=1)
        out = chan.attach_output("p")
        chan.put(out, 0, "a")
        assert chan.is_full
        with pytest.raises(STMError):
            chan.put(out, 1, "b")

    def test_non_integer_timestamp_rejected(self, wired):
        chan, out, _ = wired
        with pytest.raises(STMError):
            chan.put(out, 1.5, "x")  # type: ignore[arg-type]


class TestGet:
    def test_exact(self, wired):
        chan, out, inp = wired
        chan.put(out, 3, "v")
        assert chan.get(inp, 3) == (3, "v")

    def test_newest_oldest(self, wired):
        chan, out, inp = wired
        for ts in (1, 5, 3):
            chan.put(out, ts, ts * 10)
        assert chan.get(inp, NEWEST) == (5, 50)
        assert chan.get(inp, OLDEST) == (1, 10)

    def test_newest_unseen_skips_gotten(self, wired):
        chan, out, inp = wired
        chan.put(out, 1, "a")
        chan.put(out, 2, "b")
        assert chan.get(inp, NEWEST_UNSEEN) == (2, "b")
        # 2 has now been gotten over a connection; 1 is the newest unseen.
        assert chan.get(inp, NEWEST_UNSEEN) == (1, "a")
        with pytest.raises(ItemUnavailable):
            chan.get(inp, NEWEST_UNSEEN)

    def test_miss_reports_neighbours(self, wired):
        chan, out, inp = wired
        chan.put(out, 1, "a")
        chan.put(out, 5, "b")
        with pytest.raises(ItemUnavailable) as exc:
            chan.get(inp, 3)
        assert exc.value.below == 1 and exc.value.above == 5

    def test_miss_on_empty_channel(self, wired):
        chan, _, inp = wired
        with pytest.raises(ItemUnavailable) as exc:
            chan.get(inp, NEWEST)
        assert exc.value.below is None and exc.value.above is None

    def test_get_over_output_connection_rejected(self, wired):
        chan, out, _ = wired
        with pytest.raises(ConnectionError_):
            chan.get(out, NEWEST)

    def test_get_does_not_remove(self, wired):
        chan, out, inp = wired
        chan.put(out, 0, "x")
        chan.get(inp, 0)
        assert chan.holds(0)

    def test_get_consumed_item_rejected(self, wired):
        chan, out, inp = wired
        chan.put(out, 0, "x")
        chan.consume(inp, 0)
        with pytest.raises(ItemConsumed):
            chan.get(inp, 0)

    def test_last_gotten_tracked(self, wired):
        chan, out, inp = wired
        chan.put(out, 7, "x")
        chan.get(inp, NEWEST)
        assert inp.last_gotten == 7

    def test_detached_connection_rejected(self, wired):
        chan, out, inp = wired
        chan.detach(inp)
        with pytest.raises(ConnectionError_):
            chan.get(inp, NEWEST)


class TestConsume:
    def test_consume_marks_older_items_too(self, wired):
        chan, out, inp = wired
        for ts in range(5):
            chan.put(out, ts, ts)
        chan.consume(inp, 3)
        collectible = chan.collectible()
        assert collectible == [0, 1, 2, 3]

    def test_virtual_time_advances_monotonically(self, wired):
        chan, out, inp = wired
        chan.put(out, 5, "x")
        chan.consume(inp, 5)
        assert inp.virtual_time == 6
        chan.consume(inp, 2)  # earlier consume cannot move VT back
        assert inp.virtual_time == 6

    def test_consume_of_absent_timestamp_is_allowed(self, wired):
        chan, out, inp = wired
        chan.put(out, 4, "x")
        chan.consume(inp, 10)   # declares everything <= 10 dead
        assert chan.collectible() == [4]


class TestNeighbours:
    def test_present_timestamp(self, wired):
        chan, out, _ = wired
        for ts in (1, 3, 5):
            chan.put(out, ts, None)
        assert chan.neighbours(3) == (1, 5)

    def test_absent_timestamp(self, wired):
        chan, out, _ = wired
        for ts in (1, 5):
            chan.put(out, ts, None)
        assert chan.neighbours(3) == (1, 5)
        assert chan.neighbours(0) == (None, 1)
        assert chan.neighbours(9) == (5, None)


class TestAccounting:
    def test_counters(self, wired):
        chan, out, inp = wired
        chan.put(out, 0, "x")
        chan.get(inp, 0)
        chan.consume(inp, 0)
        assert chan.total_puts == 1
        assert chan.total_gets == 1
        assert chan.total_consumed == 1

    def test_live_bytes(self, wired):
        chan, out, _ = wired
        chan.put(out, 0, "x", size=100)
        chan.put(out, 1, "y", size=50)
        assert chan.live_bytes() == 150

    def test_input_conn_ids(self, chan):
        i1 = chan.attach_input("a")
        chan.attach_output("b")
        i2 = chan.attach_input("c")
        assert chan.input_conn_ids() == {i1.conn_id, i2.conn_id}
