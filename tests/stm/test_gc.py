"""Unit tests for STM garbage collection and the registry."""

from __future__ import annotations

import pytest

from repro.errors import DuplicateNameError, STMError, UnknownNameError
from repro.graph.builders import chain_graph
from repro.stm.channel import STMChannel
from repro.stm.gc import GCStats, collect_all, collect_channel
from repro.stm.registry import STMRegistry


class TestCollect:
    def test_item_lives_until_all_inputs_consume(self):
        chan = STMChannel("c")
        out = chan.attach_output("p")
        a = chan.attach_input("a")
        b = chan.attach_input("b")
        chan.put(out, 0, "x", size=10)
        chan.consume(a, 0)
        assert collect_channel(chan) == 0
        chan.consume(b, 0)
        assert collect_channel(chan) == 1
        assert len(chan) == 0

    def test_no_inputs_means_nothing_collectible(self):
        chan = STMChannel("c")
        out = chan.attach_output("p")
        chan.put(out, 0, "x")
        assert collect_channel(chan) == 0

    def test_detach_releases_obligation(self):
        chan = STMChannel("c")
        out = chan.attach_output("p")
        a = chan.attach_input("a")
        b = chan.attach_input("b")
        chan.put(out, 0, "x")
        chan.consume(a, 0)
        chan.detach(b)  # b's obligation disappears with it
        assert collect_channel(chan) == 1

    def test_skipped_frames_freed_by_implicit_consume(self):
        """A consumer that jumps to the newest frame frees the skipped ones."""
        chan = STMChannel("c")
        out = chan.attach_output("p")
        inp = chan.attach_input("q")
        for ts in range(10):
            chan.put(out, ts, ts)
        chan.get(inp, 9)
        chan.consume(inp, 9)
        assert collect_channel(chan) == 10

    def test_stats_track_high_water_and_bytes(self):
        chan = STMChannel("c")
        out = chan.attach_output("p")
        inp = chan.attach_input("q")
        stats = GCStats()
        for ts in range(4):
            chan.put(out, ts, ts, size=100)
        chan.consume(inp, 3)
        collected = collect_channel(chan, stats)
        assert collected == 4
        assert stats.high_water_items == 4
        assert stats.high_water_bytes == 400
        assert stats.bytes_freed == 400
        assert stats.calls == 1

    def test_collect_all(self):
        chans = []
        for i in range(3):
            c = STMChannel(f"c{i}")
            o = c.attach_output("p")
            q = c.attach_input("q")
            c.put(o, 0, "x")
            c.consume(q, 0)
            chans.append(c)
        assert collect_all(chans) == 3


class TestRegistry:
    def test_create_and_lookup(self):
        reg = STMRegistry()
        reg.create("a", capacity=2)
        assert "a" in reg and reg.channel("a").capacity == 2

    def test_duplicate_rejected(self):
        reg = STMRegistry()
        reg.create("a")
        with pytest.raises(DuplicateNameError):
            reg.create("a")

    def test_unknown_rejected(self):
        with pytest.raises(UnknownNameError):
            STMRegistry().channel("ghost")

    def test_home_nodes(self):
        reg = STMRegistry(nodes=2)
        reg.create("a", home_node=1)
        assert reg.home_node("a") == 1
        with pytest.raises(STMError):
            reg.create("b", home_node=5)

    def test_from_graph(self):
        g = chain_graph([1.0, 1.0, 1.0])
        reg = STMRegistry.from_graph(g)
        assert len(reg) == 2 and "c0" in reg and "c1" in reg

    def test_live_accounting(self):
        reg = STMRegistry()
        c = reg.create("a")
        out = c.attach_output("p")
        c.put(out, 0, "x", size=64)
        assert reg.live_bytes() == 64 and reg.live_items() == 1
