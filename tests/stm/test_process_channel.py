"""Unit tests for the process-substrate STM transport (broker + proxy).

The broker's service thread owns real :class:`~repro.stm.channel.STMChannel`
objects, so most semantics tests can run the worker-side
:class:`~repro.stm.process.ProcessChannel` proxy in the parent process over
an in-process :class:`~repro.stm.process.WorkerLink` — the wire protocol is
exercised end to end without forking.  One test forks for real to cover the
cross-process shared-memory path.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import ItemConsumed
from repro.stm.channel import NEWEST
from repro.stm.process import (
    SHM_THRESHOLD_BYTES,
    ChannelBroker,
    ProcessChannel,
    ShmRing,
    WorkerLink,
    _mp_context,
    decode_value,
    encode_value,
)
from repro.stm.threaded import ChannelPoisoned


@pytest.fixture(autouse=True)
def _pinned_shm_threshold(monkeypatch):
    """Pin the pickle/shm crossover: these tests assert which transport a
    given payload size takes, so the host micro-calibration must not
    decide it."""
    monkeypatch.setenv("REPRO_SHM_THRESHOLD", str(SHM_THRESHOLD_BYTES))


class Rig:
    """One broker + one in-parent proxy link, with conns pre-attached."""

    def __init__(self, capacity=None):
        self.broker = ChannelBroker({"c": capacity})
        self.out = self.broker.attach_output("c", "prod")
        self.inp = self.broker.attach_input("c", "cons")
        replies = self.broker.register_worker(1)
        self.broker.start()
        self.link = WorkerLink(1, self.broker.requests, replies)
        self.link.start()
        self.chan = ProcessChannel("c", self.link)

    def close(self):
        self.link.stop()
        self.chan.close()
        self.broker.stop()


@pytest.fixture
def rig():
    r = Rig()
    yield r
    r.close()


@pytest.fixture
def bounded():
    r = Rig(capacity=1)
    yield r
    r.close()


class TestEncoding:
    def test_small_values_pickle(self):
        ring = ShmRing()
        enc = encode_value({"k": [1, 2]}, ring, 0)
        assert enc[0] == "pickle"
        assert decode_value(enc) == {"k": [1, 2]}
        assert ring.created == 0

    def test_large_arrays_ride_shared_memory(self):
        ring = ShmRing()
        arr = np.arange(SHM_THRESHOLD_BYTES, dtype=np.uint8).reshape(64, -1)
        try:
            enc = encode_value(arr, ring, 0)
            assert enc[0] == "shm"
            out = decode_value(enc)
            np.testing.assert_array_equal(out, arr)
            assert out.flags.owndata  # copied out: safe after segment closes
        finally:
            ring.release([0])
            ring.close()
        assert ring.created == 1

    def test_ring_recycles_released_segments(self):
        ring = ShmRing()
        try:
            for ts in range(4):
                encode_value(np.zeros(8192, dtype=np.uint8), ring, ts)
                ring.release([ts])
            assert ring.created == 1
            assert ring.recycled == 3
        finally:
            ring.close()


class TestProxyRoundtrip:
    def test_put_get_consume(self, rig):
        rig.chan.put(rig.out, 0, {"v": 7})
        ts, value = rig.chan.get(rig.inp, 0, timeout=5.0)
        assert (ts, value) == (0, {"v": 7})
        rig.chan.consume(rig.inp, 0)
        stats = rig.broker.stats()["c"]
        assert stats["puts"] == 1
        assert stats["consumed"] == 1
        assert stats["collected"] == 1

    def test_newest_wildcard(self, rig):
        rig.chan.put(rig.out, 0, "a")
        rig.chan.put(rig.out, 3, "b")
        assert rig.chan.get(rig.inp, NEWEST, timeout=5.0) == (3, "b")

    def test_try_get_miss_on_empty(self, rig):
        assert rig.chan.try_get(rig.inp, 0) is None

    def test_try_get_born_consumed_is_miss(self, rig):
        """Same rule as ThreadedChannel / hub: consumed ts is a miss."""
        rig.chan.put(rig.out, 0, "x")
        rig.chan.get(rig.inp, 0, timeout=5.0)
        rig.chan.consume(rig.inp, 0)
        assert rig.chan.try_get(rig.inp, 0) is None

    def test_get_of_consumed_ts_raises(self, rig):
        # A second input conn keeps the item alive past conn 1's consume,
        # so the blocking get sees "consumed" (an error), not "missing".
        rig.broker.attach_input("c", "other")
        rig.chan.put(rig.out, 0, "x")
        rig.chan.get(rig.inp, 0, timeout=5.0)
        rig.chan.consume(rig.inp, 0)
        with pytest.raises(ItemConsumed):
            rig.chan.get(rig.inp, 0, timeout=1.0)

    def test_blocked_get_unblocks_on_put(self, rig, wait_until):
        got = []
        t = threading.Thread(
            target=lambda: got.append(rig.chan.get(rig.inp, 0, timeout=5.0))
        )
        t.start()
        # The waiter parks inside the broker once the request arrives.
        wait_until(lambda: rig.broker.channels["c"].waiters)
        assert not got
        rig.chan.put(rig.out, 0, "late")
        t.join(timeout=5.0)
        assert got == [(0, "late")]

    def test_get_timeout(self, rig):
        with pytest.raises(TimeoutError):
            rig.chan.get(rig.inp, 0, timeout=0.05)

    def test_shm_payload_roundtrip(self, rig):
        arr = np.random.default_rng(0).random((64, 64))
        rig.chan.put(rig.out, 0, arr)
        ts, out = rig.chan.get(rig.inp, 0, timeout=5.0)
        np.testing.assert_array_equal(out, arr)
        rig.chan.consume(rig.inp, 0)

    def test_put_replies_feed_ring_recycling(self, rig):
        for ts in range(6):
            rig.chan.put(rig.out, ts, np.zeros((64, 64)))
            rig.chan.get(rig.inp, ts, timeout=5.0)
            rig.chan.consume(rig.inp, ts)
        # Each put reply returns the previously collected timestamps, so
        # the producer-side ring reuses segments instead of growing.
        assert rig.chan._ring.recycled >= 4
        assert rig.chan._ring.created <= 2


class TestCapacityAndPoison:
    def test_put_blocks_then_unblocks(self, bounded, wait_until):
        bounded.chan.put(bounded.out, 0, "a")
        done = []
        t = threading.Thread(
            target=lambda: done.append(
                bounded.chan.put(bounded.out, 1, "b", timeout=5.0)
            )
        )
        t.start()
        wait_until(lambda: bounded.broker.channels["c"].waiters)
        assert not done
        bounded.chan.get(bounded.inp, 0, timeout=5.0)
        bounded.chan.consume(bounded.inp, 0)
        t.join(timeout=5.0)
        assert len(done) == 1

    def test_put_timeout_when_full(self, bounded):
        bounded.chan.put(bounded.out, 0, "a")
        with pytest.raises(TimeoutError):
            bounded.chan.put(bounded.out, 1, "b", timeout=0.05)

    def test_poison_wakes_blocked_getter(self, rig):
        seen = []

        def getter():
            try:
                rig.chan.get(rig.inp, 0, timeout=5.0)
            except ChannelPoisoned:
                seen.append("poisoned")

        t = threading.Thread(target=getter)
        t.start()
        rig.broker.poison_all()
        t.join(timeout=5.0)
        assert seen == ["poisoned"]

    def test_operations_after_poison_raise(self, rig):
        rig.broker.poison_all()
        with pytest.raises(ChannelPoisoned):
            rig.chan.put(rig.out, 0, "x")


def _child_producer(requests, replies, conn_out):
    link = WorkerLink(7, requests, replies)
    link.start()
    chan = ProcessChannel("c", link)
    for ts in range(3):
        chan.put(conn_out, ts, np.full((64, 64), float(ts)), timeout=10.0)
    link.notify("done", {})
    link.stop()
    import os

    requests.close()
    requests.join_thread()
    os._exit(0)


class TestCrossProcess:
    def test_fork_producer_parent_consumer(self):
        broker = ChannelBroker({"c": 8})
        conn_out = broker.attach_output("c", "prod")
        conn_in = broker.attach_input("c", "cons")
        child_replies = broker.register_worker(7)
        broker.start()
        replies = broker.register_worker(0)
        link = WorkerLink(0, broker.requests, replies)
        link.start()
        try:
            ctx = _mp_context()
            p = ctx.Process(
                target=_child_producer,
                args=(broker.requests, child_replies, conn_out),
            )
            p.start()
            chan = ProcessChannel("c", link)
            for ts in range(3):
                got_ts, val = chan.get(conn_in, ts, timeout=10.0)
                assert got_ts == ts
                assert val[0, 0] == float(ts)
                chan.consume(conn_in, ts)
            p.join(10.0)
            assert p.exitcode == 0
            stats = broker.stats()["c"]
            assert stats["puts"] == 3
            assert stats["collected"] == 3
        finally:
            link.stop()
            broker.stop()
