"""Unit tests for broker round-trip coalescing and shm calibration.

The ``step`` op batches one frame's consumes + puts + gets into a single
broker request.  Its contract: byte-identical STM effects to issuing the
ops one by one (same counters, same errors), with consumes applied
immediately on first dispatch — even while the step's puts or gets are
parked — so coalescing can never withhold capacity and deadlock a
bounded pipeline.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import DuplicateTimestamp, ItemConsumed, STMError
from repro.stm.process import (
    SHM_THRESHOLD_BYTES,
    ChannelBroker,
    ProcessChannel,
    ShmRing,
    StepBatch,
    WorkerLink,
    calibrate_shm_threshold,
    encode_value,
    resolve_shm_threshold,
)
from repro.stm.threaded import ChannelPoisoned


@pytest.fixture(autouse=True)
def _pinned_shm_threshold(monkeypatch):
    """Pin the pickle/shm crossover so transport choice is deterministic."""
    monkeypatch.setenv("REPRO_SHM_THRESHOLD", str(SHM_THRESHOLD_BYTES))


class Rig:
    """Broker + one in-parent link over two channels ``a`` -> ``b``."""

    def __init__(self, capacity=None):
        self.broker = ChannelBroker({"a": capacity, "b": capacity})
        self.out = {ch: self.broker.attach_output(ch, "prod")
                    for ch in ("a", "b")}
        self.inp = {ch: self.broker.attach_input(ch, "cons")
                    for ch in ("a", "b")}
        replies = self.broker.register_worker(1)
        self.broker.start()
        self.link = WorkerLink(1, self.broker.requests, replies)
        self.link.start()
        self.chans = {ch: ProcessChannel(ch, self.link) for ch in ("a", "b")}

    def batch(self, replay=False) -> StepBatch:
        return StepBatch(self.link, replay=replay)

    def close(self):
        self.link.stop()
        for ch in self.chans.values():
            ch.close()
        self.broker.stop()


@pytest.fixture
def rig():
    r = Rig()
    yield r
    r.close()


@pytest.fixture
def bounded():
    r = Rig(capacity=1)
    yield r
    r.close()


class TestStepSemantics:
    def test_put_and_get_in_one_roundtrip(self, rig):
        batch = rig.batch()
        batch.put(rig.chans["a"], rig.out["a"], 0, {"v": 7})
        batch.get(rig.chans["a"], rig.inp["a"], 0)
        got = batch.commit(timeout=5.0)
        assert got == [(0, {"v": 7})]
        assert rig.broker.op_counts["step"] == 1
        assert "put" not in rig.broker.op_counts
        assert "get" not in rig.broker.op_counts
        stats = rig.broker.stats()["a"]
        assert (stats["puts"], stats["gets"]) == (1, 1)

    def test_results_in_queue_order_across_channels(self, rig):
        batch = rig.batch()
        batch.put(rig.chans["a"], rig.out["a"], 0, "va")
        batch.put(rig.chans["b"], rig.out["b"], 0, "vb")
        batch.get(rig.chans["b"], rig.inp["b"], 0)
        batch.get(rig.chans["a"], rig.inp["a"], 0)
        assert batch.commit(timeout=5.0) == [(0, "vb"), (0, "va")]

    def test_commit_clears_batch_for_reuse(self, rig):
        batch = rig.batch()
        batch.put(rig.chans["a"], rig.out["a"], 0, "x")
        batch.commit(timeout=5.0)
        assert len(batch) == 0
        assert batch.commit(timeout=5.0) == []  # empty batch: no round trip
        assert rig.broker.op_counts["step"] == 1

    def test_wildcard_get_rejected(self, rig):
        from repro.stm.channel import NEWEST

        batch = rig.batch()
        with pytest.raises(STMError, match="exact timestamps"):
            batch.get(rig.chans["a"], rig.inp["a"], NEWEST)

    def test_parked_step_completes_on_later_put(self, rig, wait_until):
        got = []

        def committer():
            batch = rig.batch()
            batch.get(rig.chans["a"], rig.inp["a"], 0)
            got.extend(batch.commit(timeout=5.0))

        t = threading.Thread(target=committer)
        t.start()
        wait_until(lambda: rig.broker._steps)
        assert not got
        rig.chans["a"].put(rig.out["a"], 0, "late")
        t.join(timeout=5.0)
        assert got == [(0, "late")]

    def test_consumes_apply_while_step_is_parked(self, rig, wait_until):
        """The deadlock-freedom guarantee: a parked step's consumes have
        already landed, releasing items (and capacity) to other tasks."""
        rig.chans["a"].put(rig.out["a"], 0, "x")
        rig.chans["a"].get(rig.inp["a"], 0, timeout=5.0)

        def committer():
            batch = rig.batch()
            batch.consume(rig.chans["a"], rig.inp["a"], 0)
            batch.get(rig.chans["b"], rig.inp["b"], 0)  # parks: b is empty
            batch.commit(timeout=5.0)

        t = threading.Thread(target=committer)
        t.start()
        wait_until(lambda: rig.broker._steps)
        # Step is parked on the get, but the consume already happened.
        assert rig.broker.stats()["a"]["consumed"] == 1
        rig.chans["b"].put(rig.out["b"], 0, "unblock")
        t.join(timeout=5.0)

    def test_self_unblocking_put_after_consume(self, bounded):
        """One step both frees capacity-1 channel ``a`` (consume ts=0)
        and refills it (put ts=1) — the per-op loop's frame pattern."""
        bounded.chans["a"].put(bounded.out["a"], 0, "v0")
        bounded.chans["a"].get(bounded.inp["a"], 0, timeout=5.0)
        batch = bounded.batch()
        batch.consume(bounded.chans["a"], bounded.inp["a"], 0)
        batch.put(bounded.chans["a"], bounded.out["a"], 1, "v1")
        batch.get(bounded.chans["a"], bounded.inp["a"], 1)
        assert batch.commit(timeout=5.0) == [(1, "v1")]

    def test_step_timeout(self, rig):
        batch = rig.batch()
        batch.get(rig.chans["a"], rig.inp["a"], 0)
        with pytest.raises(TimeoutError):
            batch.commit(timeout=0.05)
        assert not rig.broker._steps  # expired step was reaped

    def test_step_against_poisoned_channel(self, rig):
        rig.broker.poison_all()
        batch = rig.batch()
        batch.put(rig.chans["a"], rig.out["a"], 0, "x")
        with pytest.raises(ChannelPoisoned):
            batch.commit(timeout=5.0)

    def test_poison_wakes_parked_step(self, rig, wait_until):
        seen = []

        def committer():
            batch = rig.batch()
            batch.get(rig.chans["a"], rig.inp["a"], 0)
            try:
                batch.commit(timeout=5.0)
            except ChannelPoisoned:
                seen.append("poisoned")

        t = threading.Thread(target=committer)
        t.start()
        wait_until(lambda: rig.broker._steps)
        rig.broker.poison_all()
        t.join(timeout=5.0)
        assert seen == ["poisoned"]

    def test_duplicate_put_raises_without_replay(self, rig):
        rig.chans["a"].put(rig.out["a"], 0, "x")
        batch = rig.batch()
        batch.put(rig.chans["a"], rig.out["a"], 0, "again")
        with pytest.raises(DuplicateTimestamp):
            batch.commit(timeout=5.0)

    def test_duplicate_put_idempotent_with_replay(self, rig):
        """Respawned workers replay their frame steps; puts must land
        exactly once."""
        rig.chans["a"].put(rig.out["a"], 0, "x")
        batch = rig.batch(replay=True)
        batch.put(rig.chans["a"], rig.out["a"], 0, "x")
        batch.get(rig.chans["a"], rig.inp["a"], 0)
        assert batch.commit(timeout=5.0) == [(0, "x")]
        assert rig.broker.stats()["a"]["puts"] == 1

    def test_get_of_consumed_ts_is_error(self, rig):
        # Second input conn keeps the item alive past cons's consume, so
        # the step's get sees "consumed" (an error), not "missing".
        rig.broker.attach_input("a", "other")
        rig.chans["a"].put(rig.out["a"], 0, "x")
        rig.chans["a"].get(rig.inp["a"], 0, timeout=5.0)
        rig.chans["a"].consume(rig.inp["a"], 0)
        batch = rig.batch()
        batch.get(rig.chans["a"], rig.inp["a"], 0)
        with pytest.raises(ItemConsumed):
            batch.commit(timeout=1.0)

    def test_freed_feed_recycles_shm_segments(self, rig):
        """Step replies carry the collected-timestamp feed, so producer
        rings reuse segments exactly like per-op put replies."""
        arr = np.zeros((64, 64))
        for ts in range(6):
            batch = rig.batch()
            if ts > 0:
                batch.consume(rig.chans["a"], rig.inp["a"], ts - 1)
            batch.put(rig.chans["a"], rig.out["a"], ts, arr)
            batch.get(rig.chans["a"], rig.inp["a"], ts)
            batch.commit(timeout=5.0)
        assert rig.chans["a"]._ring.recycled >= 3
        assert rig.chans["a"]._ring.created <= 2

    def test_roundtrips_counts_queue_ops_only(self, rig):
        batch = rig.batch()
        batch.put(rig.chans["a"], rig.out["a"], 0, "x")
        batch.get(rig.chans["a"], rig.inp["a"], 0)
        batch.commit(timeout=5.0)
        rig.broker.local_get_blocking("a", rig.broker.attach_input("a", "lo"),
                                      0, timeout=5.0)
        assert rig.broker.roundtrips() == 1
        assert rig.broker.op_counts["local_get"] == 1


class TestLocalCollectorPath:
    def test_local_get_blocking_woken_by_step_put(self, rig):
        conn = rig.broker.attach_input("a", "collector")
        got = []

        def collect():
            got.append(rig.broker.local_get_blocking("a", conn, 0,
                                                     timeout=5.0))

        t = threading.Thread(target=collect)
        t.start()
        batch = rig.batch()
        batch.put(rig.chans["a"], rig.out["a"], 0, "via-step")
        batch.commit(timeout=5.0)
        t.join(timeout=5.0)
        assert got == [(0, "via-step")]
        rig.broker.local_consume("a", conn, 0)
        assert rig.broker.stats()["a"]["consumed"] == 1

    def test_local_get_timeout(self, rig):
        conn = rig.broker.attach_input("a", "collector")
        with pytest.raises(TimeoutError):
            rig.broker.local_get_blocking("a", conn, 0, timeout=0.05)

    def test_local_get_poisoned(self, rig):
        conn = rig.broker.attach_input("a", "collector")
        rig.broker.poison_all()
        with pytest.raises(ChannelPoisoned):
            rig.broker.local_get_blocking("a", conn, 0, timeout=5.0)


class TestShmThreshold:
    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_THRESHOLD", "12345")
        assert resolve_shm_threshold() == 12345

    def test_env_override_floors_at_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_THRESHOLD", "0")
        assert resolve_shm_threshold() == 1

    def test_garbage_env_falls_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_THRESHOLD", "not-a-number")
        assert resolve_shm_threshold() >= 1

    def test_calibration_returns_clamped_bytes(self):
        value = calibrate_shm_threshold(sizes=(1 << 10, 8 << 10),
                                        repeats=1)
        assert (1 << 10) <= value <= (1 << 20)

    def test_threshold_selects_transport(self, monkeypatch):
        arr = np.zeros(8192, dtype=np.uint8)
        ring = ShmRing()
        try:
            monkeypatch.setenv("REPRO_SHM_THRESHOLD", "1024")
            assert encode_value(arr, ring, 0)[0] == "shm"
            ring.release([0])
            monkeypatch.setenv("REPRO_SHM_THRESHOLD", str(1 << 20))
            assert encode_value(arr, ring, 1)[0] == "pickle"
        finally:
            ring.close()

    def test_broker_resolves_threshold_at_init(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_THRESHOLD", "777")
        broker = ChannelBroker({})
        assert broker.shm_threshold == 777
