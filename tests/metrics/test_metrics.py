"""Unit tests for latency/throughput/uniformity metrics and curves."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.graph.builders import chain_graph
from repro.metrics.curves import CurvePoint, dominates, pareto_front, render_curve
from repro.metrics.latency import latency_stats, throughput_from_completions
from repro.metrics.uniformity import uniformity_stats
from repro.runtime.result import ExecutionResult
from repro.sim.trace import TraceRecorder
from repro.state import State


def make_result(digitize: dict, completion: dict, emitted=None, horizon=100.0):
    return ExecutionResult(
        graph=chain_graph([1.0]),
        state=State(n_models=1),
        trace=TraceRecorder(),
        digitize_times=digitize,
        completion_times=completion,
        horizon=horizon,
        emitted=emitted if emitted is not None else len(digitize),
    )


class TestExecutionResult:
    def test_latency_per_timestamp(self):
        r = make_result({0: 1.0, 1: 2.0}, {0: 3.0, 1: 5.5})
        assert r.latency(0) == 2.0 and r.latency(1) == 3.5
        assert r.latency(9) is None

    def test_latencies_ordered_by_timestamp(self):
        r = make_result({0: 0.0, 1: 1.0}, {1: 4.0, 0: 2.0})
        assert r.latencies() == [2.0, 3.0]

    def test_completion_sequence_sorted(self):
        r = make_result({}, {2: 9.0, 0: 1.0, 1: 5.0})
        assert r.completion_sequence() == [1.0, 5.0, 9.0]


class TestLatencyStats:
    def test_basic_stats(self):
        r = make_result(
            {ts: float(ts) for ts in range(4)},
            {ts: float(ts) + 2.0 + 0.1 * ts for ts in range(4)},
        )
        s = latency_stats(r)
        assert s.count == 4
        assert s.minimum == pytest.approx(2.0)
        assert s.maximum == pytest.approx(2.3)
        assert s.spread == pytest.approx(0.3)

    def test_warmup_drops_prefix(self):
        r = make_result(
            {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0},
            {0: 10.0, 1: 3.0, 2: 4.0, 3: 5.0},
        )
        s = latency_stats(r, warmup_fraction=0.25)
        assert s.maximum == pytest.approx(2.0)  # the 10s outlier dropped

    def test_empty_raises(self):
        with pytest.raises(ExperimentError):
            latency_stats(make_result({}, {}))

    def test_invalid_warmup(self):
        r = make_result({0: 0.0}, {0: 1.0})
        with pytest.raises(ExperimentError):
            latency_stats(r, warmup_fraction=1.0)


class TestThroughput:
    def test_inverse_interarrival(self):
        assert throughput_from_completions([0.0, 2.0, 4.0, 6.0]) == pytest.approx(0.5)

    def test_single_completion_uses_horizon(self):
        assert throughput_from_completions([5.0], horizon=10.0) == pytest.approx(0.1)

    def test_empty(self):
        assert throughput_from_completions([]) == 0.0


class TestUniformity:
    def test_perfectly_uniform(self):
        r = make_result(
            {ts: float(ts) for ts in range(5)},
            {ts: float(ts) + 1 for ts in range(5)},
            emitted=5,
        )
        u = uniformity_stats(r)
        assert u.coverage == 1.0 and u.max_gap == 0
        assert u.interarrival_cv == pytest.approx(0.0)

    def test_skipping_detected(self):
        r = make_result(
            {ts: float(ts) for ts in range(100)},
            {0: 1.0, 1: 2.0, 2: 3.0, 50: 10.0},
            emitted=100,
        )
        u = uniformity_stats(r)
        assert u.max_gap == 47
        assert u.coverage == pytest.approx(0.04)
        assert u.interarrival_cv > 0.5

    def test_empty_raises(self):
        with pytest.raises(ExperimentError):
            uniformity_stats(make_result({}, {}))


class TestCurves:
    def test_dominates(self):
        best = CurvePoint(throughput=0.5, latency=2.0)
        assert dominates(best, CurvePoint(0.3, 4.0))
        assert dominates(best, CurvePoint(0.5, 3.0))
        assert not dominates(best, CurvePoint(0.6, 1.0))
        assert not dominates(best, best)  # not strictly better than itself

    def test_dominates_with_tolerance(self):
        a = CurvePoint(throughput=0.49, latency=2.0)
        b = CurvePoint(throughput=0.50, latency=6.0)
        assert not dominates(a, b)
        assert dominates(a, b, tolerance=0.02)

    def test_pareto_front(self):
        pts = [
            CurvePoint(0.2, 2.0),
            CurvePoint(0.3, 3.0),
            CurvePoint(0.25, 5.0),   # dominated by (0.3, 3.0)? lat worse, thr worse
            CurvePoint(0.5, 6.0),
        ]
        front = pareto_front(pts)
        assert CurvePoint(0.25, 5.0) not in front
        assert CurvePoint(0.2, 2.0) in front
        assert CurvePoint(0.5, 6.0) in front

    def test_render_curve_contains_markers(self):
        text = render_curve(
            [CurvePoint(0.2, 5.0), CurvePoint(0.4, 3.0)],
            highlight=CurvePoint(0.5, 2.0),
        )
        assert "o" in text and "*" in text and "throughput" in text

    def test_render_empty(self):
        assert render_curve([]) == "(no points)"


class TestGantt:
    def test_render_from_trace(self, tracker_graph, m8, smp4):
        from repro.core.optimal import OptimalScheduler
        from repro.metrics.gantt import render_gantt, render_schedule
        from repro.runtime.static_exec import StaticExecutor

        sol = OptimalScheduler(smp4).solve(tracker_graph, m8)
        result = StaticExecutor(tracker_graph, m8, smp4, sol).run(3)
        text = render_gantt(result.trace)
        assert "P0" in text and "T4#" in text

    def test_render_schedule_shows_rotation(self, tracker_graph, m8, smp4):
        from repro.core.pipeline import naive_pipeline
        from repro.metrics.gantt import render_schedule

        p = naive_pipeline(tracker_graph, m8, smp4)
        text = render_schedule(p, iterations=3)
        # Iterations 0..2 appear, on different processors (shift=1).
        assert "#0" in text and "#2" in text

    def test_preempted_spans_marked(self):
        from repro.metrics.gantt import render_gantt
        from repro.sim.trace import ExecSpan, TraceRecorder

        t = TraceRecorder()
        t.record_span(ExecSpan(0, "T4", 0, 0.0, 1.0, preempted=True))
        assert "*" in render_gantt(t)

    def test_empty_trace(self):
        from repro.metrics.gantt import render_gantt
        from repro.sim.trace import TraceRecorder

        assert render_gantt(TraceRecorder()) == "(empty trace)"
