"""Unit tests for the execution summary."""

from __future__ import annotations

import pytest

from repro.core.optimal import OptimalScheduler
from repro.metrics.summary import summarize
from repro.runtime.static_exec import StaticExecutor
from repro.sim.cluster import SINGLE_NODE_SMP
from repro.state import State


class TestSummarize:
    @pytest.fixture(scope="class")
    def summary(self):
        from repro.apps.tracker.graph import build_tracker_graph

        g = build_tracker_graph()
        m8 = State(n_models=8)
        cluster = SINGLE_NODE_SMP(4)
        sol = OptimalScheduler(cluster).solve(g, m8)
        result = StaticExecutor(g, m8, cluster, sol).run(10)
        return sol, summarize(result, warmup_fraction=0.2)

    def test_headline_numbers_consistent(self, summary):
        sol, s = summary
        assert s.latency.mean == pytest.approx(
            sol.latency - sol.iteration.placement("T1").end
        )
        assert s.throughput == pytest.approx(sol.throughput, rel=0.05)
        assert s.slips == 0

    def test_uniformity_perfect_for_static(self, summary):
        _, s = summary
        assert s.uniformity.coverage == 1.0
        assert s.uniformity.max_gap == 0

    def test_utilization_in_range(self, summary):
        _, s = summary
        assert 0.0 < s.utilization <= 1.0

    def test_render_mentions_everything(self, summary):
        _, s = summary
        text = s.render()
        for key in ("latency:", "throughput:", "uniformity:", "utilization:",
                    "space:", "slips:"):
            assert key in text


class TestSummarizeEdgeCases:
    @staticmethod
    def make_result(digitize, completion, emitted, horizon=1.0):
        from repro.runtime.result import ExecutionResult
        from repro.sim.trace import TraceRecorder

        from repro.apps.tracker.graph import build_tracker_graph

        return ExecutionResult(
            graph=build_tracker_graph(),
            state=State(n_models=1),
            trace=TraceRecorder(),
            digitize_times=digitize,
            completion_times=completion,
            horizon=horizon,
            emitted=emitted,
        )

    def test_empty_trace_raises(self):
        from repro.errors import ExperimentError

        result = self.make_result({}, {}, emitted=0)
        with pytest.raises(ExperimentError):
            summarize(result)

    def test_emitted_but_nothing_completed_raises(self):
        from repro.errors import ExperimentError

        result = self.make_result({0: 0.0, 1: 0.5}, {}, emitted=2)
        with pytest.raises(ExperimentError):
            summarize(result)

    def test_single_timestamp_run(self):
        result = self.make_result({0: 0.1}, {0: 0.6}, emitted=1, horizon=1.0)
        s = summarize(result)
        assert s.latency.count == 1
        assert s.latency.mean == pytest.approx(0.5)
        assert s.latency.stdev == 0.0
        assert s.latency.spread == 0.0
        assert s.uniformity.coverage == 1.0
        assert s.uniformity.max_gap == 0
        assert s.uniformity.interarrival_cv == 0.0
        assert s.throughput == pytest.approx(1.0)  # count/horizon fallback
        assert s.utilization == 0.0  # no spans on any processor
        assert "over 1 frames" in s.render()

    def test_warmup_never_empties_the_window(self):
        # a huge warmup fraction must still leave at least one frame
        result = self.make_result({0: 0.0}, {0: 0.4}, emitted=1)
        s = summarize(result, warmup_fraction=0.9)
        assert s.latency.count == 1


class TestCLIOutputFile:
    def test_report_written(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        out_file = tmp_path / "report.txt"
        assert main(["table1", "--output", str(out_file)]) == 0
        text = out_file.read_text()
        assert "Table 1 reproduction" in text
        assert "shape holds: True" in text
