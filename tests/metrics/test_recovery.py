"""Unit tests for recovery metrics, including degenerate runs."""

from __future__ import annotations

import pytest

from repro.metrics.recovery import recovery_stats


def make(**kw):
    defaults = dict(
        completions=[1.0, 2.0, 3.0],
        period=1.0,
        horizon=10.0,
        crash_times=[],
        detection_latencies=[],
        frames_lost_crash=0,
        frames_lost_transition=0,
    )
    defaults.update(kw)
    return recovery_stats(**defaults)


class TestHealthyRun:
    def test_no_crashes_all_zeros(self):
        s = make()
        assert s.crashes == 0
        assert s.detection_latency_mean == 0.0
        assert s.recovery_time_mean == 0.0
        assert s.frames_lost == 0
        assert s.availability == 1.0
        assert "crashes=0" in s.summary()

    def test_regular_stream_no_downtime(self):
        s = make(completions=[i * 1.0 for i in range(10)])
        assert s.downtime == 0.0
        assert s.availability == 1.0


class TestFaultyRun:
    def test_gap_beyond_slack_counts_downtime(self):
        # 1s cadence, one 4s silence: 4 - 1 = 3s of downtime
        s = make(completions=[1.0, 2.0, 6.0, 7.0], horizon=10.0)
        assert s.downtime == pytest.approx(3.0)
        assert s.availability == pytest.approx(0.7)

    def test_recovery_time_first_completion_after_crash(self):
        s = make(
            completions=[1.0, 2.0, 6.0],
            crash_times=[2.5],
            detection_latencies=[0.4],
        )
        assert s.recovery_time_mean == pytest.approx(3.5)
        assert s.detection_latency_mean == pytest.approx(0.4)

    def test_crash_with_no_later_completion_runs_to_horizon(self):
        s = make(completions=[1.0], crash_times=[4.0], horizon=10.0)
        assert s.recovery_time_mean == pytest.approx(6.0)

    def test_frames_lost_splits_by_cause(self):
        s = make(frames_lost_crash=3, frames_lost_transition=2)
        assert s.frames_lost == 5
        assert "crash 3 / transition 2" in s.summary()


class TestDegenerateInputs:
    def test_empty_completions(self):
        s = make(completions=[], crash_times=[2.0], horizon=10.0)
        assert s.downtime == 0.0
        assert s.availability == 1.0
        assert s.recovery_time_mean == pytest.approx(8.0)

    def test_single_completion_no_gaps(self):
        s = make(completions=[5.0])
        assert s.downtime == 0.0
        assert s.availability == 1.0

    def test_zero_period_skips_downtime_analysis(self):
        s = make(completions=[1.0, 9.0], period=0.0)
        assert s.downtime == 0.0

    def test_zero_horizon_keeps_full_availability(self):
        s = make(completions=[1.0, 9.0], horizon=0.0)
        assert s.availability == 1.0

    def test_unsorted_completions_handled(self):
        s = make(completions=[6.0, 1.0, 2.0, 7.0], horizon=10.0)
        assert s.downtime == pytest.approx(3.0)

    def test_availability_clamped_non_negative(self):
        s = make(completions=[0.5, 9.5], period=1.0, horizon=1.0)
        assert s.availability == 0.0
