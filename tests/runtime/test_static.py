"""Unit tests for the static executor (schedule replay + verification)."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.core.optimal import OptimalScheduler
from repro.core.pipeline import naive_pipeline
from repro.core.schedule import IterationSchedule, PipelinedSchedule, Placement
from repro.graph.builders import chain_graph
from repro.runtime.static_exec import StaticExecutor
from repro.sim.cluster import SINGLE_NODE_SMP, ClusterSpec
from repro.sim.network import CommCost, CommModel
from repro.state import State


class TestOptimalScheduleExecution:
    @pytest.fixture(scope="class")
    def executed(self):
        from repro.apps.tracker.graph import build_tracker_graph

        g = build_tracker_graph()
        m8 = State(n_models=8)
        cluster = SINGLE_NODE_SMP(4)
        sol = OptimalScheduler(cluster).solve(g, m8)
        result = StaticExecutor(g, m8, cluster, sol).run(12)
        return sol, result

    def test_zero_slips(self, executed):
        """A correct schedule executes exactly as planned."""
        sol, result = executed
        assert result.meta["slips"] == 0

    def test_every_iteration_completes(self, executed):
        sol, result = executed
        assert result.completed_count == 12

    def test_latency_matches_schedule(self, executed):
        """Measured latency == scheduled latency minus the digitizer span
        (latency is measured from the frame put, i.e. after T1 runs)."""
        sol, result = executed
        t1_end = sol.iteration.placement("T1").end
        expected = sol.latency - t1_end
        for ts in result.completed:
            assert result.latency(ts) == pytest.approx(expected)

    def test_completions_periodic_at_ii(self, executed):
        sol, result = executed
        seq = result.completion_sequence()
        gaps = [b - a for a, b in zip(seq, seq[1:])]
        for g in gaps:
            assert g == pytest.approx(sol.period)

    def test_gc_reclaims_everything(self, executed):
        """After a full drain every streaming item must be collected."""
        sol, result = executed
        # 5 streaming channels x 12 iterations.
        assert result.gc_collected == 5 * 12


class TestPipelineExecution:
    def test_naive_pipeline_executes_cleanly(self, tracker_graph, m8, smp4):
        p = naive_pipeline(tracker_graph, m8, smp4)
        result = StaticExecutor(tracker_graph, m8, smp4, p).run(8)
        assert result.meta["slips"] == 0
        assert result.completed_count == 8

    def test_utilization_of_naive_pipeline_is_full(self, tracker_graph, m8, smp4):
        """Figure 4(b): 'this schedule has no idle time' (steady state)."""
        p = naive_pipeline(tracker_graph, m8, smp4)
        result = StaticExecutor(tracker_graph, m8, smp4, p).run(16)
        # Window well inside the steady state: all processors busy.
        t0 = 2 * p.latency
        t1 = result.trace.makespan - 2 * p.latency
        busy = sum(
            min(s.end, t1) - max(s.start, t0)
            for s in result.trace.spans
            if s.end > t0 and s.start < t1
        )
        assert busy / ((t1 - t0) * 4) > 0.98


class TestCommDelays:
    def test_executor_charges_comm(self, m1):
        g = chain_graph([1.0, 1.0], item_bytes=1000)
        cluster = ClusterSpec(nodes=2, procs_per_node=1)
        comm = CommModel(
            cluster, inter_node=CommCost(latency=0.5, bandwidth=float("inf"))
        )
        # Schedule t1 on the other node with slack for the transfer.
        it = IterationSchedule(
            [Placement("t0", (0,), 0.0, 1.0), Placement("t1", (1,), 1.5, 1.0)]
        )
        sched = PipelinedSchedule(it, period=2.5, shift=0, n_procs=2)
        result = StaticExecutor(g, m1, cluster, sched, comm=comm).run(3)
        assert result.meta["slips"] == 0

    def test_tight_schedule_slips_under_comm(self, m1):
        g = chain_graph([1.0, 1.0], item_bytes=1000)
        cluster = ClusterSpec(nodes=2, procs_per_node=1)
        comm = CommModel(
            cluster, inter_node=CommCost(latency=0.5, bandwidth=float("inf"))
        )
        it = IterationSchedule(
            [Placement("t0", (0,), 0.0, 1.0), Placement("t1", (1,), 1.0, 1.0)]
        )
        sched = PipelinedSchedule(it, period=2.5, shift=0, n_procs=2)
        result = StaticExecutor(g, m1, cluster, sched, comm=comm).run(2)
        assert result.meta["slips"] == 2
        assert result.meta["max_slip"] == pytest.approx(0.5)


class TestGuards:
    def test_zero_iterations_rejected(self, tracker_graph, m8, smp4):
        sol = OptimalScheduler(smp4).solve(tracker_graph, m8)
        ex = StaticExecutor(tracker_graph, m8, smp4, sol)
        with pytest.raises(ReproError):
            ex.run(0)

    def test_schedule_wider_than_cluster_rejected(self, m1):
        g = chain_graph([1.0])
        it = IterationSchedule([Placement("t0", (0,), 0.0, 1.0)])
        sched = PipelinedSchedule(it, period=1.0, shift=0, n_procs=4)
        with pytest.raises(ReproError):
            StaticExecutor(g, m1, SINGLE_NODE_SMP(2), sched)
