"""Unit tests for the dynamic (on-line scheduled) executor."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.graph.builders import chain_graph, fork_join_graph
from repro.runtime.dynamic import DynamicExecutor
from repro.sched.online import PthreadScheduler
from repro.sim.cluster import SINGLE_NODE_SMP
from repro.state import State


def run_chain(costs, period, horizon, procs=2, policy="latest", max_ts=None, caps=None):
    g = chain_graph(costs, period=period)
    ex = DynamicExecutor(
        g, State(n_models=1), SINGLE_NODE_SMP(procs),
        PthreadScheduler(quantum=0.01),
        input_policy=policy, capacity_override=caps,
    )
    return ex.run(horizon=horizon, max_timestamps=max_ts)


class TestBasicExecution:
    def test_all_frames_complete_when_underloaded(self):
        result = run_chain([0.01, 0.02, 0.03], period=0.5, horizon=10.0, max_ts=10)
        assert result.emitted == 10
        assert result.completed == list(range(10))

    def test_latency_is_pipeline_service_time(self):
        result = run_chain([0.01, 0.02, 0.03], period=1.0, horizon=20.0, max_ts=5)
        for ts in result.completed:
            # t1 + t2 after the digitizer put (plus negligible scheduling).
            assert result.latency(ts) == pytest.approx(0.05, abs=1e-6)

    def test_digitize_times_follow_period(self):
        result = run_chain([0.01, 0.01], period=0.5, horizon=10.0, max_ts=4)
        times = [result.digitize_times[ts] for ts in range(4)]
        gaps = [b - a for a, b in zip(times, times[1:])]
        for g in gaps:
            assert g == pytest.approx(0.5, abs=1e-3)

    def test_horizon_truncates(self):
        result = run_chain([0.01, 0.01], period=1.0, horizon=2.5)
        assert result.emitted == 3  # t=0, 1, 2

    def test_invalid_horizon(self):
        g = chain_graph([0.01], period=1.0)
        ex = DynamicExecutor(
            g, State(n_models=1), SINGLE_NODE_SMP(1), PthreadScheduler()
        )
        with pytest.raises(ReproError):
            ex.run(horizon=0.0)

    def test_invalid_policy(self):
        g = chain_graph([0.01], period=1.0)
        with pytest.raises(ReproError):
            DynamicExecutor(
                g, State(n_models=1), SINGLE_NODE_SMP(1), PthreadScheduler(),
                input_policy="psychic",
            )

    def test_zero_cost_unpaced_source_rejected(self):
        g = chain_graph([0.0, 1.0])
        ex = DynamicExecutor(
            g, State(n_models=1), SINGLE_NODE_SMP(1), PthreadScheduler()
        )
        with pytest.raises(ReproError):
            ex.run(horizon=1.0)


class TestSkippingBehaviour:
    def test_latest_policy_skips_under_overload(self):
        """Slow consumer + fast producer: frames are skipped (§1's
        non-uniformity), and the newest frames are the ones processed."""
        result = run_chain([0.001, 0.5], period=0.05, horizon=10.0, procs=2)
        assert result.emitted > result.completed_count * 2
        gaps = [b - a for a, b in zip(result.completed, result.completed[1:])]
        assert max(gaps) > 1  # consecutive frames skipped

    def test_inorder_policy_never_skips(self):
        result = run_chain(
            [0.001, 0.5], period=0.05, horizon=10.0, procs=2,
            policy="inorder", max_ts=10,
        )
        assert result.completed == list(range(10))

    def test_inorder_backlog_grows_latency(self):
        result = run_chain(
            [0.001, 0.5], period=0.05, horizon=30.0, procs=2,
            policy="inorder", max_ts=20,
        )
        lats = result.latencies()
        assert lats[-1] > lats[0]  # each frame waits behind a longer queue


class TestFlowControl:
    def test_bounded_channels_throttle_source(self):
        free = run_chain([0.001, 0.5], period=0.01, horizon=5.0, policy="inorder")
        bounded = run_chain(
            [0.001, 0.5], period=0.01, horizon=5.0, policy="inorder",
            caps={"c0": 2},
        )
        # The bounded run digitizes far fewer frames: producer blocks.
        assert bounded.emitted < free.emitted / 2

    def test_terminal_channel_collector_prevents_deadlock(self):
        """Bounding a sink's output channel must not wedge the pipeline."""
        result = run_chain(
            [0.001, 0.01, 0.01], period=0.05, horizon=5.0, policy="inorder",
            caps={"c0": 1, "c1": 1}, max_ts=20,
        )
        assert result.completed_count == 20


class TestForkJoinExecution:
    def test_fan_in_matches_timestamps(self):
        g = fork_join_graph(0.001, [0.02, 0.04], 0.01, period=0.2)
        ex = DynamicExecutor(
            g, State(n_models=1), SINGLE_NODE_SMP(4), PthreadScheduler(quantum=0.01)
        )
        result = ex.run(horizon=5.0, max_timestamps=8)
        assert result.completed == list(range(8))

    def test_sink_completion_requires_all_inputs(self, tracker_graph, m8):
        from repro.sched.handtuned import with_source_period

        g = with_source_period(tracker_graph, 3.0)
        ex = DynamicExecutor(
            g, m8, SINGLE_NODE_SMP(4), PthreadScheduler(quantum=0.01)
        )
        result = ex.run(horizon=40.0)
        assert result.completed_count >= 3
        for ts in result.completed:
            spans = result.trace.spans_for_timestamp(ts)
            assert {s.task for s in spans} == {"T1", "T2", "T3", "T4", "T5"}


class TestMetaAccounting:
    def test_gc_and_high_water(self):
        result = run_chain([0.01, 0.01], period=0.5, horizon=10.0, max_ts=5)
        assert result.gc_collected > 0
        assert result.live_item_high_water >= 1

    def test_meta_carries_scheduler(self):
        result = run_chain([0.01, 0.01], period=0.5, horizon=2.0)
        assert "PthreadScheduler" in result.meta["scheduler"]
