"""Unit tests for the simulator-bound channel hubs."""

from __future__ import annotations

import pytest

from repro.graph.builders import chain_graph
from repro.runtime.hub import ChannelHub, build_hubs
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder
from repro.stm.channel import STMChannel


@pytest.fixture
def hub():
    sim = Simulator()
    trace = TraceRecorder()
    return sim, ChannelHub(sim, STMChannel("c"), trace), trace


class TestNotification:
    def test_put_fires_change_event(self, hub):
        sim, h, _ = hub
        out = h.stm.attach_output("p")
        ev = h.wait_change()

        def putter(sim):
            yield from h.put(out, 0, "x")

        sim.process(putter(sim))
        sim.run()
        assert ev.fired

    def test_consume_fires_change_event(self, hub):
        sim, h, _ = hub
        out = h.stm.attach_output("p")
        inp = h.stm.attach_input("q")

        def putter(sim):
            yield from h.put(out, 0, "x")

        sim.process(putter(sim))
        sim.run()
        ev = h.wait_change()
        h.consume(inp, 0)
        assert ev.triggered

    def test_each_change_event_is_fresh(self, hub):
        sim, h, _ = hub
        first = h.wait_change()
        h._notify()
        second = h.wait_change()
        assert first is not second


class TestBlockingPut:
    def test_put_blocks_at_capacity_until_gc(self):
        sim = Simulator()
        h = ChannelHub(sim, STMChannel("c", capacity=1))
        out = h.stm.attach_output("p")
        inp = h.stm.attach_input("q")
        done = []

        def producer(sim):
            yield from h.put(out, 0, "a")
            yield from h.put(out, 1, "b")  # blocks: capacity 1
            done.append(sim.now)

        def consumer(sim):
            yield sim.timeout(5.0)
            h.try_get(inp, 0)
            h.consume(inp, 0)  # GC frees the slot -> producer resumes

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        assert done == [5.0]


class TestTraceIntegration:
    def test_items_recorded(self, hub):
        sim, h, trace = hub
        out = h.stm.attach_output("p")
        inp = h.stm.attach_input("q")

        def flow(sim):
            yield from h.put(out, 0, "x")
            h.try_get(inp, 0)
            h.consume(inp, 0)

        sim.process(flow(sim))
        sim.run()
        kinds = [e.kind for e in trace.items]
        assert kinds == ["put", "get", "consume"]
        assert trace.items[0].task == "p"

    def test_put_time_tracked(self, hub):
        sim, h, _ = hub
        out = h.stm.attach_output("p")

        def putter(sim):
            yield sim.timeout(3.0)
            yield from h.put(out, 7, "x")

        sim.process(putter(sim))
        sim.run()
        assert h.put_time(7) == 3.0
        assert h.put_time(99) is None

    def test_gc_stats_accumulate(self, hub):
        sim, h, _ = hub
        out = h.stm.attach_output("p")
        inp = h.stm.attach_input("q")

        def flow(sim):
            for ts in range(3):
                yield from h.put(out, ts, ts)
                h.try_get(inp, ts)
                h.consume(inp, ts)

        sim.process(flow(sim))
        sim.run()
        assert h.gc_stats.collected == 3


class TestBuildHubs:
    def test_one_hub_per_channel(self):
        sim = Simulator()
        g = chain_graph([1.0, 1.0, 1.0])
        hubs = build_hubs(sim, g)
        assert set(hubs) == {"c0", "c1"}

    def test_capacity_override(self):
        sim = Simulator()
        g = chain_graph([1.0, 1.0])
        hubs = build_hubs(sim, g, capacity_override={"c0": 7})
        assert hubs["c0"].stm.capacity == 7
