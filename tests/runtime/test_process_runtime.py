"""Integration tests for the process-parallel runtime.

Every test forks real worker processes, so graphs and frame counts stay
small — the cross-substrate semantics are covered separately by
``tests/integration/test_conformance.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.tracker.graph import attach_kernels, build_tracker_graph
from repro.apps.video import VideoSource
from repro.core.schedule import IterationSchedule, PipelinedSchedule, Placement
from repro.errors import ReproError
from repro.graph.channel import ChannelSpec
from repro.graph.task import Task
from repro.graph.taskgraph import TaskGraph
from repro.obs import Observability
from repro.runtime.process import KernelFault, ProcessFaultPlan, ProcessRuntime
from repro.runtime.static_exec import StaticExecutor
from repro.sim.cluster import SINGLE_NODE_SMP
from repro.state import State

pytestmark = pytest.mark.slow


def chain_graph_live() -> TaskGraph:
    g = TaskGraph("chain")
    g.add_channel(ChannelSpec("a", item_bytes=80_000))
    g.add_channel(ChannelSpec("b", item_bytes=80_000))
    g.add_task(Task("src", cost=0.01, outputs=["a"],
                    compute=lambda s, ins: {"a": np.full((100, 100), 1.0)}))
    g.add_task(Task("dbl", cost=0.01, inputs=["a"], outputs=["b"],
                    compute=lambda s, ins: {"b": ins["a"] * 2}))
    return g


def tracker_setup(n_models: int = 2, shape: tuple[int, int] = (48, 64)):
    video = VideoSource(n_targets=n_models, height=shape[0], width=shape[1],
                        seed=11)
    live, statics = attach_kernels(
        build_tracker_graph(frame_shape=shape), video
    )
    return live, statics, State(n_models=n_models)


def dp2_schedule() -> PipelinedSchedule:
    it = IterationSchedule([
        Placement("T1", (0,), 0.0, 0.002),
        Placement("T2", (1,), 0.002, 0.120),
        Placement("T3", (2,), 0.002, 0.080),
        Placement("T4", (2, 3), 0.122, 0.9, variant="dp2"),
        Placement("T5", (0,), 1.022, 0.03),
    ])
    return PipelinedSchedule(it, period=1.1, shift=0, n_procs=4)


class TestBasicRun:
    def test_two_node_chain(self):
        res = ProcessRuntime(
            chain_graph_live(), State(n_models=1), op_timeout=30.0,
            placement={"src": 0, "dbl": 1},
        ).run(5)
        assert sorted(res.outputs["b"]) == list(range(5))
        assert all(v[0, 0] == 2.0 for v in res.outputs["b"].values())
        assert len(res.digitize_times) == 5
        assert len(res.completion_times) == 5
        for ts in res.completion_times:
            assert res.completion_times[ts] >= res.digitize_times[ts]
        assert res.channel_stats["a"]["collected"] == 5
        assert res.channel_stats["b"]["collected"] == 5

    def test_spans_cover_every_frame(self):
        res = ProcessRuntime(
            chain_graph_live(), State(n_models=1), op_timeout=30.0,
            placement={"src": 0, "dbl": 1},
        ).run(4)
        by_task = {}
        for s in res.spans:
            by_task.setdefault(s.task, set()).add(s.timestamp)
        assert by_task["src"] == set(range(4))
        assert by_task["dbl"] == set(range(4))


class TestCoalescing:
    def test_defaults_on(self):
        rt = ProcessRuntime(chain_graph_live(), State(n_models=1),
                            placement={"src": 0, "dbl": 1})
        assert rt.coalesce is True

    def test_env_var_turns_it_off(self, monkeypatch):
        for value in ("0", "false", "off"):
            monkeypatch.setenv("REPRO_COALESCE", value)
            rt = ProcessRuntime(chain_graph_live(), State(n_models=1),
                                placement={"src": 0, "dbl": 1})
            assert rt.coalesce is False, value

    def test_kwarg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_COALESCE", "0")
        rt = ProcessRuntime(chain_graph_live(), State(n_models=1),
                            placement={"src": 0, "dbl": 1}, coalesce=True)
        assert rt.coalesce is True

    def test_modes_agree_and_coalescing_saves_roundtrips(self):
        results = {}
        for coalesce in (True, False):
            res = ProcessRuntime(
                chain_graph_live(), State(n_models=1), op_timeout=30.0,
                placement={"src": 0, "dbl": 1}, coalesce=coalesce,
            ).run(5)
            assert sorted(res.outputs["b"]) == list(range(5))
            results[coalesce] = res
        on, off = results[True], results[False]
        for ts in range(5):
            np.testing.assert_array_equal(on.outputs["b"][ts],
                                          off.outputs["b"][ts])
        assert on.channel_stats == off.channel_stats
        assert on.meta["broker_roundtrips"] < off.meta["broker_roundtrips"]
        assert "step" in on.meta["broker_ops"]
        assert "step" not in off.meta["broker_ops"]


class TestScheduleDriven:
    def test_tracker_dp_schedule(self):
        """A dp2 placement runs T4 through the worker's chunk pool."""
        live, statics, state = tracker_setup()
        ex = StaticExecutor(
            live, state, SINGLE_NODE_SMP(4), dp2_schedule(),
            runtime="process", static_inputs=statics,
        )
        res = ex.run(4)
        assert res.completed_count == 4
        assert res.meta["dp_plan"]["T4"] == (2, "dp2")
        locs = res.meta["outputs"]["model_locations"]
        assert all(len(locs[ts]) == 2 for ts in range(4))

    def test_dp_matches_serial_output(self):
        """Chunked T4 reproduces the serial kernel exactly (Figure 9)."""
        live, statics, state = tracker_setup()
        dp = StaticExecutor(
            live, state, SINGLE_NODE_SMP(4), dp2_schedule(),
            runtime="process", static_inputs=statics,
        ).run(3)
        live2, statics2, _ = tracker_setup()
        serial = StaticExecutor(
            live2, state, SINGLE_NODE_SMP(4), dp2_schedule(),
            runtime="threaded", static_inputs=statics2,
        ).run(3)
        for ts in range(3):
            assert (dp.meta["outputs"]["model_locations"][ts]
                    == serial.meta["outputs"]["model_locations"][ts])


class TestObservability:
    def test_obs_buffers_merge_at_join(self):
        obs = Observability()
        res = ProcessRuntime(
            chain_graph_live(), State(n_models=1), op_timeout=30.0,
            placement={"src": 0, "dbl": 1}, obs=obs,
        ).run(4)
        assert sorted(res.outputs["b"]) == list(range(4))
        spans = obs.tracer.spans()
        execs = [s for s in spans if s.cat == "exec"]
        assert {s.name for s in execs} == {"src", "dbl"}
        stm = [s for s in spans if s.cat == "stm"]
        assert {s.name.split(":")[0] for s in stm} >= {"put", "get", "consume"}
        snap = obs.snapshot()
        frames = snap["repro_frames_completed_total"]["series"][0]["value"]
        assert frames == 4


class TestFaults:
    def test_error_fault_absorbed_by_retry(self):
        plan = ProcessFaultPlan(events=[KernelFault("dbl", 2, "error")],
                                kernel_retries=1)
        res = ProcessRuntime(
            chain_graph_live(), State(n_models=1), op_timeout=30.0,
            placement={"src": 0, "dbl": 1}, faults=plan,
        ).run(5)
        assert sorted(res.outputs["b"]) == list(range(5))
        assert res.kernel_retries == 1
        assert res.respawns == 0

    def test_exit_fault_respawns_and_resumes(self):
        obs = Observability()
        plan = ProcessFaultPlan(events=[KernelFault("dbl", 2, "exit")],
                                max_respawns=2)
        res = ProcessRuntime(
            chain_graph_live(), State(n_models=1), op_timeout=30.0,
            placement={"src": 0, "dbl": 1}, faults=plan, obs=obs,
        ).run(6)
        assert sorted(res.outputs["b"]) == list(range(6))
        assert all(v[0, 0] == 2.0 for v in res.outputs["b"].values())
        assert res.respawns == 1
        snap = obs.snapshot()
        assert snap["repro_failovers_total"]["series"][0]["value"] == 1

    def test_respawn_budget_exhaustion_raises(self):
        plan = ProcessFaultPlan(events=[KernelFault("dbl", 1, "exit")],
                                max_respawns=0)
        with pytest.raises(ReproError, match="respawn budget"):
            ProcessRuntime(
                chain_graph_live(), State(n_models=1), op_timeout=15.0,
                placement={"src": 0, "dbl": 1}, faults=plan,
            ).run(4)

    def test_fault_plan_validation(self):
        with pytest.raises(ReproError):
            KernelFault("t", -1)
        with pytest.raises(ReproError):
            KernelFault("t", 0, kind="meteor")
        with pytest.raises(ReproError):
            ProcessFaultPlan(kernel_retries=-1)


class TestExecutorGuards:
    def test_unknown_runtime_rejected(self):
        live, statics, state = tracker_setup()
        with pytest.raises(ReproError):
            StaticExecutor(live, state, SINGLE_NODE_SMP(4), dp2_schedule(),
                           runtime="quantum")

    def test_live_faults_must_be_process_plan(self):
        live, statics, state = tracker_setup()
        with pytest.raises(ReproError):
            StaticExecutor(
                live, state, SINGLE_NODE_SMP(4), dp2_schedule(),
                runtime="threaded",
                faults=ProcessFaultPlan(),
                static_inputs=statics,
            )

    def test_contended_is_sim_only(self):
        live, statics, state = tracker_setup()
        with pytest.raises(ReproError):
            StaticExecutor(
                live, state, SINGLE_NODE_SMP(4), dp2_schedule(),
                runtime="process", contended=True, static_inputs=statics,
            )
