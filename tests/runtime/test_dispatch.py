"""Flat dispatch tables vs the object walks they replaced.

:class:`FlatSchedule` must reproduce :meth:`PipelinedSchedule.instantiate`
and ``proc_for`` exactly (same rotation arithmetic, same ordering), and
:func:`build_task_plans` must agree with per-channel ``static`` queries —
these equivalences are what lets every substrate dispatch through the
compiled tables without a conformance risk.
"""

from __future__ import annotations

import pytest

from repro.core.schedule import IterationSchedule, PipelinedSchedule, Placement
from repro.graph.taskgraph import TaskGraph
from repro.runtime.dispatch import FlatSchedule, build_task_plans


def rotated_schedule() -> PipelinedSchedule:
    it = IterationSchedule([
        Placement("T1", (0,), 0.0, 1.0),
        Placement("T2", (1, 2), 1.0, 2.0, variant="dp2"),
        Placement("T3", (3,), 1.0, 1.5),
        Placement("T4", (0, 1, 2, 3), 3.0, 2.5, variant="dp4"),
    ])
    return PipelinedSchedule(it, period=6.0, shift=1, n_procs=4)


@pytest.fixture
def sched():
    return rotated_schedule()


@pytest.fixture
def flat(sched):
    return FlatSchedule(sched)


class TestFlatSchedule:
    def test_instantiate_matches_reference(self, sched, flat):
        for k in range(12):
            reference = sched.instantiate(k)
            rows = flat.instantiate(k)
            assert len(rows) == len(reference)
            for pl, row in zip(reference, rows):
                assert row.task == pl.task
                assert row.procs == pl.procs
                assert row.start == pytest.approx(pl.start)
                assert row.duration == pytest.approx(pl.duration)
                assert row.variant == pl.variant
                assert row.end == pytest.approx(pl.end)
                assert row.workers == len(pl.procs)
                assert row.primary == pl.procs[0]

    def test_point_queries_match_rows(self, flat):
        for k in range(8):
            for row in flat.instantiate(k):
                assert flat.primary(row.task, k) == row.primary
                assert flat.procs_for(row.task, k) == row.procs

    def test_primary_matches_proc_for(self, sched, flat):
        base = {p.task: p.procs[0] for p in sched.iteration.placements}
        for k in range(8):
            for task, proc in base.items():
                assert flat.primary(task, k) == sched.proc_for(proc, k)

    def test_iter_iterations(self, flat):
        seen = list(flat.iter_iterations(3))
        assert [k for k, _rows in seen] == [0, 1, 2]
        assert all(len(rows) == len(flat) for _k, rows in seen)

    def test_unknown_task_raises(self, flat):
        with pytest.raises(KeyError):
            flat.row("nope")

    def test_no_rotation_schedule(self):
        it = IterationSchedule([Placement("A", (2,), 0.0, 1.0)])
        sched = PipelinedSchedule(it, period=1.0, shift=0, n_procs=3)
        flat = FlatSchedule(sched)
        for k in (0, 5, 11):
            assert flat.primary("A", k) == 2
            assert flat.instantiate(k)[0].start == pytest.approx(k * 1.0)


class TestTaskPlans:
    def graph(self) -> TaskGraph:
        from repro.graph.channel import ChannelSpec
        from repro.graph.task import Task

        g = TaskGraph()
        g.add_channel(ChannelSpec("cfg", static=True))
        g.add_channel(ChannelSpec("frames"))
        g.add_channel(ChannelSpec("masks"))
        g.add_channel(ChannelSpec("out"))
        g.add_task(Task("SRC", cost=1.0, outputs=["frames"]))
        g.add_task(Task("MID", cost=1.0, inputs=["frames", "cfg"],
                        outputs=["masks"]))
        g.add_task(Task("SINK", cost=1.0, inputs=["masks", "frames"],
                        outputs=["out"]))
        return g

    def test_classification_matches_graph(self):
        g = self.graph()
        plans = build_task_plans(g)
        assert set(plans) == {"SRC", "MID", "SINK"}
        for task in g.tasks:
            plan = plans[task.name]
            assert plan.static_inputs == tuple(
                ch for ch in task.inputs if g.channel(ch).static
            )
            assert plan.stream_inputs == tuple(
                ch for ch in task.inputs if not g.channel(ch).static
            )
            assert plan.outputs == tuple(task.outputs)
            assert plan.is_source == task.is_source

    def test_declared_order_preserved(self):
        plans = build_task_plans(self.graph())
        assert plans["MID"].static_inputs == ("cfg",)
        assert plans["MID"].stream_inputs == ("frames",)
        assert plans["SINK"].stream_inputs == ("masks", "frames")

    def test_indices_are_graph_positions(self):
        g = self.graph()
        plans = build_task_plans(g)
        for i, task in enumerate(g.tasks):
            assert plans[task.name].index == i
