"""Unit tests for the live (real-thread) runtime."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.graph.channel import ChannelSpec
from repro.graph.task import Task
from repro.graph.taskgraph import TaskGraph
from repro.runtime.threaded import ThreadedRuntime
from repro.state import State


def compute_chain_graph():
    """src doubles ts, mid adds 1; terminal channel collects results."""
    g = TaskGraph("live-chain")
    g.add_channel(ChannelSpec("a"))
    g.add_channel(ChannelSpec("b"))
    counter = {"ts": 0}

    def src(state, inputs):
        v = counter["ts"] * 2
        counter["ts"] += 1
        return {"a": v}

    def mid(state, inputs):
        return {"b": inputs["a"] + 1}

    g.add_task(Task("src", cost=0.0, outputs=["a"], compute=src))
    g.add_task(Task("mid", cost=0.0, inputs=["a"], outputs=["b"], compute=mid))
    g.validate()
    return g


class TestBasicPipeline:
    def test_values_flow_in_order(self):
        rt = ThreadedRuntime(compute_chain_graph(), State(n_models=1), op_timeout=10)
        res = rt.run(8)
        assert res.outputs["b"] == {ts: ts * 2 + 1 for ts in range(8)}

    def test_channel_stats_balanced(self):
        rt = ThreadedRuntime(compute_chain_graph(), State(n_models=1), op_timeout=10)
        res = rt.run(5)
        assert res.channel_stats["a"]["puts"] == 5
        assert res.channel_stats["a"]["collected"] == 5
        assert res.channel_stats["b"]["collected"] == 5

    def test_passthrough_without_kernel(self):
        g = TaskGraph("passthrough")
        g.add_channel(ChannelSpec("a"))
        g.add_channel(ChannelSpec("b"))
        g.add_task(Task("src", cost=0.0, outputs=["a"]))
        g.add_task(Task("relay", cost=0.0, inputs=["a"], outputs=["b"]))
        g.validate()
        # Neither task has a compute kernel: inputs pass through as dicts.
        rt = ThreadedRuntime(g, State(n_models=1), op_timeout=10)
        res = rt.run(3)
        assert set(res.outputs["b"]) == {0, 1, 2}

    def test_invalid_timestamps(self):
        rt = ThreadedRuntime(compute_chain_graph(), State(n_models=1))
        with pytest.raises(ReproError):
            rt.run(0)


class TestErrorPropagation:
    def test_kernel_exception_reaches_caller(self):
        g = TaskGraph("boom")
        g.add_channel(ChannelSpec("a"))

        def bad(state, inputs):
            raise RuntimeError("kernel exploded")

        g.add_task(Task("src", cost=0.0, outputs=["a"], compute=bad))
        g.validate()
        rt = ThreadedRuntime(g, State(n_models=1), op_timeout=5)
        with pytest.raises(RuntimeError, match="kernel exploded"):
            rt.run(2)

    def test_non_dict_kernel_result_rejected(self):
        g = TaskGraph("bad-shape")
        g.add_channel(ChannelSpec("a"))
        g.add_task(Task("src", cost=0.0, outputs=["a"], compute=lambda s, i: 42))
        g.validate()
        rt = ThreadedRuntime(g, State(n_models=1), op_timeout=5)
        with pytest.raises(ReproError, match="expected dict"):
            rt.run(1)

    def test_missing_output_channel_rejected(self):
        g = TaskGraph("missing-out")
        g.add_channel(ChannelSpec("a"))
        g.add_task(Task("src", cost=0.0, outputs=["a"], compute=lambda s, i: {}))
        g.validate()
        rt = ThreadedRuntime(g, State(n_models=1), op_timeout=5)
        with pytest.raises(ReproError, match="no value for"):
            rt.run(1)

    def test_missing_static_input_rejected(self):
        g = TaskGraph("needs-config")
        g.add_channel(ChannelSpec("cfg", static=True))
        g.add_channel(ChannelSpec("out"))
        g.add_task(
            Task("src", cost=0.0, inputs=["cfg"], outputs=["out"],
                 compute=lambda s, i: {"out": i["cfg"]})
        )
        g.validate()
        with pytest.raises(ReproError, match="static"):
            ThreadedRuntime(g, State(n_models=1))


class TestStaticInputs:
    def test_static_value_visible_every_timestamp(self):
        g = TaskGraph("cfg")
        g.add_channel(ChannelSpec("cfg", static=True))
        g.add_channel(ChannelSpec("out"))
        g.add_task(
            Task("src", cost=0.0, inputs=["cfg"], outputs=["out"],
                 compute=lambda s, i: {"out": i["cfg"] * 2})
        )
        g.validate()
        rt = ThreadedRuntime(g, State(n_models=1), static_inputs={"cfg": 21})
        res = rt.run(3)
        assert res.outputs["out"] == {0: 42, 1: 42, 2: 42}


class TestLiveTracker:
    def test_tracker_finds_ground_truth(self):
        from repro.apps.tracker.graph import attach_kernels, build_tracker_graph
        from repro.apps.video import VideoSource

        video = VideoSource(n_targets=3, height=48, width=64, seed=11)
        live, statics = attach_kernels(build_tracker_graph(), video)
        rt = ThreadedRuntime(live, State(n_models=3), static_inputs=statics,
                             op_timeout=30)
        res = rt.run(4)
        for ts, locations in res.outputs["model_locations"].items():
            truth = video.positions(ts)
            for (r, c, score), (tr, tc) in zip(locations, truth):
                # Peak must land inside the target patch.
                assert tr <= r < tr + video.target_size
                assert tc <= c < tc + video.target_size
                assert score > 0.5
