"""Fair-share grants and first-fit-decreasing placement."""

from __future__ import annotations

import pytest

from repro.errors import PackingError
from repro.fleet.placer import Carve, Demand, FairSharePlacer, fair_share_grants


def d(tid, want, priority=0, weight=1.0, seq=0):
    return Demand(tenant_id=tid, want=want, priority=priority, weight=weight, seq=seq)


class TestGrants:
    def test_everyone_gets_floor_when_room(self):
        grants = fair_share_grants([d("a", 3, seq=0), d("b", 3, seq=1)], capacity=2)
        assert grants == {"a": 1, "b": 1}

    def test_water_fill_toward_demand(self):
        grants = fair_share_grants([d("a", 3, seq=0), d("b", 2, seq=1)], capacity=5)
        assert grants == {"a": 3, "b": 2}

    def test_surplus_stops_at_demand(self):
        grants = fair_share_grants([d("a", 2, seq=0)], capacity=10)
        assert grants == {"a": 2}

    def test_priority_wins_contended_extra(self):
        grants = fair_share_grants(
            [d("lo", 2, priority=0, seq=0), d("hi", 2, priority=1, seq=1)],
            capacity=3,
        )
        assert grants == {"hi": 2, "lo": 1}

    def test_weight_breaks_priority_ties(self):
        grants = fair_share_grants(
            [d("light", 2, weight=1.0, seq=0), d("heavy", 2, weight=3.0, seq=1)],
            capacity=3,
        )
        assert grants == {"heavy": 2, "light": 1}

    def test_admission_order_breaks_full_ties(self):
        grants = fair_share_grants([d("x", 2, seq=0), d("y", 2, seq=1)], capacity=3)
        assert grants == {"x": 2, "y": 1}

    def test_over_capacity_leaves_zero_grants(self):
        grants = fair_share_grants(
            [d(f"t{i}", 1, seq=i) for i in range(4)], capacity=2
        )
        assert sum(grants.values()) == 2
        assert sorted(grants.values()) == [0, 0, 1, 1]

    def test_total_never_exceeds_capacity(self):
        demands = [d(f"t{i}", 3, priority=i % 2, seq=i) for i in range(5)]
        for cap in range(0, 20):
            grants = fair_share_grants(demands, cap)
            assert sum(grants.values()) <= cap
            assert all(g <= 3 for g in grants.values())


class TestPlacer:
    def test_carves_are_exclusive_and_on_one_node(self):
        packing = FairSharePlacer().pack(
            {0: [0, 1], 1: [2, 3]},
            [d("a", 2, seq=0), d("b", 2, seq=1)],
        )
        assert not packing.unplaced
        used = [p for c in packing.carves.values() for p in c.procs]
        assert len(used) == len(set(used))
        for c in packing.carves.values():
            assert len({c.node}) == 1

    def test_ffd_big_grants_get_whole_nodes(self):
        packing = FairSharePlacer().pack(
            {0: [0, 1, 2, 3], 1: [4, 5]},
            [d("big", 4, seq=0), d("small", 2, seq=1)],
        )
        assert packing.carve("big").width == 4
        assert packing.carve("small").width == 2
        assert packing.carve("big").node != packing.carve("small").node

    def test_fragmented_grant_shrinks_not_fails(self):
        # Capacity 4 over two 2-proc nodes; a want-3 tenant can only get
        # a 2-wide block but must still be placed (degraded).
        packing = FairSharePlacer().pack(
            {0: [0, 1], 1: [2, 3]},
            [d("wide", 3, seq=0), d("nar", 1, seq=1)],
        )
        assert not packing.unplaced
        assert packing.carve("wide").width == 2
        assert packing.carve("wide").degraded

    def test_degraded_flag_tracks_want(self):
        packing = FairSharePlacer().pack(
            {0: [0, 1]}, [d("a", 2, seq=0), d("b", 2, seq=1)]
        )
        assert packing.degraded_ids == ["a", "b"]

    def test_stability_keeps_old_node(self):
        placer = FairSharePlacer()
        first = placer.pack({0: [0, 1], 1: [2, 3]}, [d("a", 2, seq=0)])
        node = first.carve("a").node
        second = placer.pack(
            {0: [0, 1], 1: [2, 3]},
            [d("a", 2, seq=0), d("b", 1, seq=1)],
            pinned=first.carves,
        )
        assert second.carve("a").node == node
        assert second.carve("a").procs == first.carve("a").procs

    def test_duplicate_demand_rejected(self):
        with pytest.raises(PackingError, match="duplicate"):
            FairSharePlacer().pack({0: [0]}, [d("a", 1), d("a", 1)])

    def test_zero_grant_tenants_reported_unplaced(self):
        packing = FairSharePlacer().pack(
            {0: [0]}, [d("a", 1, seq=0), d("b", 1, seq=1)]
        )
        assert packing.unplaced == ["b"]
        assert "a" in packing and "b" not in packing

    def test_demand_validation(self):
        with pytest.raises(PackingError):
            Demand(tenant_id="x", want=0)
        with pytest.raises(PackingError):
            Demand(tenant_id="x", want=1, weight=0.0)

    def test_carve_accessors(self):
        c = Carve("t", 0, (0, 1), want=3)
        assert c.width == 2 and c.degraded
        packing = FairSharePlacer().pack({0: [0]}, [d("a", 1)])
        with pytest.raises(PackingError, match="no carve"):
            packing.carve("ghost")
