"""Shared fixtures for the fleet suite: tiny, fast tenant classes."""

from __future__ import annotations

import pytest

from repro.fleet import TenantSpec
from repro.graph.builders import chain_graph
from repro.state import State, StateSpace

SPACE = StateSpace.range("n_models", 1, 2)


def make_spec(
    name: str = "app",
    max_width: int = 2,
    priority: int = 0,
    weight: float = 1.0,
    n_tasks: int = 2,
) -> TenantSpec:
    graph = chain_graph([0.05 * (i + 1) for i in range(n_tasks)], name=name)
    return TenantSpec(
        name=name,
        graph=graph,
        space=SPACE,
        initial=State(n_models=1),
        max_width=max_width,
        priority=priority,
        weight=weight,
    )


@pytest.fixture
def spec():
    return make_spec()
