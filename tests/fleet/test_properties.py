"""Property tests over seeded random tenant arrival/departure sequences.

A seeded ``random.Random`` drives a churn script — arrivals of random
tenant classes, departures of random live tenants, random regime flips —
against one :class:`FleetManager`.  After *every* event the fleet
invariants must hold:

* **no capacity overflow** — per-node usage never exceeds the node's
  processor count, and no physical processor is granted twice;
* **admitted implies feasible** — every live tenant holds a carve of
  width >= 1 on a single node and an active schedule for its current
  state at its granted width;
* **fair share never starves** — no live tenant is at width 0;
* **departures reclaim capacity** — when every tenant has departed the
  packing is empty and the full capacity is free again.
"""

from __future__ import annotations

import random

import pytest

from repro.fleet import FleetManager
from repro.sim.cluster import ClusterSpec
from repro.state import State

from .conftest import make_spec

SEEDS = list(range(8))

CLASSES = [
    dict(name="small", max_width=1, priority=0, weight=1.0),
    dict(name="mid", max_width=2, priority=1, weight=2.0),
    dict(name="wide", max_width=2, priority=2, weight=1.0, n_tasks=3),
]


def check_invariants(mgr: FleetManager, cluster: ClusterSpec) -> None:
    packing = mgr.packing
    by_node: dict[int, list[int]] = {}
    for tid, carve in packing.carves.items():
        assert tid in mgr.tenants, f"carve for unknown tenant {tid}"
        assert carve.width >= 1, f"starved tenant {tid}"
        by_node.setdefault(carve.node, []).extend(carve.procs)
    for node, procs in by_node.items():
        assert len(procs) == len(set(procs)), f"double-granted proc on node {node}"
        assert len(procs) <= cluster.procs_per_node, f"node {node} overcommitted"
    for tid, tenant in mgr.tenants.items():
        assert tenant.granted >= 1, f"live tenant {tid} granted nothing"
        assert tid in packing, f"live tenant {tid} missing from packing"
        assert tenant.active is not None
        # Feasible: the active solution is the pre-built one for exactly
        # (current state, granted width).
        expect = tenant.tables[tenant.granted].lookup(tenant.state)
        assert tenant.active is expect


@pytest.mark.parametrize("seed", SEEDS)
def test_random_churn_preserves_invariants(seed):
    rng = random.Random(seed)
    cluster = ClusterSpec(nodes=rng.randint(1, 3), procs_per_node=rng.randint(2, 4))
    mgr = FleetManager(cluster)
    live: list[str] = []
    t = 0.0
    for _ in range(30):
        t += rng.random()
        roll = rng.random()
        if roll < 0.5 or not live:
            decision = mgr.admit(
                make_spec(**rng.choice(CLASSES)), time=t
            )
            if decision.action == "admitted":
                live.append(decision.tenant_id)
        elif roll < 0.8:
            tid = rng.choice(live)
            live.remove(tid)
            mgr.depart(tid, time=t)
            # A drain may have admitted queued tenants; resync.
            live = [x for x in live if x in mgr.tenants]
            live += [x for x in mgr.tenants if x not in live]
        else:
            tid = rng.choice(live)
            mgr.on_regime(tid, State(n_models=rng.randint(1, 2)), time=t)
        live = [x for x in mgr.tenants]
        check_invariants(mgr, cluster)
    # The analysis rule agrees with the invariant checker.
    if mgr.admitted_count:
        assert mgr.verify().ok(strict=True)


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_departures_reclaim_all_capacity(seed):
    rng = random.Random(seed)
    cluster = ClusterSpec(nodes=2, procs_per_node=3)
    mgr = FleetManager(cluster)
    admitted = []
    for i in range(6):
        d = mgr.admit(make_spec(**rng.choice(CLASSES)), time=float(i))
        if d.action == "admitted":
            admitted.append(d.tenant_id)
    assert admitted
    order = list(mgr.tenants)
    rng.shuffle(order)
    for j, tid in enumerate(order):
        mgr.depart(tid, time=10.0 + j)
        # Queue-drain may admit replacements; depart those too.
        order.extend(x for x in mgr.tenants if x not in order)
    assert mgr.admitted_count == 0 and mgr.queued_count == 0
    assert mgr.packing.used == 0
    assert mgr.capacity() == cluster.total_processors


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_fair_share_never_starves_under_pressure(seed):
    """Saturate a tiny cluster with wide demands: everyone keeps >= 1."""
    rng = random.Random(seed)
    mgr = FleetManager(ClusterSpec(nodes=1, procs_per_node=3))
    tids = []
    for i in range(3):
        d = mgr.admit(make_spec(name=f"w{i}", max_width=2, priority=i), time=float(i))
        assert d.action == "admitted"
        tids.append(d.tenant_id)
    for i, tid in enumerate(tids):
        mgr.on_regime(tid, State(n_models=2), time=10.0 + i)
    widths = sorted(mgr.tenant(t).granted for t in tids)
    # Three demand-2 tenants on three processors: the floor consumes all
    # capacity, so fair share degrades everyone to width 1 — nobody
    # starves and nobody is evicted.
    assert widths == [1, 1, 1]
    assert sorted(mgr.packing.degraded_ids) == sorted(tids)
    # One departure frees two processors; the highest-priority survivor
    # is promoted back to its full demand.
    mgr.depart(tids[0], time=20.0)
    assert mgr.tenant(tids[-1]).granted == 2
