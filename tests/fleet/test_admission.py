"""Admission queue ordering, policy validation, and stats."""

from __future__ import annotations

import pytest

from repro.errors import AdmissionError
from repro.fleet.admission import (
    AdmissionDecision,
    AdmissionPolicy,
    AdmissionQueue,
    AdmissionStats,
)
from repro.fleet.tenant import Tenant

from .conftest import make_spec


def queued_tenant(tid: str, seq: int, priority: int = 0) -> Tenant:
    spec = make_spec(priority=priority)
    return Tenant(id=tid, spec=spec, state=spec.initial, seq=seq)


class TestQueueOrdering:
    def test_fifo_within_priority(self):
        q = AdmissionQueue()
        q.push(queued_tenant("a", seq=1))
        q.push(queued_tenant("b", seq=2))
        q.push(queued_tenant("c", seq=3))
        assert [q.pop().id for _ in range(3)] == ["a", "b", "c"]

    def test_higher_priority_jumps_queue(self):
        q = AdmissionQueue()
        q.push(queued_tenant("lo", seq=1, priority=0))
        q.push(queued_tenant("hi", seq=2, priority=5))
        assert q.pop().id == "hi"
        assert q.pop().id == "lo"

    def test_peek_does_not_remove(self):
        q = AdmissionQueue()
        q.push(queued_tenant("a", seq=1))
        assert q.peek().id == "a"
        assert len(q) == 1

    def test_remove_is_lazy_deleted(self):
        q = AdmissionQueue()
        q.push(queued_tenant("a", seq=1))
        q.push(queued_tenant("b", seq=2))
        gone = q.remove("a")
        assert gone.id == "a"
        assert "a" not in q and len(q) == 1
        assert q.peek().id == "b"
        assert q.pop().id == "b"

    def test_remove_missing_returns_none(self):
        assert AdmissionQueue().remove("ghost") is None

    def test_pop_empty_raises(self):
        with pytest.raises(AdmissionError, match="empty"):
            AdmissionQueue().pop()

    def test_duplicate_push_rejected(self):
        q = AdmissionQueue()
        q.push(queued_tenant("a", seq=1))
        with pytest.raises(AdmissionError, match="already queued"):
            q.push(queued_tenant("a", seq=2))


class TestPolicy:
    def test_defaults_queue_unbounded(self):
        p = AdmissionPolicy()
        assert p.mode == "queue" and p.queue_limit is None

    def test_unknown_mode(self):
        with pytest.raises(AdmissionError, match="unknown admission mode"):
            AdmissionPolicy(mode="drop")

    def test_negative_limit(self):
        with pytest.raises(AdmissionError, match="queue_limit"):
            AdmissionPolicy(queue_limit=-1)


class TestStats:
    def test_record_counts_by_action(self):
        s = AdmissionStats()
        s.offered = 3
        s.record(AdmissionDecision(0.0, "a", "admitted"))
        s.record(AdmissionDecision(1.0, "b", "queued"))
        s.record(AdmissionDecision(2.0, "c", "rejected"))
        assert (s.admitted, s.queued, s.rejected) == (1, 1, 1)
        assert s.admission_rate == pytest.approx(1 / 3)
        assert len(s.decisions) == 3

    def test_rate_of_nothing_is_zero(self):
        assert AdmissionStats().admission_rate == 0.0
