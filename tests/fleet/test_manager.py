"""FleetManager flows: admit/queue/drain, regimes, preemption, crashes."""

from __future__ import annotations

import pytest

from repro.errors import TenantError
from repro.faults.view import ClusterView
from repro.fleet import AdmissionPolicy, FleetManager
from repro.sim.cluster import ClusterSpec
from repro.sim.engine import Simulator
from repro.state import State

from .conftest import make_spec


def small_fleet(procs: int = 4, **kwargs) -> FleetManager:
    return FleetManager(ClusterSpec(nodes=1, procs_per_node=procs), **kwargs)


class TestAdmission:
    def test_admit_until_full_then_queue(self, spec):
        mgr = small_fleet(procs=2)
        a = mgr.admit(spec, time=0.0)
        b = mgr.admit(spec, time=1.0)
        c = mgr.admit(spec, time=2.0)
        assert (a.action, b.action, c.action) == ("admitted", "admitted", "queued")
        assert mgr.admitted_count == 2 and mgr.queued_count == 1

    def test_reject_mode_never_queues(self, spec):
        mgr = small_fleet(procs=1, admission=AdmissionPolicy(mode="reject"))
        assert mgr.admit(spec, time=0.0).action == "admitted"
        d = mgr.admit(spec, time=1.0)
        assert d.action == "rejected" and "no feasible placement" in d.reason

    def test_full_queue_rejects(self, spec):
        mgr = small_fleet(procs=1, admission=AdmissionPolicy(queue_limit=1))
        mgr.admit(spec, time=0.0)
        assert mgr.admit(spec, time=1.0).action == "queued"
        d = mgr.admit(spec, time=2.0)
        assert d.action == "rejected" and "queue full" in d.reason

    def test_admitted_tenant_has_active_schedule(self, spec):
        mgr = small_fleet()
        decision = mgr.admit(spec, time=0.0)
        tenant = mgr.tenant(decision.tenant_id)
        assert tenant.granted >= 1
        assert tenant.active is not None
        assert tenant.active.iteration.latency > 0

    def test_ids_are_unique_per_instance(self, spec):
        mgr = small_fleet()
        ids = {mgr.admit(spec, time=float(i)).tenant_id for i in range(3)}
        assert len(ids) == 3

    def test_unknown_tenant_lookup(self):
        with pytest.raises(TenantError, match="unknown tenant"):
            small_fleet().tenant("ghost")


class TestDeparture:
    def test_departure_reclaims_capacity_and_drains_queue(self, spec):
        mgr = small_fleet(procs=2)
        first = mgr.admit(spec, time=0.0)
        mgr.admit(spec, time=1.0)
        queued = mgr.admit(spec, time=2.0)
        assert queued.action == "queued"
        mgr.depart(first.tenant_id, time=3.0)
        assert mgr.admitted_count == 2 and mgr.queued_count == 0
        assert queued.tenant_id in mgr.tenants

    def test_departed_counters_survive(self, spec):
        mgr = small_fleet()
        tid = mgr.admit(spec, time=0.0).tenant_id
        gone = mgr.depart(tid, time=1.0)
        assert gone.departed_at == 1.0 and gone.granted == 0
        assert mgr.departed == [gone] and mgr.departures == 1

    def test_departing_a_queued_tenant_never_repacks(self, spec):
        mgr = small_fleet(procs=1)
        mgr.admit(spec, time=0.0)
        queued = mgr.admit(spec, time=1.0)
        repacks_before = len(mgr.repacks)
        gone = mgr.depart(queued.tenant_id, time=2.0)
        assert gone.id == queued.tenant_id
        assert len(mgr.repacks) == repacks_before

    def test_unknown_departure_raises(self, spec):
        with pytest.raises(TenantError, match="unknown tenant"):
            small_fleet().depart("ghost", time=0.0)


class TestRegimeAndPreemption:
    def test_regime_with_same_demand_is_local(self, spec):
        # width policy is state-driven; same demand -> no fleet repack.
        mgr = small_fleet()
        tid = mgr.admit(make_spec(max_width=1), time=0.0).tenant_id
        repacks = len(mgr.repacks)
        rec = mgr.on_regime(tid, State(n_models=2), time=1.0)
        assert rec is None
        assert len(mgr.repacks) == repacks
        assert mgr.tenant(tid).state == State(n_models=2)

    def test_regime_with_new_demand_repacks(self):
        mgr = small_fleet(procs=4)
        tid = mgr.admit(make_spec(max_width=2), time=0.0).tenant_id
        rec = mgr.on_regime(tid, State(n_models=2), time=1.0)
        assert rec is not None and rec.cause == "regime"
        assert mgr.tenant(tid).granted == 2

    def test_contention_demotes_to_degraded_schedule(self):
        # Two tenants demanding width 2 on 3 processors: fair share gives
        # the high-priority one 2 and demotes the other to a pre-built
        # width-1 schedule instead of killing it.
        mgr = small_fleet(procs=3)
        lo = mgr.admit(make_spec(name="lo", max_width=2, priority=0), time=0.0)
        hi = mgr.admit(make_spec(name="hi", max_width=2, priority=1), time=1.0)
        mgr.on_regime(lo.tenant_id, State(n_models=2), time=2.0)
        mgr.on_regime(hi.tenant_id, State(n_models=2), time=3.0)
        t_lo, t_hi = mgr.tenant(lo.tenant_id), mgr.tenant(hi.tenant_id)
        assert t_hi.granted == 2
        assert t_lo.granted == 1 and t_lo.demand() == 2  # degraded
        assert t_lo.demotions >= 1
        assert t_lo.active is mgr.tenant(lo.tenant_id).tables[1].lookup(t_lo.state)

    def test_departure_promotes_degraded_back(self):
        mgr = small_fleet(procs=3)
        lo = mgr.admit(make_spec(name="lo", max_width=2, priority=0), time=0.0)
        hi = mgr.admit(make_spec(name="hi", max_width=2, priority=1), time=1.0)
        mgr.on_regime(lo.tenant_id, State(n_models=2), time=2.0)
        mgr.on_regime(hi.tenant_id, State(n_models=2), time=3.0)
        mgr.depart(hi.tenant_id, time=4.0)
        t_lo = mgr.tenant(lo.tenant_id)
        assert t_lo.granted == 2 and t_lo.promotions >= 1

    def test_regime_outside_space_rejected(self, spec):
        mgr = small_fleet()
        tid = mgr.admit(spec, time=0.0).tenant_id
        with pytest.raises(TenantError, match="outside"):
            mgr.on_regime(tid, State(n_models=99), time=1.0)

    def test_transition_accounting_accumulates(self):
        mgr = small_fleet(procs=4)
        tid = mgr.admit(make_spec(max_width=2), time=0.0).tenant_id
        mgr.on_regime(tid, State(n_models=2), time=1.0)
        tenant = mgr.tenant(tid)
        assert tenant.migrations >= 1
        assert tenant.total_stall >= 0.0


class TestClusterChurn:
    def test_node_crash_triggers_repack(self, spec):
        view = ClusterView(Simulator(), ClusterSpec(nodes=2, procs_per_node=2))
        mgr = FleetManager(view)
        a = mgr.admit(spec, time=0.0)
        b = mgr.admit(spec, time=1.0)
        view.kill_node(1)
        assert mgr.capacity() == 2
        causes = [r.cause for r in mgr.repacks]
        assert any(c.startswith("cluster-") for c in causes)
        # Both tenants still fit (floor 1 each on the surviving node).
        assert mgr.tenant(a.tenant_id).granted >= 1
        assert mgr.tenant(b.tenant_id).granted >= 1
        assert mgr.verify().ok(strict=True)

    def test_crash_overflow_requeues_lowest_priority(self):
        view = ClusterView(Simulator(), ClusterSpec(nodes=2, procs_per_node=1))
        mgr = FleetManager(view)
        lo = mgr.admit(make_spec(name="lo", max_width=1, priority=0), time=0.0)
        hi = mgr.admit(make_spec(name="hi", max_width=1, priority=1), time=1.0)
        view.kill_node(0 if mgr.packing.carve(lo.tenant_id).node == 0 else 1)
        # One processor left: the low-priority tenant is back in the queue.
        assert mgr.admitted_count == 1 and mgr.queued_count == 1
        assert hi.tenant_id in mgr.tenants
        assert lo.tenant_id in mgr.queue

    def test_recovery_drains_queue(self, spec):
        view = ClusterView(Simulator(), ClusterSpec(nodes=2, procs_per_node=1))
        mgr = FleetManager(view)
        mgr.admit(spec, time=0.0)
        mgr.admit(spec, time=1.0)
        view.kill_node(1)
        assert mgr.queued_count == 1
        view.recover_node(1)
        assert mgr.queued_count == 0 and mgr.admitted_count == 2


class TestVerify:
    def test_live_fleet_passes_verification(self, spec):
        mgr = small_fleet(procs=4)
        for i in range(3):
            mgr.admit(spec, time=float(i))
        report = mgr.verify(strict=True)
        assert report.ok(strict=True)

    def test_repr_smoke(self, spec):
        mgr = small_fleet()
        mgr.admit(spec, time=0.0)
        assert "FleetManager(1 tenants" in repr(mgr)


class TestSolvePolicy:
    """The repro.approx ladder rung behind every tenant table build."""

    def test_bounded_rung_serves_certified_tenants(self, spec):
        mgr = small_fleet(procs=4, solve_policy="bounded:0.5")
        for i in range(3):
            mgr.admit(spec, time=float(i))
        for tenant in mgr.tenants.values():
            cert = tenant.active.certificate
            assert cert is not None and cert.policy == "bounded"
            assert cert.gap_bound <= 0.5 + 1e-9
        # F001 + S-rules (incl. S013 gap claims) must hold on every rung.
        assert mgr.verify(strict=True).ok(strict=True)

    def test_regime_change_rebuild_keeps_the_rung(self, spec):
        mgr = small_fleet(procs=4, solve_policy="bounded:0.5")
        tid = mgr.admit(spec, time=0.0).tenant_id
        mgr.on_regime(tid, State(n_models=2), time=1.0)
        cert = mgr.tenant(tid).active.certificate
        assert cert is not None and cert.policy == "bounded"
        assert mgr.verify(strict=True).ok(strict=True)
