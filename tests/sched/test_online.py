"""Unit tests for the pthread-like on-line scheduler."""

from __future__ import annotations

import pytest

from repro.errors import ProcessError
from repro.sched.online import PthreadScheduler
from repro.sim.cluster import SINGLE_NODE_SMP
from repro.sim.engine import Simulator


@pytest.fixture
def bound():
    sim = Simulator()
    sched = PthreadScheduler(quantum=0.01)
    sched.bind(sim, SINGLE_NODE_SMP(2))
    return sim, sched


class TestGranting:
    def test_immediate_grant_when_free(self, bound):
        sim, sched = bound
        ev = sched.acquire("a")
        assert ev.triggered and ev.value == 0

    def test_lowest_index_processor_first(self, bound):
        sim, sched = bound
        assert sched.acquire("a").value == 0
        assert sched.acquire("b").value == 1

    def test_queue_when_busy(self, bound):
        sim, sched = bound
        sched.acquire("a")
        sched.acquire("b")
        ev = sched.acquire("c")
        assert not ev.triggered and sched.ready_queue_length == 1

    def test_release_hands_to_oldest_waiter(self, bound):
        sim, sched = bound
        sched.acquire("a")
        sched.acquire("b")
        c = sched.acquire("c")
        d = sched.acquire("d")
        sched.release("a", 0)
        assert c.triggered and c.value == 0 and not d.triggered

    def test_one_processor_per_thread(self, bound):
        sim, sched = bound
        sched.acquire("a")
        with pytest.raises(ProcessError):
            sched.acquire("a")

    def test_release_wrong_processor(self, bound):
        sim, sched = bound
        sched.acquire("a")
        with pytest.raises(ProcessError):
            sched.release("a", 1)

    def test_release_returns_to_free_pool(self, bound):
        sim, sched = bound
        sched.acquire("a")
        sched.release("a", 0)
        assert sched.acquire("b").value == 0

    def test_grant_counter(self, bound):
        sim, sched = bound
        sched.acquire("a")
        sched.acquire("b")
        assert sched.grants == 2


class TestConfiguration:
    def test_invalid_quantum(self):
        with pytest.raises(ProcessError):
            PthreadScheduler(quantum=0.0)

    def test_unbound_acquire_rejected(self):
        with pytest.raises(ProcessError):
            PthreadScheduler().acquire("a")

    def test_jitter_is_seeded_deterministic(self):
        """Same jitter seed -> identical execution trace."""
        from repro.runtime.dynamic import DynamicExecutor
        from repro.graph.builders import fork_join_graph
        from repro.state import State

        def run(seed):
            g = fork_join_graph(0.001, [0.05, 0.04, 0.03], 0.001, period=0.05)
            sched = PthreadScheduler(quantum=0.01, jitter_seed=seed)
            result = DynamicExecutor(
                g, State(n_models=1), SINGLE_NODE_SMP(2), sched
            ).run(horizon=2.0, max_timestamps=10)
            return [(s.proc, s.task, s.timestamp, s.start) for s in result.trace.spans]

        assert run(7) == run(7)
        assert run(7) != run(8)  # and the seed actually matters


class TestRoundRobinBehaviour:
    def test_threads_interleave_in_quanta(self):
        """Two CPU-bound threads on one processor alternate per quantum."""
        from repro.runtime.dynamic import DynamicExecutor
        from repro.graph.builders import fork_join_graph
        from repro.sim.cluster import SINGLE_NODE_SMP
        from repro.state import State

        g = fork_join_graph(0.001, [0.05, 0.05], 0.001, period=None)
        sched = PthreadScheduler(quantum=0.01)
        result = DynamicExecutor(
            g, State(n_models=1), SINGLE_NODE_SMP(1), sched
        ).run(horizon=1.0, max_timestamps=2)
        branch_spans = [
            s for s in result.trace.spans if s.task.startswith("branch")
        ]
        preempted = [s for s in branch_spans if s.preempted]
        assert preempted, "time slicing must preempt mid-item"
        # Alternation: consecutive branch spans on proc 0 switch tasks.
        tasks = [s.task for s in branch_spans[:6]]
        assert any(a != b for a, b in zip(tasks, tasks[1:]))
