"""Unit tests for the earliest-timestamp-first on-line scheduler."""

from __future__ import annotations

import pytest

from repro.errors import ProcessError
from repro.sched.priority import TimestampPriorityScheduler
from repro.sim.cluster import SINGLE_NODE_SMP
from repro.sim.engine import Simulator


@pytest.fixture
def bound():
    sim = Simulator()
    sched = TimestampPriorityScheduler(quantum=0.01)
    sched.bind(sim, SINGLE_NODE_SMP(1))
    return sim, sched


class TestPriorityGranting:
    def test_lowest_timestamp_wins(self, bound):
        sim, sched = bound
        sched.acquire("hold", priority=0.0)
        late = sched.acquire("late", priority=9.0)
        early = sched.acquire("early", priority=2.0)
        sched.release("hold", 0)
        assert early.triggered and not late.triggered

    def test_fifo_within_equal_priority(self, bound):
        sim, sched = bound
        sched.acquire("hold", priority=0.0)
        first = sched.acquire("first", priority=5.0)
        second = sched.acquire("second", priority=5.0)
        sched.release("hold", 0)
        assert first.triggered and not second.triggered

    def test_missing_priority_sorts_last(self, bound):
        sim, sched = bound
        sched.acquire("hold", priority=0.0)
        nameless = sched.acquire("nameless")
        ts9 = sched.acquire("ts9", priority=9.0)
        sched.release("hold", 0)
        assert ts9.triggered and not nameless.triggered

    def test_free_processor_granted_immediately(self, bound):
        sim, sched = bound
        ev = sched.acquire("a", priority=3.0)
        assert ev.triggered and ev.value == 0

    def test_double_acquire_rejected(self, bound):
        sim, sched = bound
        sched.acquire("a", priority=0.0)
        with pytest.raises(ProcessError):
            sched.acquire("a", priority=1.0)

    def test_wrong_release_rejected(self, bound):
        sim, sched = bound
        sched.acquire("a", priority=0.0)
        with pytest.raises(ProcessError):
            sched.release("a", 3)

    def test_invalid_quantum(self):
        with pytest.raises(ProcessError):
            TimestampPriorityScheduler(quantum=0.0)

    def test_unbound_rejected(self):
        with pytest.raises(ProcessError):
            TimestampPriorityScheduler().acquire("a")


class TestEndToEnd:
    def test_older_frames_finish_first_under_priority(self):
        """With in-order processing and contention, the priority scheduler
        completes frames strictly in timestamp order and never lets a new
        frame overtake an old one."""
        from repro.graph.builders import fork_join_graph
        from repro.runtime.dynamic import DynamicExecutor
        from repro.state import State

        g = fork_join_graph(0.001, [0.2, 0.2, 0.2], 0.001, period=0.05)
        result = DynamicExecutor(
            g, State(n_models=1), SINGLE_NODE_SMP(2),
            TimestampPriorityScheduler(quantum=0.01), input_policy="inorder",
        ).run(horizon=10.0, max_timestamps=8)
        seq = [result.completion_times[ts] for ts in sorted(result.completion_times)]
        assert seq == sorted(seq)
        assert result.completed_count == 8

    def test_ablation_shape(self):
        """Timestamp priority alone does not close the gap to the
        pre-computed optimal schedule — the thesis of the paper."""
        from repro.experiments.ablations import online_knowledge

        rows = {r.scheduler: r for r in online_knowledge(horizon=60.0)}
        optimal = rows["pre-computed optimal"]
        priority = rows["timestamp-priority"]
        assert optimal.latency < priority.latency * 0.9
        assert optimal.coverage > priority.coverage * 2
