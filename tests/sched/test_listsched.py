"""Unit tests for the HEFT-style list scheduler and hand tuning."""

from __future__ import annotations

import pytest

from repro.core.optimal import OptimalScheduler
from repro.graph.builders import chain_graph, fork_join_graph
from repro.sched.handtuned import with_source_period
from repro.sched.listsched import list_schedule
from repro.sim.cluster import SINGLE_NODE_SMP, ClusterSpec
from repro.sim.network import CommCost, CommModel


class TestListSchedule:
    def test_legal_on_tracker(self, tracker_graph, m8, smp4):
        s = list_schedule(tracker_graph, m8, smp4)
        s.validate(tracker_graph, m8, smp4)  # would raise if illegal

    def test_matches_optimum_on_chain(self, m1):
        g = chain_graph([1.0, 2.0])
        heur = list_schedule(g, m1, SINGLE_NODE_SMP(2))
        opt = OptimalScheduler(SINGLE_NODE_SMP(2)).solve(g, m1)
        assert heur.latency == pytest.approx(opt.latency)

    def test_matches_optimum_on_tracker(self, tracker_graph, m8, smp4):
        """On this graph the greedy heuristic happens to hit the optimum —
        worth pinning, since the benches compare their planning costs."""
        heur = list_schedule(tracker_graph, m8, smp4)
        opt = OptimalScheduler(smp4).solve(tracker_graph, m8)
        assert heur.latency == pytest.approx(opt.latency, rel=0.05)

    def test_never_beats_optimum(self, m8):
        g = fork_join_graph(0.1, [1.0, 2.0, 0.5], 0.1)
        for procs in (1, 2, 4):
            cluster = SINGLE_NODE_SMP(procs)
            heur = list_schedule(g, m8, cluster)
            opt = OptimalScheduler(cluster).solve(g, m8)
            assert heur.latency >= opt.latency - 1e-9

    def test_respects_comm_model(self, m1):
        g = chain_graph([1.0, 1.0], item_bytes=1)
        cluster = ClusterSpec(nodes=2, procs_per_node=1)
        comm = CommModel(
            cluster,
            intra_node=CommCost(0.0, float("inf")),
            inter_node=CommCost(100.0, float("inf")),
        )
        s = list_schedule(g, m1, cluster, comm=comm)
        s.validate(g, m1, cluster, comm)
        assert s.latency == pytest.approx(2.0)  # stays on one node


class TestWithSourcePeriod:
    def test_sets_period_on_sources_only(self, tracker_graph):
        g = with_source_period(tracker_graph, 0.5)
        assert g.task("T1").period == 0.5
        assert g.task("T4").period is None

    def test_none_clears_period(self, tracker_graph):
        g = with_source_period(with_source_period(tracker_graph, 1.0), None)
        assert g.task("T1").period is None

    def test_preserves_everything_else(self, tracker_graph, m8):
        g = with_source_period(tracker_graph, 0.5)
        assert g.task_names == tracker_graph.task_names
        assert g.task("T4").cost(m8) == tracker_graph.task("T4").cost(m8)
        assert g.task("T4").data_parallel is tracker_graph.task("T4").data_parallel


class TestSameProcPlacementHeuristic:
    def test_heuristic_uses_producer_processor_under_costly_comm(self, m1):
        """The greedy scheduler must also consider the predecessor's own
        processor, where the transfer is free."""
        g = chain_graph([1.0, 1.0], item_bytes=100)
        cluster = SINGLE_NODE_SMP(2)
        comm = CommModel(
            cluster, intra_node=CommCost(latency=10.0, bandwidth=float("inf"))
        )
        s = list_schedule(g, m1, cluster, comm=comm)
        assert s.latency == pytest.approx(2.0)
        assert s.placement("t0").primary == s.placement("t1").primary
