"""Tests for the benchmark trajectory harness (``benchmarks/trajectory.py``).

The harness is a standalone CLI living next to the ``BENCH_*.json``
envelopes it consumes, so it is imported here by path.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[1] / "benchmarks"
if str(BENCH_DIR) not in sys.path:  # _schema + trajectory live there
    sys.path.insert(0, str(BENCH_DIR))

import trajectory  # noqa: E402
from _schema import write_bench  # noqa: E402


def make_envelope(tmp_path: Path, name: str, results: dict) -> Path:
    return write_bench(name, results, tmp_path / f"BENCH_{name}.json")


SAMPLE = {
    "quick": False,
    "substrates": {
        "cpus": 4,
        "threaded": {"wall_s": 2.0},
        "ladder": {
            "4": {"wall_s": 1.0, "speedup_over_threaded": 2.0,
                  "asserted": True},
            "8": {"wall_s": 9.9, "speedup_over_threaded": 0.5,
                  "asserted": False},
        },
        "skipped": None,
    },
    "broker_roundtrips": {
        "coalesced": {"marginal_roundtrips_per_frame": 5.0},
        "reduction_ratio": 3.4,
    },
}


class TestFlatten:
    def test_numeric_leaves_dotted_paths(self):
        flat = trajectory.flatten_metrics(SAMPLE)
        assert flat["substrates.threaded.wall_s"] == 2.0
        assert flat["broker_roundtrips.reduction_ratio"] == 3.4

    def test_booleans_dropped(self):
        flat = trajectory.flatten_metrics(SAMPLE)
        assert "quick" not in flat
        assert not any(k.endswith("asserted") for k in flat)

    def test_unasserted_subtrees_dropped(self):
        flat = trajectory.flatten_metrics(SAMPLE)
        assert "substrates.ladder.4.wall_s" in flat
        assert not any(".8." in k for k in flat)


class TestAppendAndCheck:
    def run_cycle(self, tmp_path: Path, results: dict) -> Path:
        make_envelope(tmp_path, "substrates", results)
        out = tmp_path / trajectory.TRAJECTORY_NAME
        trajectory.append_entry(tmp_path, out)
        return out

    def test_append_creates_and_extends(self, tmp_path):
        out = self.run_cycle(tmp_path, SAMPLE)
        assert len(trajectory.load_trajectory(out)) == 1
        trajectory.append_entry(tmp_path, out)
        entries = trajectory.load_trajectory(out)
        assert len(entries) == 2
        assert "substrates" in entries[-1]["benches"]

    def test_append_without_envelopes_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            trajectory.append_entry(tmp_path)

    def test_first_entry_passes_vacuously(self, tmp_path):
        out = self.run_cycle(tmp_path, SAMPLE)
        assert trajectory.check_regression(out) == []

    def test_identical_entries_pass(self, tmp_path):
        out = self.run_cycle(tmp_path, SAMPLE)
        trajectory.append_entry(tmp_path, out)
        assert trajectory.check_regression(out) == []

    def _mutated(self, path: str, factor: float) -> dict:
        new = json.loads(json.dumps(SAMPLE))  # deep copy
        node = new
        *parents, leaf = path.split(".")
        for part in parents:
            node = node[part]
        node[leaf] *= factor
        return new

    def test_lower_is_better_regression_fails(self, tmp_path):
        out = self.run_cycle(tmp_path, SAMPLE)
        make_envelope(tmp_path, "substrates",
                      self._mutated("substrates.threaded.wall_s", 1.2))
        trajectory.append_entry(tmp_path, out)
        failures = trajectory.check_regression(out)
        assert any("threaded.wall_s" in f for f in failures)

    def test_higher_is_better_regression_fails(self, tmp_path):
        out = self.run_cycle(tmp_path, SAMPLE)
        make_envelope(
            tmp_path, "substrates",
            self._mutated("broker_roundtrips.reduction_ratio", 0.5),
        )
        trajectory.append_entry(tmp_path, out)
        failures = trajectory.check_regression(out)
        assert any("reduction_ratio" in f for f in failures)

    def test_within_tolerance_passes(self, tmp_path):
        out = self.run_cycle(tmp_path, SAMPLE)
        make_envelope(tmp_path, "substrates",
                      self._mutated("substrates.threaded.wall_s", 1.05))
        trajectory.append_entry(tmp_path, out)
        assert trajectory.check_regression(out) == []

    def test_ungated_metrics_never_fail(self, tmp_path):
        out = self.run_cycle(tmp_path, SAMPLE)
        make_envelope(tmp_path, "substrates",
                      self._mutated("substrates.cpus", 100.0))
        trajectory.append_entry(tmp_path, out)
        assert trajectory.check_regression(out) == []

    def test_different_host_not_compared(self, tmp_path):
        out = self.run_cycle(tmp_path, SAMPLE)
        make_envelope(tmp_path, "substrates",
                      self._mutated("substrates.threaded.wall_s", 2.0))
        trajectory.append_entry(tmp_path, out)
        entries = trajectory.load_trajectory(out)
        entries[0]["host"]["cpus"] = 999  # baseline came from another host
        out.write_text(json.dumps({"schema_version": 1, "entries": entries}))
        assert trajectory.check_regression(out) == []

    def test_quick_mode_mismatch_not_compared(self, tmp_path):
        out = self.run_cycle(tmp_path, SAMPLE)
        quick = json.loads(json.dumps(SAMPLE))
        quick["quick"] = True
        quick["substrates"]["threaded"]["wall_s"] = 99.0
        make_envelope(tmp_path, "substrates", quick)
        trajectory.append_entry(tmp_path, out)
        assert trajectory.check_regression(out) == []


class TestCli:
    def test_append_then_check_roundtrip(self, tmp_path, capsys):
        make_envelope(tmp_path, "substrates", SAMPLE)
        assert trajectory.main(["append", "--dir", str(tmp_path)]) == 0
        assert trajectory.main(["check", "--dir", str(tmp_path)]) == 0
        assert "passed" in capsys.readouterr().out

    def test_check_exits_nonzero_on_regression(self, tmp_path, capsys):
        make_envelope(tmp_path, "substrates", SAMPLE)
        trajectory.main(["append", "--dir", str(tmp_path)])
        bad = json.loads(json.dumps(SAMPLE))
        bad["substrates"]["threaded"]["wall_s"] = 99.0
        make_envelope(tmp_path, "substrates", bad)
        trajectory.main(["append", "--dir", str(tmp_path)])
        assert trajectory.main(["check", "--dir", str(tmp_path)]) == 1
        assert "REGRESSION" in capsys.readouterr().err
