"""Unit tests for the speech application."""

from __future__ import annotations

import pytest

from repro.apps.speech import SPEECH_COSTS, build_speech_graph, speech_states
from repro.core.optimal import OptimalScheduler
from repro.core.table import ScheduleTable
from repro.errors import GraphError
from repro.sim.cluster import SINGLE_NODE_SMP
from repro.state import State


class TestSpeechGraph:
    def test_structure(self):
        g = build_speech_graph()
        assert g.topo_order() == [
            "microphone", "vad", "features", "decoder", "dialogue"
        ]
        assert g.source_tasks() == ["microphone"]
        assert g.sink_tasks() == ["dialogue"]
        assert g.channel("acoustic_model").static

    def test_decoder_dominates_and_scales(self):
        s1, s4 = State(n_speakers=1), State(n_speakers=4)
        dec = SPEECH_COSTS["decoder"]
        assert dec(s4) > 3 * dec(s1)
        assert dec(s4) > 5 * SPEECH_COSTS["vad"](s4)

    def test_feature_channel_size_scales_with_speakers(self):
        g = build_speech_graph()
        ch = g.channel("feature_vectors")
        assert ch.item_size(State(n_speakers=4)) == 4 * ch.item_size(State(n_speakers=1))

    def test_invalid_speakers(self):
        with pytest.raises(GraphError):
            build_speech_graph(0)

    def test_states(self):
        assert len(speech_states(4)) == 4


class TestSpeechScheduling:
    def test_decoder_decomposition_capped_by_speakers(self):
        """Speaker decomposition has nothing to split at one speaker —
        the opposite degenerate corner from the tracker's Table 1."""
        g = build_speech_graph(4)
        dec = g.task("decoder")
        one = dec.best_variant(State(n_speakers=1), max_workers=4)
        four = dec.best_variant(State(n_speakers=4), max_workers=4)
        assert one.workers == 1      # dp variants can't help one speaker
        assert four.workers == 4     # but cut the 4-speaker decode 4-way

    def test_per_state_schedule_table(self):
        g = build_speech_graph(4)
        cluster = SINGLE_NODE_SMP(4)
        table = ScheduleTable.build(
            g, speech_states(4), OptimalScheduler(cluster)
        )
        lats = [table.lookup(s).latency for s in speech_states(4)]
        assert lats == sorted(lats)
        # At 4 speakers the decoder runs data-parallel in the optimum.
        sol4 = table.lookup(State(n_speakers=4))
        assert sol4.iteration.placement("decoder").workers > 1

    def test_schedule_executes(self):
        from repro.runtime.static_exec import StaticExecutor

        g = build_speech_graph(2)
        cluster = SINGLE_NODE_SMP(4)
        state = State(n_speakers=2)
        sol = OptimalScheduler(cluster).solve(g, state)
        result = StaticExecutor(g, state, cluster, sol).run(5)
        assert result.meta["slips"] == 0
        assert result.completed_count == 5
