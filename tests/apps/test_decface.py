"""Unit tests for the DECface gaze behaviour and the full kiosk graph."""

from __future__ import annotations

import pytest

from repro.apps.decface import GazeState, build_kiosk_graph, gaze_controller
from repro.core.optimal import OptimalScheduler
from repro.errors import ReproError
from repro.runtime.static_exec import StaticExecutor
from repro.sim.cluster import SINGLE_NODE_SMP
from repro.state import State


def loc(r, c, score=1.0):
    return (r, c, score)


class TestGazeState:
    def test_idle_when_nobody_present(self):
        gaze = GazeState()
        assert gaze.update([loc(-1, -1, 0.0)]) == -1

    def test_single_customer_held(self):
        gaze = GazeState(glance_period=2)
        for _ in range(5):
            assert gaze.update([loc(10, 10)]) == 0

    def test_round_robin_among_customers(self):
        gaze = GazeState(glance_period=2, motion_priority=1e9)
        targets = [
            gaze.update([loc(10, 10), loc(20, 20), loc(30, 30)]) for _ in range(12)
        ]
        # Every customer gets glanced at...
        assert set(targets) == {0, 1, 2}
        # ...for at most glance_period consecutive frames.
        run = 1
        for a, b in zip(targets, targets[1:]):
            run = run + 1 if a == b else 1
            assert run <= 2

    def test_motion_interrupt_grabs_gaze(self):
        gaze = GazeState(glance_period=100, motion_priority=10.0)
        gaze.update([loc(10, 10), loc(50, 50)])
        gaze.update([loc(10, 10), loc(50, 50)])
        # Customer 1 jumps 30 pixels: gaze must snap to them.
        assert gaze.update([loc(10, 10), loc(80, 50)]) == 1

    def test_departed_customer_released(self):
        gaze = GazeState(glance_period=100, motion_priority=1e9)
        assert gaze.update([loc(10, 10), loc(20, 20)]) == 0
        assert gaze.update([loc(-1, -1, 0.0), loc(20, 20)]) == 1

    def test_invalid_period(self):
        with pytest.raises(ReproError):
            GazeState(glance_period=0)

    def test_kernel_adapter(self):
        kernel = gaze_controller()
        out = kernel(State(n_models=1), {"model_locations": [loc(5, 5)]})
        assert out == {"gaze": {"target": 0}}


class TestKioskGraph:
    def test_structure_extends_tracker(self):
        g = build_kiosk_graph()
        assert g.topo_order() == ["T1", "T2", "T3", "T4", "T5", "T6"]
        assert g.sink_tasks() == ["T6"]
        assert g.predecessors("T6") == ["T5"]

    def test_cheap_t6_does_not_disturb_schedule_structure(self):
        """Adding the face task leaves T2||T3 + T4-dp4 intact and adds
        only T6's own cost to the latency."""
        m8 = State(n_models=8)
        cluster = SINGLE_NODE_SMP(4)
        tracker_sol = OptimalScheduler(cluster).solve(
            build_kiosk_graph(), m8
        )
        t4 = tracker_sol.iteration.placement("T4")
        assert t4.workers == 4
        from repro.apps.tracker.graph import build_tracker_graph

        base = OptimalScheduler(cluster).solve(build_tracker_graph(), m8)
        t6_cost = build_kiosk_graph().task("T6").cost(m8)
        assert tracker_sol.latency == pytest.approx(base.latency + t6_cost)

    def test_kiosk_executes(self):
        m2 = State(n_models=2)
        cluster = SINGLE_NODE_SMP(4)
        g = build_kiosk_graph()
        sol = OptimalScheduler(cluster).solve(g, m2)
        result = StaticExecutor(g, m2, cluster, sol).run(5)
        assert result.meta["slips"] == 0
        assert result.completed_count == 5

    def test_live_kiosk_gazes_at_tracked_people(self):
        """End to end with real kernels: T6's gaze targets are indices of
        actually-present people."""
        from repro.apps.tracker.graph import attach_kernels
        from repro.apps.video import VideoSource
        from repro.runtime.threaded import ThreadedRuntime

        video = VideoSource(n_targets=2, height=48, width=64, seed=21)
        live, statics = attach_kernels(build_kiosk_graph(), video)
        rt = ThreadedRuntime(live, State(n_models=2), static_inputs=statics,
                             op_timeout=30)
        res = rt.run(6)
        targets = [res.outputs["gaze"][ts]["target"] for ts in range(6)]
        assert all(t in (0, 1) for t in targets)
