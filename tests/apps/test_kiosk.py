"""Unit tests for the kiosk environment and the tracker/surveillance graphs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.kiosk import KioskEnvironment
from repro.apps.surveillance import build_surveillance_graph, surveillance_states
from repro.apps.tracker.graph import PAPER_COSTS, TRACKER_STATES, build_tracker_graph
from repro.errors import ReproError
from repro.state import State


class TestKioskTrace:
    def test_intervals_tile_the_horizon(self):
        env = KioskEnvironment(seed=1)
        intervals = env.trace(600.0)
        assert intervals[0].start == 0.0
        assert intervals[-1].end == pytest.approx(600.0)
        for a, b in zip(intervals, intervals[1:]):
            assert a.end == pytest.approx(b.start)

    def test_adjacent_intervals_differ(self):
        env = KioskEnvironment(seed=1)
        intervals = env.trace(3600.0)
        for a, b in zip(intervals, intervals[1:]):
            assert a.n_people != b.n_people

    def test_occupancy_clamped(self):
        env = KioskEnvironment(
            arrival_rate=1.0, mean_dwell=2.0, min_people=1, max_people=5, seed=2
        )
        for iv in env.trace(600.0):
            assert 1 <= iv.n_people <= 5

    def test_deterministic(self):
        a = KioskEnvironment(seed=9).trace(1000.0)
        b = KioskEnvironment(seed=9).trace(1000.0)
        assert a == b

    def test_faster_churn_means_more_changes(self):
        slow = KioskEnvironment(arrival_rate=1 / 300, mean_dwell=600, seed=3)
        fast = KioskEnvironment(arrival_rate=1 / 10, mean_dwell=20, seed=3)
        assert fast.change_count(3600.0) > slow.change_count(3600.0)

    def test_interval_state(self):
        env = KioskEnvironment(seed=1)
        iv = env.trace(100.0)[0]
        assert iv.state() == State(n_models=iv.n_people)

    def test_invalid_configs(self):
        with pytest.raises(ReproError):
            KioskEnvironment(arrival_rate=0)
        with pytest.raises(ReproError):
            KioskEnvironment(min_people=3, max_people=2)
        with pytest.raises(ReproError):
            KioskEnvironment().trace(0.0)
        with pytest.raises(ReproError):
            KioskEnvironment(max_people=3).trace(10.0, initial=7)


class TestObservations:
    def test_clean_observations_match_trace(self):
        env = KioskEnvironment(seed=4)
        intervals = env.trace(300.0)

        def truth_at(t):
            for iv in intervals:
                if iv.start <= t < iv.end:
                    return iv.n_people
            return intervals[-1].n_people

        for t, obs in env.observations(300.0, frame_period=5.0):
            assert obs == truth_at(t)

    def test_noise_stays_in_range(self):
        env = KioskEnvironment(seed=5, min_people=1, max_people=5)
        for _, obs in env.observations(300.0, frame_period=1.0, noise_prob=0.5):
            assert 1 <= obs <= 5

    def test_noisy_observations_deterministic(self):
        env = KioskEnvironment(seed=6)
        a = list(env.observations(100.0, 1.0, noise_prob=0.3))
        b = list(env.observations(100.0, 1.0, noise_prob=0.3))
        assert a == b

    def test_invalid_params(self):
        env = KioskEnvironment()
        with pytest.raises(ReproError):
            list(env.observations(10.0, frame_period=0))
        with pytest.raises(ReproError):
            list(env.observations(10.0, 1.0, noise_prob=1.5))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_trace_well_formed_for_any_seed(self, seed):
        env = KioskEnvironment(seed=seed, arrival_rate=1 / 30, mean_dwell=60)
        intervals = env.trace(900.0)
        assert intervals[-1].end == pytest.approx(900.0)
        assert all(iv.duration > 0 for iv in intervals)
        assert all(1 <= iv.n_people <= 5 for iv in intervals)


class TestTrackerGraphCosts:
    def test_paper_costs_hit_table1_endpoints(self, m1, m8):
        t4 = PAPER_COSTS["T4"]
        assert t4(m1) == pytest.approx(0.876, rel=0.01)
        assert t4(m8) == pytest.approx(6.85, rel=0.01)

    def test_t1_t2_t3_state_independent(self, m1, m8):
        for name in ("T1", "T2", "T3"):
            assert PAPER_COSTS[name](m1) == PAPER_COSTS[name](m8)

    def test_t4_slope_much_larger_than_t5(self, m1, m8):
        t4_slope = PAPER_COSTS["T4"](m8) - PAPER_COSTS["T4"](m1)
        t5_slope = PAPER_COSTS["T5"](m8) - PAPER_COSTS["T5"](m1)
        assert t4_slope > 10 * t5_slope

    def test_states_cover_table1(self):
        assert State(n_models=1) in TRACKER_STATES
        assert State(n_models=8) in TRACKER_STATES

    def test_channel_sizes_positive(self, tracker_graph, m8):
        for name in ("frame", "motion_mask", "histogram", "back_projections"):
            assert tracker_graph.channel(name).item_size(m8) > 0

    def test_digitizer_period_plumbed(self):
        g = build_tracker_graph(digitizer_period=0.25)
        assert g.task("T1").period == 0.25


class TestSurveillanceGraph:
    def test_structure(self):
        g = build_surveillance_graph(3)
        assert len(g.tasks) == 3 * 3 + 2
        assert set(g.predecessors("fuse")) == {"detect0", "detect1", "detect2"}
        assert g.successors("fuse") == ["alarm"]
        g.validate()

    def test_costs_track_active_cameras(self):
        g = build_surveillance_graph(4)
        active2 = State(n_cameras=2)
        assert g.task("detect0").cost(active2) == pytest.approx(0.45)
        assert g.task("detect3").cost(active2) == pytest.approx(0.001)

    def test_fuse_linear_in_cameras(self):
        g = build_surveillance_graph(4)
        f1 = g.task("fuse").cost(State(n_cameras=1))
        f4 = g.task("fuse").cost(State(n_cameras=4))
        assert f4 > f1

    def test_states(self):
        assert len(surveillance_states(4)) == 4

    def test_optimal_schedulable(self):
        """The same Figure 6 machinery schedules the second application."""
        from repro.core.optimal import OptimalScheduler
        from repro.sim.cluster import ClusterSpec

        g = build_surveillance_graph(2)
        sol = OptimalScheduler(ClusterSpec(1, 2), node_limit=2_000_000).solve(
            g, State(n_cameras=2)
        )
        sol.iteration.validate(g, State(n_cameras=2), ClusterSpec(1, 2))
        assert sol.latency > 0
