"""Unit and end-to-end tests for the live surveillance kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.surveillance import build_surveillance_graph
from repro.apps.surveillance_kernels import (
    attach_surveillance_kernels,
    detect_blobs,
    fuse_detections,
    zone_alarm,
)
from repro.apps.video import VideoSource
from repro.errors import ReproError
from repro.runtime.threaded import ThreadedRuntime
from repro.state import State


class TestDetectBlobs:
    def test_single_blob_centroid(self):
        mask = np.zeros((20, 20), dtype=bool)
        mask[5:9, 10:14] = True
        blobs = detect_blobs(mask)
        assert len(blobs) == 1
        r, c, pixels = blobs[0]
        # Centroid (6.5, 11.5) rounds half-to-even -> (6, 12).
        assert (r, c) == (6, 12)
        assert pixels == 16

    def test_two_separate_blobs(self):
        mask = np.zeros((20, 20), dtype=bool)
        mask[0:4, 0:4] = True
        mask[10:16, 10:16] = True
        blobs = detect_blobs(mask)
        assert len(blobs) == 2
        assert blobs[0][2] == 36  # largest first
        assert blobs[1][2] == 16

    def test_small_blobs_filtered(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[0, 0] = True  # single pixel: noise
        assert detect_blobs(mask, min_pixels=9) == []

    def test_empty_mask(self):
        assert detect_blobs(np.zeros((8, 8), dtype=bool)) == []

    def test_diagonal_not_connected(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = mask[1, 1] = True
        blobs = detect_blobs(mask, min_pixels=1)
        assert len(blobs) == 2  # 4-connectivity

    def test_invalid_input(self):
        with pytest.raises(ReproError):
            detect_blobs(np.zeros((4, 4), dtype=np.uint8))


class TestFusion:
    def test_nearby_detections_merge(self):
        tracks = fuse_detections([[(10, 10, 20)], [(12, 11, 25)]])
        assert len(tracks) == 1
        assert tracks[0]["cameras"] == [0, 1]
        assert tracks[0]["row"] == pytest.approx(11.0)

    def test_distant_detections_stay_separate(self):
        tracks = fuse_detections([[(10, 10, 20)], [(50, 50, 25)]])
        assert len(tracks) == 2

    def test_empty_cameras(self):
        assert fuse_detections([[], []]) == []


class TestZoneAlarm:
    def test_inside_and_outside(self):
        tracks = [
            {"row": 5.0, "col": 5.0, "pixels": 10, "cameras": [0]},
            {"row": 90.0, "col": 90.0, "pixels": 10, "cameras": [1]},
        ]
        alarms = zone_alarm(tracks, (0, 0, 40, 40))
        assert len(alarms) == 1 and alarms[0]["cameras"] == [0]

    def test_invalid_zone(self):
        with pytest.raises(ReproError):
            zone_alarm([], (10, 10, 5, 5))


class TestLiveSurveillance:
    def test_end_to_end_alarms_track_targets(self):
        """Two cameras watching the same moving target: the fused tracks
        follow the ground truth, and alarms fire exactly when the target
        is inside the zone."""
        n_cameras = 2
        graph = build_surveillance_graph(n_cameras)
        # Same seed -> both cameras see the same scene (overlapping view).
        videos = [
            VideoSource(n_targets=1, height=60, width=80, seed=33, noise_level=4)
            for _ in range(n_cameras)
        ]
        live = attach_surveillance_kernels(
            graph, videos, zone=(0, 0, 60, 40), threshold=60
        )
        rt = ThreadedRuntime(live, State(n_cameras=n_cameras), op_timeout=30)
        res = rt.run(6)
        half = videos[0].target_size / 2
        for ts in range(1, 6):  # ts 0 is the bootstrap all-motion frame
            truth_r, truth_c = videos[0].positions(ts)[0]
            center = (truth_r + half, truth_c + half)
            tracks = res.outputs["tracks"][ts] if "tracks" in res.outputs else None
            alarms = res.outputs["alarms"][ts]
            # Either channel may be terminal depending on consumers; use alarms.
            in_zone = center[1] < 40  # zone is the left 40 columns
            if in_zone:
                assert alarms, f"expected an alarm at ts={ts}"
                alarm = alarms[0]
                assert abs(alarm["row"] - center[0]) < 20
                assert sorted(alarm["cameras"]) == [0, 1]
            else:
                for alarm in alarms:
                    assert alarm["col"] < 40  # only in-zone alarms

    def test_camera_count_mismatch_rejected(self):
        graph = build_surveillance_graph(2)
        with pytest.raises(ReproError):
            attach_surveillance_kernels(graph, [VideoSource(1, seed=1)])
