"""Unit tests for the tracker kernels and calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.colormodel import color_histogram
from repro.apps.tracker import kernels
from repro.apps.tracker.calibrate import calibrate_kernels
from repro.apps.video import VideoSource
from repro.errors import ReproError
from repro.state import State


@pytest.fixture(scope="module")
def scene():
    video = VideoSource(n_targets=3, height=48, width=64, seed=9)
    frame = video.frame(1)
    prev = video.frame(0)
    models = [color_histogram(video.model_patch(i)) for i in range(3)]
    return video, frame, prev, models


class TestChangeDetection:
    def test_bootstrap_all_motion(self, scene):
        _, frame, _, _ = scene
        mask = kernels.change_detection(frame, None)
        assert mask.all()

    def test_static_scene_no_motion(self, scene):
        _, frame, _, _ = scene
        assert not kernels.change_detection(frame, frame.copy(), threshold=1).any()

    def test_moving_target_detected(self, scene):
        video, frame, prev, _ = scene
        mask = kernels.change_detection(frame, prev, threshold=60)
        r, c = video.positions(1)[0]
        assert mask.any()

    def test_shape_mismatch(self, scene):
        _, frame, _, _ = scene
        with pytest.raises(ReproError):
            kernels.change_detection(frame, frame[:10])


class TestTargetAndPeakDetection:
    def test_planes_shape(self, scene):
        _, frame, prev, models = scene
        fh = kernels.frame_histogram(frame)
        planes = kernels.target_detection(frame, models, fh)
        assert planes.shape == (3, 48, 64)

    def test_empty_models_rejected(self, scene):
        _, frame, _, _ = scene
        with pytest.raises(ReproError):
            kernels.target_detection(frame, [], kernels.frame_histogram(frame))

    def test_motion_mask_zeroes_static_regions(self, scene):
        _, frame, _, models = scene
        fh = kernels.frame_histogram(frame)
        mask = np.zeros(frame.shape[:2], dtype=bool)
        planes = kernels.target_detection(frame, models, fh, mask)
        assert planes.max() == 0.0

    def test_peaks_land_on_targets(self, scene):
        video, frame, _, models = scene
        fh = kernels.frame_histogram(frame)
        planes = kernels.target_detection(frame, models, fh)
        peaks = kernels.peak_detection(planes)
        for (r, c, score), (tr, tc) in zip(peaks, video.positions(1)):
            assert tr <= r < tr + video.target_size
            assert tc <= c < tc + video.target_size
            assert score > 0.5

    def test_min_score_marks_absent(self, scene):
        _, frame, _, models = scene
        planes = np.zeros((2, 8, 8))
        peaks = kernels.peak_detection(planes, min_score=0.5)
        assert peaks == [(-1, -1, 0.0), (-1, -1, 0.0)]

    def test_bad_planes_shape(self):
        with pytest.raises(ReproError):
            kernels.peak_detection(np.zeros((8, 8)))


class TestKernelAdapters:
    def test_digitizer_advances(self, scene):
        video = VideoSource(n_targets=1, height=32, width=32, seed=1)
        k = kernels.make_digitizer_kernel(video)
        st = State(n_models=1)
        f0 = k(st, {})["frame"]
        f1 = k(st, {})["frame"]
        np.testing.assert_array_equal(f0, video.frame(0))
        np.testing.assert_array_equal(f1, video.frame(1))

    def test_change_detection_remembers_previous(self, scene):
        _, frame, prev, _ = scene
        k = kernels.make_change_detection_kernel(threshold=1)
        st = State(n_models=1)
        first = k(st, {"frame": prev})["motion_mask"]
        assert first.all()  # bootstrap
        second = k(st, {"frame": prev.copy()})["motion_mask"]
        assert not second.any()  # same frame again


class TestCalibration:
    @pytest.fixture(scope="class")
    def calibration(self):
        return calibrate_kernels(
            frame_shape=(32, 48), model_counts=(1, 2, 4), repeats=3
        )

    def test_shapes(self, calibration):
        from repro.graph.cost import ConstantCost, LinearCost

        assert isinstance(calibration.t2, ConstantCost)
        assert isinstance(calibration.t4, LinearCost)
        assert isinstance(calibration.t5, LinearCost)

    def test_t4_grows_with_models(self, calibration):
        assert calibration.t4(State(n_models=8)) > calibration.t4(State(n_models=1))

    def test_t4_dominates_t5(self, calibration):
        m8 = State(n_models=8)
        assert calibration.t4(m8) > calibration.t5(m8)

    def test_costs_dict_usable_in_graph(self, calibration):
        from repro.apps.tracker.graph import build_tracker_graph

        g = build_tracker_graph(costs=calibration.as_costs())
        g.validate()
        assert g.task("T4").cost(State(n_models=2)) > 0

    def test_parameter_validation(self):
        with pytest.raises(ReproError):
            calibrate_kernels(repeats=0)
        with pytest.raises(ReproError):
            calibrate_kernels(model_counts=(1,))
