"""Unit tests for the synthetic video source and color models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.colormodel import (
    back_projection,
    color_histogram,
    histogram_intersection,
    quantize,
)
from repro.apps.video import VideoSource
from repro.errors import ReproError


class TestVideoSource:
    def test_frame_shape_and_dtype(self):
        src = VideoSource(n_targets=2, height=60, width=80, seed=0)
        f = src.frame(0)
        assert f.shape == (60, 80, 3) and f.dtype == np.uint8

    def test_deterministic_for_seed(self):
        a = VideoSource(n_targets=2, seed=42).frame(5)
        b = VideoSource(n_targets=2, seed=42).frame(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = VideoSource(n_targets=2, seed=1).frame(0)
        b = VideoSource(n_targets=2, seed=2).frame(0)
        assert (a != b).any()

    def test_targets_move(self):
        src = VideoSource(n_targets=1, seed=3)
        assert src.positions(0) != src.positions(10)

    def test_positions_stay_in_frame(self):
        src = VideoSource(n_targets=4, height=50, width=70, seed=7, target_size=10)
        for ts in range(0, 500, 25):
            for (r, c) in src.positions(ts):
                assert 0 <= r <= 40 and 0 <= c <= 60

    def test_target_rendered_at_position(self):
        src = VideoSource(n_targets=1, seed=0, noise_level=0)
        r, c = src.positions(4)[0]
        f = src.frame(4)
        np.testing.assert_array_equal(f[r, c], np.array(src.targets[0].color))

    def test_model_patch_is_uniform_color(self):
        src = VideoSource(n_targets=2, seed=0)
        patch = src.model_patch(1)
        assert (patch == np.array(src.targets[1].color)).all()

    def test_invalid_configs(self):
        with pytest.raises(ReproError):
            VideoSource(n_targets=0)
        with pytest.raises(ReproError):
            VideoSource(n_targets=99)
        with pytest.raises(ReproError):
            VideoSource(n_targets=1, height=10, width=10, target_size=10)
        src = VideoSource(n_targets=1)
        with pytest.raises(ReproError):
            src.frame(-1)
        with pytest.raises(ReproError):
            src.model_patch(5)


class TestColorModel:
    def frame(self, seed=0):
        return VideoSource(n_targets=2, height=40, width=50, seed=seed).frame(0)

    def test_quantize_range(self):
        idx = quantize(self.frame(), bins=8)
        assert idx.min() >= 0 and idx.max() < 8**3

    def test_histogram_normalized(self):
        h = color_histogram(self.frame())
        assert h.sum() == pytest.approx(1.0)
        assert (h >= 0).all()

    def test_intersection_identity(self):
        h = color_histogram(self.frame())
        assert histogram_intersection(h, h) == pytest.approx(1.0)

    def test_intersection_symmetric_and_bounded(self):
        h1 = color_histogram(self.frame(0))
        h2 = color_histogram(self.frame(9))
        i12 = histogram_intersection(h1, h2)
        assert i12 == pytest.approx(histogram_intersection(h2, h1))
        assert 0.0 <= i12 <= 1.0

    def test_shape_mismatch_rejected(self):
        h = color_histogram(self.frame())
        with pytest.raises(ReproError):
            histogram_intersection(h, h[:-1])

    def test_back_projection_bounds(self):
        src = VideoSource(n_targets=1, height=40, width=50, seed=0)
        frame = src.frame(0)
        model = color_histogram(src.model_patch(0))
        bp = back_projection(frame, model, color_histogram(frame))
        assert bp.shape == frame.shape[:2]
        assert bp.min() >= 0.0 and bp.max() <= 1.0

    def test_back_projection_peaks_on_target(self):
        src = VideoSource(n_targets=1, height=40, width=50, seed=0, noise_level=0)
        frame = src.frame(0)
        model = color_histogram(src.model_patch(0))
        bp = back_projection(frame, model, color_histogram(frame))
        r, c = src.positions(0)[0]
        on_target = bp[r : r + src.target_size, c : c + src.target_size].mean()
        assert on_target > 0.9
        assert on_target > bp.mean() * 2

    def test_non_uint8_rejected(self):
        with pytest.raises(ReproError):
            color_histogram(np.zeros((4, 4, 3), dtype=np.float32))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ReproError):
            color_histogram(np.zeros((4, 4), dtype=np.uint8))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_histogram_intersection_of_same_scene_high(self, seed):
        """Two noisy renders of the same scene remain similar."""
        src = VideoSource(n_targets=1, height=32, width=32, seed=seed)
        h0 = color_histogram(src.frame(0))
        h1 = color_histogram(src.frame(0))
        assert histogram_intersection(h0, h1) == pytest.approx(1.0)
