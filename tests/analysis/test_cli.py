"""The ``python -m repro.analysis`` CLI and the waiver comment parser."""

from __future__ import annotations

import json
from pathlib import Path

import repro
from repro.analysis import collect_waivers, parse_waiver_line
from repro.analysis.cli import main, repo_report
from repro.analysis.rules import RULES


class TestWaiverParsing:
    def test_parse_full_waiver(self):
        w = parse_waiver_line(
            "x = 1  # analysis: waive G005 channel:debug_tap -- wired by the demo",
            origin="examples/demo.py:3",
        )
        assert w is not None
        assert (w.rule, w.location) == ("G005", "channel:debug_tap")
        assert w.reason == "wired by the demo"
        assert w.origin == "examples/demo.py:3"

    def test_parse_without_reason(self):
        w = parse_waiver_line("# analysis: waive P004 channel:frame")
        assert w is not None and w.reason == ""

    def test_non_waiver_lines_ignored(self):
        assert parse_waiver_line("x = 1  # a normal comment") is None
        assert parse_waiver_line("# analysis: waive NOTARULE loc") is None

    def test_collect_from_tree(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "a = 1\nb = 2  # analysis: waive G005 channel:tap -- demo only\n",
            encoding="utf-8",
        )
        (waiver,) = collect_waivers([tmp_path])
        assert waiver.rule == "G005"
        assert waiver.origin.endswith("mod.py:2")


class TestCli:
    def test_repo_is_clean_at_strict(self, tmp_path, capsys):
        out = tmp_path / "findings.json"
        rc = main(["--strict", "-q", "--no-schedules", "--json", str(out)])
        captured = capsys.readouterr()
        assert rc == 0, captured.out
        data = json.loads(out.read_text(encoding="utf-8"))
        assert data["schema_version"] == 1
        assert data["counts"]["error"] == 0 and data["counts"]["warning"] == 0
        assert "error(s)" in captured.out

    def test_full_run_with_schedule_tables(self, capsys):
        rc = main(["--strict", "-q"])
        assert rc == 0, capsys.readouterr().out

    def test_list_rules_prints_catalog(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out

    def test_model_check_only_sweep_is_clean(self, capsys):
        # The acceptance gate: zero M001/M002 on every shipped
        # configuration, checked via the dedicated pass-5 sweep.
        rc = main(["--model-check", "--strict", "-q"])
        assert rc == 0, capsys.readouterr().out

    def test_model_check_excludes_no_model(self, capsys):
        import pytest

        with pytest.raises(SystemExit) as exc:
            main(["--model-check", "--no-model"])
        assert exc.value.code == 2

    def test_sarif_output(self, tmp_path, capsys):
        out = tmp_path / "findings.sarif"
        rc = main(["-q", "--no-schedules", "--sarif", str(out)])
        capsys.readouterr()
        assert rc == 0
        log = json.loads(out.read_text(encoding="utf-8"))
        assert log["version"] == "2.1.0"
        # The sweep's srclint findings arrive as physical locations with
        # in-source suppressions (the stm/process.py waivers).
        results = log["runs"][0]["results"]
        suppressed = [r for r in results if r.get("suppressions")]
        assert suppressed, "expected the waived D003 findings in the log"

    def test_repo_report_structure_only(self):
        report = repo_report(schedules=False)
        # Apply the repo's inline waivers, as the CLI does: the tracker's
        # T3/T5 chunk kernels are deliberately DataParallelSpec-free.
        src_root = Path(repro.__file__).resolve().parents[1]
        report.apply_waivers(collect_waivers([src_root]))
        assert report.ok(strict=True), report.summary()
        # The fan-out INFO findings (born-consumed try_get) are expected
        # and never gate.
        assert all(f.severity.name == "INFO" for f in report.active())
