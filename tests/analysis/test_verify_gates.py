"""The opt-in ``verify=`` gates on tables and executors."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.optimal import OptimalScheduler, ScheduleSolution
from repro.core.schedule import IterationSchedule
from repro.core.table import ScheduleTable
from repro.errors import AnalysisError, ExecutorConfigError
from repro.faults.failover import ShapeTable
from repro.graph.builders import chain_graph
from repro.runtime.static_exec import StaticExecutor
from repro.sim.cluster import SINGLE_NODE_SMP, ClusterSpec
from repro.state import State, StateSpace


@pytest.fixture(scope="module")
def chain():
    return chain_graph([1.0, 1.0])


@pytest.fixture(scope="module")
def smp2():
    return SINGLE_NODE_SMP(2)


def corrupt(sol: ScheduleSolution) -> ScheduleSolution:
    """Inflate the final placement so the latency certificate fails."""
    ps = sorted(sol.iteration.placements, key=lambda p: p.start)
    bad = ps[:-1] + [replace(ps[-1], duration=ps[-1].duration * 2)]
    return ScheduleSolution(
        state=sol.state,
        iteration=IterationSchedule(bad, name=sol.iteration.name),
        pipelined=sol.pipelined,
        alternatives=sol.alternatives,
        explored=sol.explored,
    )


class TestScheduleTableGate:
    def test_build_with_verify_passes_clean(self, chain, smp2):
        space = StateSpace.range("n_models", 1, 3)
        table = ScheduleTable.build(chain, space, OptimalScheduler(smp2), verify=True)
        assert len(table) == 3

    def test_verify_raises_on_planted_defect(self, chain, smp2):
        space = StateSpace.range("n_models", 1, 2)
        table = ScheduleTable.build(chain, space, OptimalScheduler(smp2))
        states = table.states()
        bad = ScheduleTable(
            {states[0]: corrupt(table.lookup(states[0])),
             states[1]: table.lookup(states[1])}
        )
        with pytest.raises(AnalysisError) as exc:
            bad.verify(chain, space, smp2)
        report = exc.value.report
        assert {"S006", "S007"} <= {f.rule for f in report.findings}
        assert "S006" in str(exc.value)


class TestShapeTableGate:
    def test_build_with_verify_passes_clean(self, chain):
        base = ClusterSpec(nodes=2, procs_per_node=2)
        table = ShapeTable.build(chain, State(n_models=1), base, verify=True)
        assert len(table) >= 2

    def test_verify_raises_on_missing_shape(self, chain):
        base = ClusterSpec(nodes=2, procs_per_node=1)
        sol = OptimalScheduler(base).solve(chain, State(n_models=1))
        table = ShapeTable({base.shape_key(): sol})
        with pytest.raises(AnalysisError) as exc:
            table.verify(chain, base)
        assert any(f.rule == "S012" for f in exc.value.report.findings)


class TestExecutorGate:
    def test_verify_passes_clean_solution(self, chain, smp2):
        sol = OptimalScheduler(smp2).solve(chain, State(n_models=1))
        ex = StaticExecutor(chain, State(n_models=1), smp2, sol, verify=True)
        result = ex.run(3)
        assert len(result.completion_times) == 3

    def test_verify_accepts_bare_pipelined_schedule(self, chain, smp2):
        sol = OptimalScheduler(smp2).solve(chain, State(n_models=1))
        StaticExecutor(chain, State(n_models=1), smp2, sol.pipelined, verify=True)

    def test_verify_rejects_corrupted_schedule(self, chain, smp2):
        sol = OptimalScheduler(smp2).solve(chain, State(n_models=1))
        with pytest.raises(AnalysisError):
            StaticExecutor(chain, State(n_models=1), smp2, corrupt(sol), verify=True)

    def test_race_checker_requires_threaded_runtime(self, chain, smp2):
        from repro.analysis import RaceChecker

        sol = OptimalScheduler(smp2).solve(chain, State(n_models=1))
        with pytest.raises(ExecutorConfigError, match="threaded"):
            StaticExecutor(
                chain, State(n_models=1), smp2, sol,
                runtime="sim", analysis=RaceChecker(),
            )

    def test_threaded_executor_threads_checker_through(self, smp2):
        from repro.analysis import RaceChecker

        graph = chain_graph([0.01, 0.01])
        sol = OptimalScheduler(smp2).solve(graph, State(n_models=1))
        checker = RaceChecker()
        ex = StaticExecutor(
            graph, State(n_models=1), smp2, sol,
            runtime="threaded", analysis=checker, verify=True,
        )
        ex.run(4)
        report = checker.report()
        assert checker.race_count == 0 and not report.findings, report.summary()
