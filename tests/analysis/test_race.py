"""Pass 4 (dynamic race/deadlock detection): vector clocks end to end."""

from __future__ import annotations

import threading

import pytest

from repro.analysis import RaceChecker
from repro.graph.builders import chain_graph, fork_join_graph
from repro.runtime.threaded import ThreadedRuntime
from repro.state import State
from repro.stm.threaded import ThreadedChannel


def run_threads(*bodies):
    threads = [
        threading.Thread(target=b, name=f"worker-{i}") for i, b in enumerate(bodies)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestTrackedLock:
    def test_lock_protocol(self):
        lk = RaceChecker().tracked_lock("lock:t")
        assert not lk.locked()
        with lk:
            assert lk.locked()
        assert not lk.locked()
        assert lk.acquire(blocking=False) is True
        lk.release()

    def test_backs_a_condition(self):
        cond = threading.Condition(RaceChecker().tracked_lock("lock:cond"))
        with cond:
            cond.notify_all()


class TestDataRaces:
    def test_r001_unsynchronized_writes(self):
        checker = RaceChecker()
        run_threads(
            lambda: checker.on_write("state:shared"),
            lambda: checker.on_write("state:shared"),
        )
        (f,) = checker.report().findings
        assert f.rule == "R001" and "state:shared" in f.location

    def test_lock_protected_writes_do_not_race(self):
        checker = RaceChecker()
        lk = checker.tracked_lock("lock:guard")

        def body():
            for _ in range(50):
                with lk:
                    checker.on_write("state:shared")

        run_threads(body, body)
        assert checker.race_count == 0

    def test_rogue_channel_write_flagged(self):
        """Deliberate channel mutation outside the channel lock is a race."""
        checker = RaceChecker()
        chan = ThreadedChannel("frames", analysis=checker)
        out = chan.attach_output("producer")

        def producer():
            chan.put(out, 0, "item")

        def rogue():
            checker.on_write("channel:frames")  # mutated without the lock

        run_threads(producer, rogue)
        report = checker.report()
        assert any(
            f.rule == "R001" and f.location == "channel:frames" for f in report
        ), report.summary()

    def test_locked_channel_traffic_does_not_race(self):
        checker = RaceChecker()
        chan = ThreadedChannel("frames", analysis=checker)
        out = chan.attach_output("producer")
        inn = chan.attach_input("consumer")

        def producer():
            for ts in range(20):
                chan.put(out, ts, ts)

        def consumer():
            for ts in range(20):
                chan.get(inn, ts, timeout=5.0)
                chan.consume(inn, ts)

        run_threads(producer, consumer)
        assert checker.race_count == 0

    def test_put_get_message_edge_orders_unlocked_state(self):
        # The producer's write to plain shared state is published with the
        # put; the consumer joins it on get, so its later read is ordered.
        checker = RaceChecker()
        chan = ThreadedChannel("c", analysis=checker)
        out = chan.attach_output("p")
        inn = chan.attach_input("q")

        def producer():
            checker.on_write("state:model")
            chan.put(out, 0, "v")

        def consumer():
            chan.get(inn, 0, timeout=5.0)
            checker.on_read("state:model")

        run_threads(producer, consumer)
        assert checker.race_count == 0

    def test_read_without_message_edge_races(self):
        checker = RaceChecker()
        run_threads(
            lambda: checker.on_write("state:model"),
            lambda: checker.on_read("state:model"),
        )
        assert checker.race_count == 1

    def test_fork_adopt_orders_thread_lifecycle(self):
        checker = RaceChecker()
        checker.on_write("state:init")
        token = checker.fork()
        end = {}

        def child():
            checker.adopt(token)
            checker.on_read("state:init")  # ordered by the fork token
            checker.on_write("state:out")
            end["token"] = checker.fork()

        th = threading.Thread(target=child)
        th.start()
        th.join()
        checker.adopt(end["token"])
        checker.on_read("state:out")  # ordered by the join token
        assert checker.race_count == 0

    def test_duplicate_races_dedup(self):
        checker = RaceChecker()

        def body():
            for _ in range(10):
                checker.on_write("state:shared")

        run_threads(body, body)
        assert len([f for f in checker.report() if f.rule == "R001"]) == 1


class TestLockInversion:
    def test_r002_inversion_cycle(self):
        checker = RaceChecker()
        la, lb = checker.tracked_lock("lock:A"), checker.tracked_lock("lock:B")

        def ab():
            with la:
                with lb:
                    pass

        def ba():
            with lb:
                with la:
                    pass

        # Sequential execution still records the conflicting orders.
        for body in (ab, ba):
            th = threading.Thread(target=body)
            th.start()
            th.join()
        (f,) = checker.report().findings
        assert f.rule == "R002"
        assert "lock:A" in f.location and "lock:B" in f.location

    def test_consistent_order_is_clean(self):
        checker = RaceChecker()
        la, lb = checker.tracked_lock("lock:A"), checker.tracked_lock("lock:B")

        def ab():
            with la:
                with lb:
                    pass

        run_threads(ab, ab)
        assert not [f for f in checker.report() if f.rule == "R002"]


class TestRuntimeIntegration:
    def test_clean_chain_run_reports_zero_findings(self):
        checker = RaceChecker()
        rt = ThreadedRuntime(
            chain_graph([0.0, 0.0, 0.0]), State(n_models=1), analysis=checker
        )
        result = rt.run(timestamps=6)
        assert result.wall_time >= 0.0
        report = checker.report()
        assert checker.race_count == 0 and not report.findings, report.summary()

    def test_clean_fork_join_run_reports_zero_findings(self):
        # Genuinely concurrent branches: the put/get message edges are the
        # only synchronization, and they are enough.
        checker = RaceChecker()
        rt = ThreadedRuntime(
            fork_join_graph(0.0, [0.0, 0.0, 0.0], 0.0),
            State(n_models=1),
            analysis=checker,
        )
        rt.run(timestamps=5)
        report = checker.report()
        assert checker.race_count == 0 and not report.findings, report.summary()

    def test_clean_tracker_run_reports_zero_findings(self):
        pytest.importorskip("numpy")
        from repro.apps.tracker.graph import attach_kernels, build_tracker_graph
        from repro.apps.tracker.kernels import VideoSource

        graph, statics = attach_kernels(build_tracker_graph(), VideoSource(n_targets=2))
        checker = RaceChecker()
        rt = ThreadedRuntime(
            graph, State(n_models=2), static_inputs=statics, analysis=checker
        )
        result = rt.run(timestamps=3)
        assert sorted(result.outputs["model_locations"]) == [0, 1, 2]
        report = checker.report()
        assert checker.race_count == 0 and not report.findings, report.summary()
