"""Seeded true-positive fixtures for the W rules (workload verification).

Each W rule gets a deliberately broken input that must trigger it:

* W001 — a fusion instance whose source period sits below the capacity
  bound (min per-iteration work over total machine speed);
* W002 — a matmul instance whose deadline sits below the best-variant
  critical-path bound at the fastest node;
* W003 — a feasible instance re-armed with a deadline squeezed between
  the latency *bound* (so W002 stays quiet) and the *realized* exact
  latency (so the concrete table entry misses it).
"""

from __future__ import annotations

import dataclasses

from repro.core.optimal import OptimalScheduler, ScheduleSolution
from repro.core.schedule import IterationSchedule, PipelinedSchedule, Placement
from repro.core.table import ScheduleTable
from repro.workloads import (
    capacity_bound,
    certify_instance,
    get_family,
    latency_bound,
    verify_workload_table,
)


def _build(instance):
    fam = get_family(instance.family)
    return (
        fam.build_graph(instance),
        fam.state_space(instance),
        fam.cluster(instance),
    )


def _serial_solution(graph, state) -> ScheduleSolution:
    """A legal but deliberately slow entry: every task on processor 0."""
    placements, t = [], 0.0
    for name in graph.topo_order():
        d = graph.task(name).cost(state)
        placements.append(Placement(name, (0,), t, d))
        t += d
    it = IterationSchedule(placements)
    pipelined = PipelinedSchedule(it, period=t, shift=0, n_procs=1)
    return ScheduleSolution(
        state=state, iteration=it, pipelined=pipelined, alternatives=1, explored=0
    )


class TestBounds:
    def test_capacity_bound_scales_with_regime(self):
        inst = get_family("webinfer").generate(0)
        graph, space, cluster = _build(inst)
        floors = [capacity_bound(graph, s, cluster) for s in space]
        assert all(f > 0 for f in floors)
        assert floors == sorted(floors)  # denser regime, more work

    def test_latency_bound_below_any_exact_latency(self):
        inst = get_family("fusion").generate(0)
        graph, space, cluster = _build(inst)
        scheduler = OptimalScheduler(cluster)
        for state in space:
            sol = scheduler.solve(graph, state)
            assert latency_bound(graph, state, cluster) <= sol.latency + 1e-9


class TestW001ThroughputInfeasible:
    def test_fires_on_starved_source_period(self):
        inst = get_family("fusion").generate(2, infeasible=True)
        report = certify_instance(inst)
        rules = {f.rule for f in report.findings}
        assert "W001" in rules
        assert not report.ok()

    def test_quiet_on_feasible_instance(self):
        report = certify_instance(get_family("fusion").generate(0))
        assert "W001" not in {f.rule for f in report.findings}
        assert report.ok()


class TestW002DeadlineUnachievable:
    def test_fires_on_impossible_deadline(self):
        inst = get_family("matmul").generate(2, infeasible=True)
        report = certify_instance(inst)
        rules = {f.rule for f in report.findings}
        assert "W002" in rules
        assert not report.ok()

    def test_location_names_instance_and_state(self):
        inst = get_family("matmul").generate(2, infeasible=True)
        report = certify_instance(inst)
        w002 = [f for f in report.findings if f.rule == "W002"]
        assert w002 and all(inst.name in f.location for f in w002)


class TestW003DeadlineViolated:
    def test_fires_on_missed_but_achievable_deadline(self):
        """A sluggish-but-legal serial entry misses a deadline the bound
        says is achievable: W003 must fire and W002 must stay quiet."""
        inst = get_family("webinfer").generate(0)
        graph, space, cluster = _build(inst)
        table = ScheduleTable.build(graph, space, OptimalScheduler(cluster))
        states = list(space)
        worst_state = max(states, key=lambda s: latency_bound(graph, s, cluster))
        max_bound = latency_bound(graph, worst_state, cluster)
        sluggish = _serial_solution(graph, worst_state)
        assert sluggish.latency > max_bound  # the diamond serializes
        solutions = {s: table.lookup(s) for s in states}
        solutions[worst_state] = sluggish
        squeezed = dataclasses.replace(
            inst, deadline=(max_bound + sluggish.latency) / 2
        )
        report = verify_workload_table(squeezed, ScheduleTable(solutions))
        rules = {f.rule for f in report.findings}
        assert "W003" in rules
        assert "W002" not in rules  # the deadline was achievable in principle
        assert not report.ok()

    def test_quiet_when_table_meets_deadline(self):
        inst = get_family("webinfer").generate(0)
        graph, space, cluster = _build(inst)
        table = ScheduleTable.build(graph, space, OptimalScheduler(cluster))
        report = verify_workload_table(inst, table)
        assert "W003" not in {f.rule for f in report.findings}
        assert report.ok(), report.summary()


class TestComposition:
    def test_verify_workload_table_includes_s_rules(self):
        """The composed pass runs the S verifier too — a table covering
        only one state yields S010 coverage gaps, not a silent pass."""
        inst = get_family("fusion").generate(0)
        graph, space, cluster = _build(inst)
        states = list(space)
        assert len(states) > 1
        first = states[0]
        partial = ScheduleTable({first: OptimalScheduler(cluster).solve(graph, first)})
        report = verify_workload_table(inst, partial)
        assert "S010" in {f.rule for f in report.findings}

    def test_expected_findings_match_dataset_contract(self):
        """Every family's infeasible generator records exactly the rules
        the verifier reproduces."""
        for family in ("matmul", "fusion", "webinfer"):
            inst = get_family(family).generate(2, infeasible=True)
            got = {f.rule for f in certify_instance(inst).findings}
            assert set(inst.expected_findings) <= got, family
