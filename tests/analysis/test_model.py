"""Pass 5 (model checker): M rules, counterexamples, replay, downgrades."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ChannelDecl,
    Severity,
    build_model,
    check_model,
    check_stm,
    minimal_capacity,
    replay_trace,
)
from repro.analysis.model import collector_name
from repro.graph.channel import ChannelSpec
from repro.graph.task import Task
from repro.graph.taskgraph import TaskGraph


def rules(report):
    return {f.rule for f in report.findings}


def by_rule(report, rid):
    return [f for f in report.findings if f.rule == rid]


def _bounded_chain(capacity):
    g = TaskGraph("pipe")
    g.add_channel(ChannelSpec("c", capacity=capacity))
    g.add_channel(ChannelSpec("out"))
    g.add_task(Task("A", 1.0, outputs=["c"]))
    g.add_task(Task("B", 1.0, inputs=["c"], outputs=["out"]))
    return g


WINDOW2 = (ChannelDecl("B", "c", window=2),)


class TestExplore:
    def test_default_decls_terminate_clean(self):
        model = build_model(_bounded_chain(1))
        result = model.explore()
        assert result.ok and result.verdict == "ok"
        assert not result.trace and not result.blocked

    def test_window_exceeding_capacity_deadlocks(self):
        # B holds 2 items of a capacity-1 channel before consuming: A's
        # second put and B's second get wait on each other forever.
        model = build_model(_bounded_chain(1), decls=WINDOW2)
        result = model.explore()
        assert result.verdict == "deadlock"
        assert "A" in result.deadlocked and "B" in result.deadlocked
        assert result.trace, "deadlock must come with a counterexample"
        # The minimized trace replays to the wedged state at model level.
        model.run_trace(result.trace)

    def test_capacity_two_absorbs_the_window(self):
        model = build_model(_bounded_chain(2), decls=WINDOW2)
        assert model.explore().ok

    def test_por_and_full_bfs_agree(self):
        for cap, decls in [(1, ()), (1, WINDOW2), (2, WINDOW2)]:
            g = _bounded_chain(cap)
            por = build_model(g, decls=decls).explore(por=True)
            bfs = build_model(g, decls=decls).explore(por=False)
            assert por.verdict == bfs.verdict
            # POR explores a single interleaving; full BFS at least that.
            assert bfs.states >= por.states

    def test_stride_mismatch_starves_consumer(self):
        # A emits only even timestamps; B (default decl) waits on c@1,
        # which is in no remaining program: starvation, not deadlock.
        model = build_model(
            _bounded_chain(1), decls=(ChannelDecl("A", "c", stride=2),)
        )
        result = model.explore()
        assert result.verdict == "starvation"
        assert "B" in result.starved
        assert collector_name("out") in result.starved

    def test_budget_truncation(self):
        result = build_model(_bounded_chain(1)).explore(budget=3)
        assert result.verdict == "budget"
        assert result.states <= 4

    def test_decl_unknown_pair_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            build_model(_bounded_chain(1), decls=(ChannelDecl("A", "nope"),))

    def test_decl_bad_window_rejected(self):
        with pytest.raises(ValueError, match="window"):
            ChannelDecl("B", "c", window=0)


class TestMinimalCapacity:
    def test_window_two_needs_capacity_two(self):
        assert minimal_capacity(_bounded_chain(1), "c", decls=WINDOW2) == 2

    def test_matches_brute_force_on_windowed_chains(self):
        # Property: the POR scan agrees with a full-BFS scan for every
        # window the horizon admits (monotone in capacity, so each scan
        # stops at its first safe value).
        for window in (1, 2, 3):
            decls = (ChannelDecl("B", "c", window=window),)
            g = _bounded_chain(1)
            fast = minimal_capacity(g, "c", decls=decls, por=True)
            slow = minimal_capacity(g, "c", decls=decls, por=False)
            assert fast == slow == window

    def test_unfixable_wedge_returns_none(self):
        # Starvation from a stride mismatch: no capacity helps.
        decls = (ChannelDecl("A", "c", stride=2),)
        assert minimal_capacity(_bounded_chain(1), "c", decls=decls) is None


class TestCheckModel:
    def test_clean_chain_certifies_capacity(self):
        report = check_model(_bounded_chain(1))
        assert "M001" not in rules(report) and "M002" not in rules(report)
        (m3,) = by_rule(report, "M003")
        assert m3.severity is Severity.INFO
        assert "certified" in m3.message

    def test_under_capacity_emits_m001_and_m003_error(self):
        report = check_model(_bounded_chain(1), decls=WINDOW2)
        (m1,) = by_rule(report, "M001")
        assert m1.severity is Severity.ERROR
        assert "counterexample" in m1.message
        (m3,) = by_rule(report, "M003")
        assert m3.severity is Severity.ERROR
        assert "below the minimal safe capacity 2" in m3.message

    def test_over_provisioned_is_info(self):
        report = check_model(_bounded_chain(4))
        (m3,) = by_rule(report, "M003")
        assert m3.severity is Severity.INFO
        assert "over-provisioned" in m3.message

    def test_starvation_emits_m002(self):
        report = check_model(
            _bounded_chain(1), decls=(ChannelDecl("A", "c", stride=2),)
        )
        (m2,) = by_rule(report, "M002")
        assert m2.severity is Severity.ERROR
        assert "never be satisfied" in m2.message

    def test_budget_emits_m004_and_no_claims(self):
        report = check_model(_bounded_chain(1), budget=3)
        (m4,) = by_rule(report, "M004")
        assert m4.severity is Severity.WARNING
        assert "no deadlock-freedom claim" in m4.message
        assert "M003" not in rules(report)

    def test_unbounded_graph_is_silent(self):
        g = TaskGraph("unbounded")
        g.add_channel(ChannelSpec("c"))
        g.add_task(Task("A", 1.0, outputs=["c"]))
        g.add_task(Task("B", 1.0, inputs=["c"]))
        assert not check_model(g).findings


class TestDowngrades:
    def test_p001_downgraded_when_proved_safe(self):
        # The two-channel wait cycle pass 3 warns about; the model proves
        # the runtime's self-timed order never reaches the wedge.
        g = TaskGraph("waits")
        g.add_channel(ChannelSpec("c1", capacity=1))
        g.add_channel(ChannelSpec("c2"))
        g.add_task(Task("A", 1.0, outputs=["c1", "c2"]))
        g.add_task(Task("B", 1.0, inputs=["c1", "c2"]))
        report = check_stm(g)
        (p1,) = by_rule(report, "P001")
        assert p1.severity is Severity.WARNING
        check_model(g, report=report)
        (p1,) = by_rule(report, "P001")
        assert p1.severity is Severity.INFO
        assert "[M: model-checked deadlock-free" in p1.message
        assert report.ok(strict=True)

    def test_p002_downgraded_with_m003_cross_reference(self):
        from repro.core.optimal import OptimalScheduler
        from repro.sim.cluster import SINGLE_NODE_SMP
        from repro.state import State

        g = TaskGraph("pipe")
        g.add_channel(ChannelSpec("ab", capacity=1))
        g.add_task(Task("A", 1.0, outputs=["ab"]))
        g.add_task(Task("B", 1.0, inputs=["ab"]))
        sol = OptimalScheduler(SINGLE_NODE_SMP(2)).solve(g, State(n_models=1))
        report = check_stm(g, sol)
        (p2,) = by_rule(report, "P002")
        assert p2.severity is Severity.ERROR
        check_model(g, sol, report=report)
        (p2,) = by_rule(report, "P002")
        assert p2.severity is Severity.INFO
        assert "[M003:" in p2.message and "back-pressure slip" in p2.message
        assert report.ok(strict=True)

    def test_no_downgrade_on_budget(self):
        g = TaskGraph("waits")
        g.add_channel(ChannelSpec("c1", capacity=1))
        g.add_channel(ChannelSpec("c2"))
        g.add_task(Task("A", 1.0, outputs=["c1", "c2"]))
        g.add_task(Task("B", 1.0, inputs=["c1", "c2"]))
        report = check_stm(g)
        check_model(g, report=report, budget=3)
        (p1,) = by_rule(report, "P001")
        assert p1.severity is Severity.WARNING


class TestReplay:
    def test_counterexample_wedges_real_runtime(self):
        g = _bounded_chain(1)
        model = build_model(g, decls=WINDOW2)
        result = model.explore()
        assert result.verdict == "deadlock"
        outcome = replay_trace(
            g, result.trace, result.deadlocked, decls=WINDOW2, model=model
        )
        assert outcome.wedged, (outcome.errors, outcome.progressed)
        assert not outcome.errors
        assert set(outcome.blocked) == set(result.deadlocked)

    def test_negative_control_capacity_two_progresses(self):
        # Same trace prefix on a capacity-2 channel: nothing wedges.
        g1 = _bounded_chain(1)
        result = build_model(g1, decls=WINDOW2).explore()
        g2 = _bounded_chain(2)
        outcome = replay_trace(g2, result.trace, result.deadlocked, decls=WINDOW2)
        assert not outcome.wedged
        assert "A" in outcome.progressed and "B" in outcome.progressed

    def test_invalid_trace_is_rejected_before_threads(self):
        from repro.analysis import Step

        g = _bounded_chain(1)
        bogus = [Step("B", "get", "c", 0)]  # get before any put
        with pytest.raises(ValueError):
            replay_trace(g, bogus, ["A"])


class TestShippedConfigurations:
    """Acceptance: zero M001/M002 on everything the repo ships."""

    def test_tracker_graph_is_wedge_free(self):
        from repro.apps.tracker.graph import build_tracker_graph

        report = check_model(build_tracker_graph())
        assert "M001" not in rules(report) and "M002" not in rules(report)

    @pytest.mark.parametrize("family", ["matmul", "fusion", "webinfer"])
    def test_workload_families_are_wedge_free(self, family):
        from repro.workloads import get_family, load_dataset

        fam = get_family(family)
        inst = load_dataset(family)[0]
        report = check_model(fam.build_graph(inst))
        assert "M001" not in rules(report) and "M002" not in rules(report)

    def test_builder_graphs_are_wedge_free(self):
        from repro.graph.builders import chain_graph, fork_join_graph, random_dag

        for g in (
            chain_graph([1.0, 2.0, 1.0]),
            fork_join_graph(0.1, [1.0, 1.2, 0.8], 0.2),
            random_dag(n_tasks=8, seed=7, dp_prob=0.3),
        ):
            report = check_model(g)
            assert "M001" not in rules(report) and "M002" not in rules(report)


class TestVerifyGate:
    def test_schedule_table_verify_runs_model_pass(self):
        from repro.core.optimal import OptimalScheduler
        from repro.core.table import ScheduleTable
        from repro.graph.builders import chain_graph
        from repro.sim.cluster import SINGLE_NODE_SMP
        from repro.state import StateSpace

        table = ScheduleTable.build(
            chain_graph([1.0, 1.0]),
            StateSpace.range("n_models", 1, 2),
            OptimalScheduler(SINGLE_NODE_SMP(2)),
            verify=True,  # must not raise: the model proves the chain safe
        )
        assert len(table) == 2
