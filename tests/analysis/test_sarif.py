"""SARIF 2.1.0 export: structure, locations, suppressions, round-trip."""

from __future__ import annotations

import json

from repro.analysis import (
    AnalysisReport,
    Severity,
    Waiver,
    from_sarif,
    to_sarif,
    write_sarif,
)


def sample_report():
    rep = AnalysisReport()
    rep.add("D001", "src:repro/sim/noise.py:42", "random.Random() with no seed")
    rep.add("M001", "graph:pipe/tasks:A+B", "reachable deadlock: ...")
    rep.add(
        "M003",
        "graph:pipe/channel:c",
        "declared capacity 1 is certified: minimal safe capacity is 1",
        severity=Severity.INFO,
    )
    rep.add("D003", "src:repro/stm/process.py:412", "bare threading.Lock()")
    rep.apply_waivers(
        [Waiver(rule="D003", location="stm/process.py", reason="broker-internal")]
    )
    return rep


class TestExport:
    def test_log_envelope(self):
        log = to_sarif(sample_report())
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro.analysis"
        assert len(run["results"]) == 4

    def test_rule_catalog_restricted_to_used_rules(self):
        log = to_sarif(sample_report())
        ids = {r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]}
        assert ids == {"D001", "M001", "M003", "D003"}

    def test_src_location_becomes_physical(self):
        log = to_sarif(sample_report())
        result = log["runs"][0]["results"][0]
        phys = result["locations"][0]["physicalLocation"]
        assert phys["artifactLocation"]["uri"] == "src/repro/sim/noise.py"
        assert phys["region"]["startLine"] == 42

    def test_object_path_becomes_logical(self):
        log = to_sarif(sample_report())
        result = log["runs"][0]["results"][1]
        (logical,) = result["locations"][0]["logicalLocations"]
        assert logical["fullyQualifiedName"] == "graph:pipe/tasks:A+B"

    def test_severity_levels_map(self):
        log = to_sarif(sample_report())
        levels = [r["level"] for r in log["runs"][0]["results"]]
        assert levels == ["warning", "error", "note", "warning"]

    def test_waived_finding_gets_suppression(self):
        log = to_sarif(sample_report())
        result = log["runs"][0]["results"][3]
        (sup,) = result["suppressions"]
        assert sup["kind"] == "inSource"
        assert sup["justification"] == "broker-internal"
        # Unwaived results carry no suppressions key at all.
        assert "suppressions" not in log["runs"][0]["results"][0]


class TestRoundTrip:
    def test_findings_survive(self):
        before = sample_report()
        after = from_sarif(to_sarif(before))
        assert len(after.findings) == len(before.findings)
        for a, b in zip(after.findings, before.findings):
            assert a.rule == b.rule
            assert a.severity is b.severity
            assert a.location == b.location
            assert a.message == b.message
            assert a.waived == b.waived
            assert a.waiver_reason == b.waiver_reason

    def test_gating_preserved(self):
        before = sample_report()
        after = from_sarif(to_sarif(before))
        assert after.ok() == before.ok()
        assert after.ok(strict=True) == before.ok(strict=True)

    def test_write_sarif_is_valid_json(self, tmp_path):
        out = write_sarif(sample_report(), tmp_path / "findings.sarif")
        log = json.loads(out.read_text(encoding="utf-8"))
        assert log["version"] == "2.1.0"
        assert len(from_sarif(log).findings) == 4
