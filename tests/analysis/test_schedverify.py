"""Pass 2 (schedule verification): seeded defect per S rule + property test."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis import verify_schedule_table, verify_shape_table, verify_solution
from repro.core.optimal import OptimalScheduler, ScheduleSolution
from repro.core.schedule import IterationSchedule, Placement, PipelinedSchedule
from repro.core.table import ScheduleTable
from repro.faults.failover import ShapeTable
from repro.graph.builders import chain_graph, random_dag
from repro.sim.cluster import SINGLE_NODE_SMP, ClusterSpec
from repro.state import State, StateSpace


def rules(report):
    return {f.rule for f in report.findings}


@pytest.fixture(scope="module")
def chain():
    return chain_graph([1.0, 1.0])


@pytest.fixture(scope="module")
def smp2():
    return SINGLE_NODE_SMP(2)


@pytest.fixture(scope="module")
def solution(chain, smp2):
    return OptimalScheduler(smp2).solve(chain, State(n_models=1))


def mutate(sol: ScheduleSolution, placements=None, pipelined=None) -> ScheduleSolution:
    """A copy of ``sol`` with a corrupted iteration and/or pipelining."""
    iteration = (
        IterationSchedule(placements, name=sol.iteration.name)
        if placements is not None
        else sol.iteration
    )
    return ScheduleSolution(
        state=sol.state,
        iteration=iteration,
        pipelined=pipelined if pipelined is not None else sol.pipelined,
        alternatives=sol.alternatives,
        explored=sol.explored,
    )


def test_genuine_solution_verifies_clean(solution, chain, smp2):
    report = verify_solution(solution, chain, smp2)
    assert not report.findings, report.summary()


def test_s001_missing_and_unknown_tasks(solution, chain, smp2):
    ps = list(solution.iteration.placements)
    bad = mutate(solution, placements=ps[:-1] + [replace(ps[-1], task="ZZ")])
    report = verify_solution(bad, chain, smp2)
    findings = [f for f in report if f.rule == "S001"]
    assert any("never placed" in f.message for f in findings)
    assert any("unknown to the graph" in f.message for f in findings)


def test_s002_processor_out_of_range(solution, chain, smp2):
    ps = list(solution.iteration.placements)
    bad = mutate(solution, placements=[replace(ps[0], procs=(99,))] + ps[1:])
    assert "S002" in rules(verify_solution(bad, chain, smp2))


def test_s003_overlap_on_one_processor(solution, chain, smp2):
    ps = [replace(p, procs=(0,), start=0.0) for p in solution.iteration.placements]
    assert "S003" in rules(verify_solution(mutate(solution, placements=ps), chain, smp2))


def test_s004_placement_spans_nodes(chain):
    cluster = ClusterSpec(nodes=2, procs_per_node=1)
    sol = OptimalScheduler(cluster).solve(chain, State(n_models=1))
    ps = list(sol.iteration.placements)
    bad = mutate(sol, placements=[replace(ps[0], procs=(0, 1))] + ps[1:])
    assert "S004" in rules(verify_solution(bad, chain, cluster))


def test_s005_successor_starts_before_predecessor_ends(solution, chain, smp2):
    ps = sorted(solution.iteration.placements, key=lambda p: p.start)
    bad = mutate(solution, placements=ps[:-1] + [replace(ps[-1], start=0.0, procs=(1,))])
    assert "S005" in rules(verify_solution(bad, chain, smp2))


def test_s006_s007_duration_disagrees_with_cost_model(solution, chain, smp2):
    ps = sorted(solution.iteration.placements, key=lambda p: p.start)
    bad = mutate(solution, placements=ps[:-1] + [replace(ps[-1], duration=2.0)])
    found = rules(verify_solution(bad, chain, smp2))
    assert "S006" in found  # duration off
    assert "S007" in found  # so the claimed latency L is off too


def test_s006_unknown_variant(solution, chain, smp2):
    ps = list(solution.iteration.placements)
    bad = mutate(solution, placements=[replace(ps[0], variant="dp99")] + ps[1:])
    report = verify_solution(bad, chain, smp2)
    assert any(
        f.rule == "S006" and "does not produce" in f.message for f in report
    )


def test_s008_latency_below_critical_path_bound(solution, chain):
    # Verify against a half-speed cluster: the claimed L=2s is impossible
    # there (the bound doubles), so the certificate must fail.
    slow = ClusterSpec(procs_by_node=[2], node_speeds=[0.5])
    assert "S008" in rules(verify_solution(solution, chain, slow))


def test_s009_initiation_interval_below_capacity(solution, chain, smp2):
    piped = solution.pipelined
    rushed = PipelinedSchedule(
        solution.iteration, period=piped.period / 4, shift=piped.shift,
        n_procs=piped.n_procs,
    )
    assert "S009" in rules(verify_solution(mutate(solution, pipelined=rushed), chain, smp2))


def test_s010_table_gap(chain, smp2):
    table = ScheduleTable.build(
        chain, StateSpace.range("n_models", 1, 2), OptimalScheduler(smp2)
    )
    report = verify_schedule_table(
        table, chain, StateSpace.range("n_models", 1, 3), smp2
    )
    gaps = [f for f in report if f.rule == "S010"]
    assert len(gaps) == 1 and "n_models=3" in gaps[0].location


def test_s011_unresolvable_transition(chain, smp2):
    class BrokenPolicy:
        def effect(self, old, new):
            raise RuntimeError("no transition plan")

    space = StateSpace.range("n_models", 1, 3)
    table = ScheduleTable.build(chain, space, OptimalScheduler(smp2))
    report = verify_schedule_table(
        table, chain, space, smp2, policy=BrokenPolicy()
    )
    # Three states -> six ordered pairs, each reported.
    assert len([f for f in report if f.rule == "S011"]) == 6


def test_s012_missing_failover_entry(chain):
    base = ClusterSpec(nodes=2, procs_per_node=1)
    sol = OptimalScheduler(base).solve(chain, State(n_models=1))
    table = ShapeTable({base.shape_key(): sol})  # no degraded entries
    report = verify_shape_table(table, chain, base)
    assert "S012" in rules(report)
    assert all(f.rule == "S012" for f in report), report.summary()


def test_s013_genuine_exact_certificate_verifies_clean(solution, chain, smp2):
    cert = solution.certificate
    assert cert is not None and cert.policy == "exact"
    assert not verify_solution(solution, chain, smp2).findings


def test_s013_genuine_bounded_and_list_certificates_verify_clean(chain, smp2):
    from repro.approx import resolve_policy

    for spec in ("bounded:0.5", "list"):
        sol = resolve_policy(spec).solve(chain, State(n_models=1), OptimalScheduler(smp2))
        assert sol.certificate is not None
        report = verify_solution(sol, chain, smp2)
        assert not report.findings, f"{spec}: {report.summary()}"


def test_s013_forged_lower_bound_above_latency(solution, chain, smp2):
    cert = replace(
        solution.certificate, lower_bound=solution.latency * 2, gap_bound=0.0
    )
    bad = replace(solution, certificate=cert)
    assert "S013" in rules(verify_solution(bad, chain, smp2))


def test_s013_forged_root_bound(solution, chain, smp2):
    cert = replace(solution.certificate, root_bound=solution.latency * 10)
    bad = replace(solution, certificate=cert)
    report = verify_solution(bad, chain, smp2)
    assert any(
        f.rule == "S013" and "re-derived bound" in f.message for f in report
    )


def test_s013_understated_gap(solution, chain, smp2):
    # Claims a gap of zero while the stated lower bound implies 100%.
    cert = replace(
        solution.certificate,
        policy="bounded",
        epsilon=2.0,
        lower_bound=solution.latency / 2,
        gap_bound=0.0,
    )
    bad = replace(solution, certificate=cert)
    report = verify_solution(bad, chain, smp2)
    assert any(f.rule == "S013" and "understates" in f.message for f in report)


def test_s013_bounded_rung_breaks_its_epsilon_promise(solution, chain, smp2):
    cert = replace(
        solution.certificate,
        policy="bounded",
        epsilon=0.1,
        lower_bound=solution.latency / 1.5,
        gap_bound=0.5,
    )
    bad = replace(solution, certificate=cert)
    report = verify_solution(bad, chain, smp2)
    assert any(f.rule == "S013" and "promised" in f.message for f in report)


def test_s013_unknown_policy(solution, chain, smp2):
    cert = replace(solution.certificate, policy="oracle")
    bad = replace(solution, certificate=cert)
    assert "S013" in rules(verify_solution(bad, chain, smp2))


def test_s013_certificate_free_solutions_are_exempt(solution, chain, smp2):
    legacy = replace(solution, certificate=None)
    assert not verify_solution(legacy, chain, smp2).findings


def test_full_tables_verify_clean(chain, smp2):
    space = StateSpace.range("n_models", 1, 3)
    table = ScheduleTable.build(chain, space, OptimalScheduler(smp2))
    assert not verify_schedule_table(table, chain, space, smp2).findings

    base = ClusterSpec(nodes=2, procs_per_node=2)
    shapes = ShapeTable.build(chain, State(n_models=1), base)
    assert not verify_shape_table(shapes, chain, base).findings


@pytest.mark.parametrize("seed", range(6))
def test_property_random_dag_solutions_verify(seed):
    """Schedules from the real optimizer always pass the verifier."""
    graph = random_dag(n_tasks=5, seed=seed, dp_prob=0.3)
    cluster = SINGLE_NODE_SMP(3)
    sol = OptimalScheduler(cluster).solve(graph, State(n_models=2))
    report = verify_solution(sol, graph, cluster)
    assert not report.findings, f"seed {seed}: {report.summary()}"
