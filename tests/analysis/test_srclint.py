"""Pass 6 (determinism lint): D rules, kernel scope, the repo's own sweep."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import Severity, lint_file, lint_sources
from repro.analysis.waivers import collect_waivers


def rules(report):
    return {f.rule for f in report.findings}


def lint_snippet(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_file(path, root=tmp_path)


class TestD001:
    def test_unseeded_random_constructor(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import random
            rng = random.Random()
            """,
        )
        (f,) = report.findings
        assert f.rule == "D001" and f.severity is Severity.WARNING
        assert "no seed" in f.message

    def test_seeded_constructor_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import random
            rng = random.Random(7)
            """,
        )
        assert not report.findings

    def test_module_level_functions_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import random
            x = random.randint(0, 3)
            """,
        )
        (f,) = report.findings
        assert f.rule == "D001" and "shared unseeded state" in f.message

    def test_from_import_and_alias_resolved(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from random import Random as R
            rng = R()
            """,
        )
        assert rules(report) == {"D001"}

    def test_system_random_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import random
            rng = random.SystemRandom()
            """,
        )
        assert not report.findings


class TestD002:
    def test_wallclock_in_compute_function(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import time
            def compute(state, inputs):
                return {"out": time.perf_counter()}
            """,
        )
        (f,) = report.findings
        assert f.rule == "D002" and "wall clock" in f.message

    def test_wallclock_in_kernels_module(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import time
            def helper():
                return time.time()
            """,
            name="app_kernels.py",
        )
        assert rules(report) == {"D002"}

    def test_harness_timing_is_not_kernel_scope(self, tmp_path):
        # run_kernel/invoke_kernel are the harness, where span timing
        # belongs; only compute*/kernel* name prefixes are kernel scope.
        report = lint_snippet(
            tmp_path,
            """
            import time
            def run_kernel(task):
                t0 = time.perf_counter()
                return t0
            """,
        )
        assert not report.findings

    def test_module_level_wallclock_is_fine(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import time
            T0 = time.time()
            """,
        )
        assert not report.findings


class TestD003:
    def test_bare_lock_in_stm_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import threading
            lock = threading.Lock()
            """,
            name="stm/guard.py",
        )
        (f,) = report.findings
        assert f.rule == "D003" and "race checker" in f.message

    def test_rlock_flagged_too(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import threading
            lock = threading.RLock()
            """,
            name="stm/guard.py",
        )
        assert rules(report) == {"D003"}

    def test_analysis_none_branch_is_sanctioned(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import threading
            def make_lock(analysis):
                if analysis is None:
                    return threading.Lock()
                return analysis.tracked_lock("ch")
            """,
            name="stm/guard.py",
        )
        assert not report.findings

    def test_outside_stm_is_fine(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import threading
            lock = threading.Lock()
            """,
            name="runtime/guard.py",
        )
        assert not report.findings


class TestSweep:
    def test_syntax_error_propagates(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n", encoding="utf-8")
        with pytest.raises(SyntaxError):
            lint_file(path, root=tmp_path)

    def test_repo_sweep_is_clean_after_waivers(self):
        # The library's own sources must pass their own lint: every
        # remaining D finding carries an inline waiver with a reason.
        report = lint_sources()
        root = Path(__file__).resolve().parents[2]
        report.apply_waivers(collect_waivers([root / "src"]))
        gating = [f for f in report.findings if not f.waived]
        assert not gating, [str(f) for f in gating]
        assert report.ok(strict=True)

    def test_stm_process_waivers_cover_broker_locks(self):
        # The two sanctioned bare locks in repro.stm.process stay visible
        # in the report (waived, with reasons), not silently exempted.
        report = lint_sources()
        root = Path(__file__).resolve().parents[2]
        report.apply_waivers(collect_waivers([root / "src"]))
        waived = [
            f
            for f in report.findings
            if f.rule == "D003" and "stm/process.py" in f.location
        ]
        assert len(waived) == 2
        assert all(f.waived and f.waiver_reason for f in waived)
