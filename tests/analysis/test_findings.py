"""Report mechanics: severities, waivers, gating, serialization, catalog."""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.analysis import AnalysisReport, Finding, Severity, Waiver
from repro.analysis.rules import RULES, get_rule


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_parse(self):
        assert Severity.parse("error") is Severity.ERROR
        assert Severity.parse("Warning") is Severity.WARNING

    def test_parse_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")


class TestCatalog:
    def test_ids_well_formed(self):
        for rid, rule in RULES.items():
            assert re.fullmatch(r"[GSPRFWMD]\d{3}", rid)
            assert rule.id == rid

    def test_every_rule_documented(self):
        for rule in RULES.values():
            assert rule.name and rule.description and rule.hint

    def test_names_unique(self):
        names = [r.name for r in RULES.values()]
        assert len(names) == len(set(names))

    def test_get_rule_unknown(self):
        with pytest.raises(ValueError, match="unknown analysis rule"):
            get_rule("X999")

    def test_every_rule_has_a_seeded_fixture(self):
        """Each cataloged rule id must appear in some test in this suite."""
        here = Path(__file__).parent
        corpus = "".join(
            f.read_text(encoding="utf-8")
            for f in here.glob("test_*.py")
            if f.name != Path(__file__).name
        )
        missing = [rid for rid in RULES if rid not in corpus]
        assert not missing, f"rules without a test fixture: {missing}"


class TestReport:
    def test_add_uses_rule_severity_and_hint(self):
        rep = AnalysisReport()
        f = rep.add("G003", "graph:g/channel:c", "boom")
        assert f.severity is Severity.ERROR
        assert f.hint == get_rule("G003").hint

    def test_add_severity_override(self):
        rep = AnalysisReport()
        f = rep.add("G010", "loc", "msg", severity=Severity.ERROR)
        assert f.severity is Severity.ERROR

    def test_add_unknown_rule(self):
        with pytest.raises(ValueError):
            AnalysisReport().add("Z000", "loc", "msg")

    def test_gating_levels(self):
        rep = AnalysisReport()
        rep.add("P004", "loc", "info-level")  # INFO
        assert rep.ok() and rep.ok(strict=True)
        rep.add("G005", "loc", "warning-level")  # WARNING
        assert rep.ok() and not rep.ok(strict=True)
        rep.add("G003", "loc", "error-level")  # ERROR
        assert not rep.ok() and not rep.ok(strict=True)

    def test_active_sorts_worst_first(self):
        rep = AnalysisReport()
        rep.add("P004", "a", "m")
        rep.add("G003", "b", "m")
        rep.add("G005", "c", "m")
        assert [f.severity for f in rep.active()] == [
            Severity.ERROR,
            Severity.WARNING,
            Severity.INFO,
        ]

    def test_extend_merges(self):
        a, b = AnalysisReport(), AnalysisReport()
        a.add("G003", "x", "m")
        b.add("G005", "y", "m")
        a.extend(b)
        assert len(a) == 2

    def test_counts_and_summary(self):
        rep = AnalysisReport()
        rep.add("G003", "loc", "m")
        rep.add("G005", "loc", "m")
        assert rep.counts() == {"error": 1, "warning": 1, "info": 0, "waived": 0}
        assert "1 error(s), 1 warning(s)" in rep.summary()


class TestWaivers:
    def test_waiver_matches_rule_and_location_substring(self):
        f = Finding("G005", Severity.WARNING, "graph:g/channel:tap", "m")
        assert Waiver("G005", "channel:tap").matches(f)
        assert not Waiver("G003", "channel:tap").matches(f)
        assert not Waiver("G005", "channel:other").matches(f)

    def test_apply_waivers_ungates(self):
        rep = AnalysisReport()
        rep.add("G003", "graph:g/channel:dead", "m")
        assert not rep.ok()
        n = rep.apply_waivers([Waiver("G003", "channel:dead", reason="known")])
        assert n == 1
        assert rep.ok(strict=True)
        assert rep.waived()[0].waiver_reason == "known"
        assert rep.counts()["waived"] == 1

    def test_waived_stays_in_report_and_summary(self):
        rep = AnalysisReport()
        rep.add("G005", "graph:g/channel:tap", "m")
        rep.apply_waivers([Waiver("G005", "channel:tap", reason="by design")])
        assert "by design" in rep.summary(show_waived=True)
        assert "G005" not in rep.summary(show_waived=False).splitlines()[0]


class TestSerialization:
    def test_round_trip(self):
        rep = AnalysisReport()
        rep.add("G003", "graph:g/channel:c", "msg")
        rep.add("G005", "graph:g/channel:d", "msg2")
        rep.apply_waivers([Waiver("G005", "channel:d", reason="ok")])
        data = json.loads(rep.to_json())
        assert data["schema_version"] == 1
        back = AnalysisReport.from_dict(data)
        assert [f.rule for f in back] == [f.rule for f in rep]
        assert back.waived()[0].waiver_reason == "ok"
        assert back.counts() == rep.counts()
