"""Pass 1 (graph lint): one seeded true-positive graph per G rule."""

from __future__ import annotations

from repro.analysis import Severity, lint_graph
from repro.graph.builders import chain_graph, fork_join_graph
from repro.graph.channel import ChannelSpec
from repro.graph.task import DataParallelSpec, Task
from repro.graph.taskgraph import TaskGraph
from repro.state import State, StateSpace

STATES = StateSpace.range("n_models", 1, 3)


def rules(report):
    return {f.rule for f in report.findings}


def test_clean_graphs_have_no_findings():
    for g in (chain_graph([1.0, 2.0]), fork_join_graph(0.1, [1.0, 0.5], 0.2)):
        report = lint_graph(g, states=STATES)
        assert not report.findings, report.summary()


def test_g001_cycle():
    g = TaskGraph("cycle")
    g.add_channel(ChannelSpec("ab"))
    g.add_channel(ChannelSpec("ba"))
    g.add_task(Task("A", 1.0, inputs=["ba"], outputs=["ab"]))
    g.add_task(Task("B", 1.0, inputs=["ab"], outputs=["ba"]))
    report = lint_graph(g)
    assert "G001" in rules(report)
    (f,) = [f for f in report if f.rule == "G001"]
    assert "A" in f.message and "B" in f.message


def test_g002_undeclared_channel():
    g = TaskGraph("ghost")
    g.add_task(Task("A", 1.0, outputs=["phantom"]))
    report = lint_graph(g)
    assert "G002" in rules(report)
    assert "phantom" in [f for f in report if f.rule == "G002"][0].message


def test_g003_unwritten_channel():
    g = TaskGraph("unwritten")
    g.add_channel(ChannelSpec("never"))
    g.add_task(Task("A", 1.0, inputs=["never"]))
    assert "G003" in rules(lint_graph(g))


def test_g004_multiple_producers():
    g = TaskGraph("multi")
    g.add_channel(ChannelSpec("shared"))
    g.add_task(Task("A", 1.0, outputs=["shared"]))
    g.add_task(Task("B", 1.0, outputs=["shared"]))
    g.add_task(Task("C", 1.0, inputs=["shared"]))
    assert "G004" in rules(lint_graph(g))


def test_g005_orphan_channel_is_warning():
    g = TaskGraph("orphan")
    g.add_channel(ChannelSpec("floating"))
    g.add_task(Task("A", 1.0))
    report = lint_graph(g)
    (f,) = [f for f in report if f.rule == "G005"]
    assert f.severity is Severity.WARNING


def test_g006_unreachable_task():
    g = TaskGraph("island")
    g.add_channel(ChannelSpec("main"))
    g.add_channel(ChannelSpec("dead"))
    g.add_task(Task("src", 1.0, outputs=["main"]))
    g.add_task(Task("ok", 1.0, inputs=["main"]))
    g.add_task(Task("stranded", 1.0, inputs=["dead"]))
    report = lint_graph(g)
    assert "G006" in rules(report)
    assert "stranded" in [f for f in report if f.rule == "G006"][0].location


def test_g007_size_model_fails_for_state():
    def bad_size(state):
        if state["n_models"] > 1:
            raise ValueError("no size for you")
        return 8

    g = TaskGraph("sized")
    g.add_channel(ChannelSpec("c", item_bytes=bad_size))
    g.add_task(Task("A", 1.0, outputs=["c"]))
    g.add_task(Task("B", 1.0, inputs=["c"]))
    report = lint_graph(g, states=STATES)
    findings = [f for f in report if f.rule == "G007"]
    assert len(findings) == 1  # one finding per channel, not per state


def test_g008_produced_static_channel():
    g = TaskGraph("static-writer")
    g.add_channel(ChannelSpec("config", static=True))
    g.add_task(Task("A", 1.0, outputs=["config"]))
    g.add_task(Task("B", 1.0, inputs=["config"]))
    assert "G008" in rules(lint_graph(g))


def test_g009_chunk_kernels_without_spec():
    g = TaskGraph("chunky")
    g.add_task(
        Task(
            "A",
            1.0,
            compute_chunk=lambda s, i, k, n: k,
            compute_join=lambda s, i, parts: {},
        )
    )
    assert "G009" in rules(lint_graph(g))


def test_g009_spec_and_serial_kernel_without_chunk_kernels():
    g = TaskGraph("fallback")
    g.add_task(
        Task(
            "A",
            1.0,
            data_parallel=DataParallelSpec([1, 2]),
            compute=lambda s, i: {},
        )
    )
    assert "G009" in rules(lint_graph(g))


def test_g010_fewer_chunks_than_workers():
    spec = DataParallelSpec([1, 4], chunks_for=lambda state, w: 2)
    g = TaskGraph("narrow")
    g.add_task(Task("A", 1.0, data_parallel=spec))
    report = lint_graph(g, states=STATES)
    (f,) = [f for f in report if f.rule == "G010"]
    assert f.severity is Severity.WARNING


def test_g010_chunks_for_raises_is_error():
    def explode(state, w):
        raise RuntimeError("bad decomposition")

    g = TaskGraph("explosive")
    g.add_task(Task("A", 1.0, data_parallel=DataParallelSpec([1, 2], chunks_for=explode)))
    report = lint_graph(g, states=STATES)
    (f,) = [f for f in report if f.rule == "G010"]
    assert f.severity is Severity.ERROR


def test_g011_dominated_variant():
    # Overhead so large that dp2 never beats serial anywhere in the space.
    spec = DataParallelSpec([1, 2], per_chunk_overhead=100.0)
    g = TaskGraph("dominated")
    g.add_task(Task("A", 1.0, data_parallel=spec))
    report = lint_graph(g, states=STATES)
    (f,) = [f for f in report if f.rule == "G011"]
    assert f.severity is Severity.INFO


def test_g011_needs_states():
    spec = DataParallelSpec([1, 2], per_chunk_overhead=100.0)
    g = TaskGraph("dominated")
    g.add_task(Task("A", 1.0, data_parallel=spec))
    assert "G011" not in rules(lint_graph(g))  # no state space, no verdict


def test_lint_keeps_going_after_errors():
    """Several independent defects all surface in one report."""
    g = TaskGraph("mess")
    g.add_channel(ChannelSpec("unwritten"))
    g.add_channel(ChannelSpec("orphan"))
    g.add_task(Task("A", 1.0, inputs=["unwritten"], outputs=["ghost"]))
    found = rules(lint_graph(g))
    assert {"G002", "G003", "G005"} <= found
