"""Pass 3 (STM protocol): wait cycles, capacity, leaks, born-consumed."""

from __future__ import annotations

from repro.analysis import Severity, check_stm
from repro.core.optimal import OptimalScheduler
from repro.graph.channel import ChannelSpec
from repro.graph.task import Task
from repro.graph.taskgraph import TaskGraph
from repro.sim.cluster import SINGLE_NODE_SMP
from repro.state import State


def rules(report):
    return {f.rule for f in report.findings}


def test_p001_multi_channel_wait_cycle():
    # A's put on bounded c1 back-pressures on B, while B's gets wait on A
    # through both channels: a two-channel cycle that can deadlock if A
    # fills c1 before producing c2.
    g = TaskGraph("waits")
    g.add_channel(ChannelSpec("c1", capacity=1))
    g.add_channel(ChannelSpec("c2"))
    g.add_task(Task("A", 1.0, outputs=["c1", "c2"]))
    g.add_task(Task("B", 1.0, inputs=["c1", "c2"]))
    report = check_stm(g)
    (f,) = [f for f in report if f.rule == "P001"]
    assert f.severity is Severity.WARNING
    assert "c1" in f.message and "c2" in f.message


def test_p001_single_channel_backpressure_is_flow_control():
    g = TaskGraph("flow")
    g.add_channel(ChannelSpec("c", capacity=1))
    g.add_task(Task("A", 1.0, outputs=["c"]))
    g.add_task(Task("B", 1.0, inputs=["c"]))
    assert "P001" not in rules(check_stm(g))


def _bounded_chain(capacity):
    g = TaskGraph("pipe")
    g.add_channel(ChannelSpec("ab", capacity=capacity))
    g.add_task(Task("A", 1.0, outputs=["ab"]))
    g.add_task(Task("B", 1.0, inputs=["ab"]))
    return g


def test_p002_capacity_insufficient_for_schedule():
    g = _bounded_chain(capacity=1)
    sol = OptimalScheduler(SINGLE_NODE_SMP(2)).solve(g, State(n_models=1))
    # A ends at 1s, B drains at 2s, II=1s: two items in flight, capacity 1.
    report = check_stm(g, sol)
    (f,) = [f for f in report if f.rule == "P002"]
    assert "capacity is 1" in f.message


def test_p002_sufficient_capacity_is_clean():
    g = _bounded_chain(capacity=2)
    sol = OptimalScheduler(SINGLE_NODE_SMP(2)).solve(g, State(n_models=1))
    assert "P002" not in rules(check_stm(g, sol))


def test_p002_needs_a_schedule():
    assert "P002" not in rules(check_stm(_bounded_chain(capacity=1)))


def test_p003_consume_leak():
    g = TaskGraph("leak")
    g.add_channel(ChannelSpec("used"))
    g.add_channel(ChannelSpec("tap"))
    g.add_task(Task("A", 1.0, outputs=["used", "tap"]))
    g.add_task(Task("B", 1.0, inputs=["used"]))
    (f,) = [f for f in check_stm(g) if f.rule == "P003"]
    assert "tap" in f.location


def test_p003_terminal_outputs_are_exempt():
    # A sink's sole output is the application's result stream; every
    # runtime drains it with an implicit collector.
    g = TaskGraph("sink")
    g.add_channel(ChannelSpec("mid"))
    g.add_channel(ChannelSpec("result"))
    g.add_task(Task("A", 1.0, outputs=["mid"]))
    g.add_task(Task("B", 1.0, inputs=["mid"], outputs=["result"]))
    assert "P003" not in rules(check_stm(g))


def test_p004_concurrent_consumers():
    g = TaskGraph("fanout")
    g.add_channel(ChannelSpec("src"))
    g.add_task(Task("S", 1.0, outputs=["src"]))
    g.add_task(Task("B", 1.0, inputs=["src"]))
    g.add_task(Task("C", 1.0, inputs=["src"]))
    findings = [f for f in check_stm(g) if f.rule == "P004"]
    assert len(findings) == 1  # one per channel, even with more consumers
    assert findings[0].severity is Severity.INFO


def test_p004_ordered_consumers_are_clean():
    # C consumes src but is a descendant of B, so their gets are ordered.
    g = TaskGraph("ordered")
    g.add_channel(ChannelSpec("src"))
    g.add_channel(ChannelSpec("mid"))
    g.add_task(Task("S", 1.0, outputs=["src"]))
    g.add_task(Task("B", 1.0, inputs=["src"], outputs=["mid"]))
    g.add_task(Task("C", 1.0, inputs=["src", "mid"]))
    assert "P004" not in rules(check_stm(g))


def test_cyclic_graph_does_not_crash_stm_pass():
    g = TaskGraph("cycle")
    g.add_channel(ChannelSpec("ab"))
    g.add_channel(ChannelSpec("ba"))
    g.add_task(Task("A", 1.0, inputs=["ba"], outputs=["ab"]))
    g.add_task(Task("B", 1.0, inputs=["ab"], outputs=["ba"]))
    check_stm(g)  # cycles are pass-1 findings; pass 3 must not raise
