"""F001: fleet packing verification — seeded true-positive fixtures.

Each test plants one specific geometry violation in a hand-built
:class:`Packing` and asserts the verifier reports it under rule ``F001``;
the final tests check a real :class:`FleetManager` packing comes back
clean and that a demoted tenant's schedule is re-certified against its
*narrow* virtual sub-cluster, not the width it asked for.
"""

from __future__ import annotations

import pytest

from repro.analysis import verify_packing
from repro.fleet import FleetManager, TenantSpec
from repro.fleet.placer import Carve, Packing
from repro.fleet.tenant import Tenant
from repro.graph.builders import chain_graph
from repro.sim.cluster import ClusterSpec
from repro.state import State, StateSpace

BASE = ClusterSpec(nodes=2, procs_per_node=2)  # procs 0,1 on node 0; 2,3 on node 1
SPACE = StateSpace.range("n_models", 1, 2)


def make_tenant(tid: str, width: int = 1, max_width: int = 2) -> Tenant:
    spec = TenantSpec(
        name=tid,
        graph=chain_graph([0.05, 0.1], name=tid),
        space=SPACE,
        initial=State(n_models=1),
        max_width=max_width,
    )
    tenant = Tenant(id=tid, spec=spec, state=spec.initial, seq=1)
    tenant.granted = width
    tenant.active = tenant.solution(width=width)
    return tenant


def packing_of(*carves: Carve, capacity: int = 4) -> Packing:
    return Packing(carves={c.tenant_id: c for c in carves}, capacity=capacity)


def f001_messages(report) -> list[str]:
    return [f.message for f in report if f.rule == "F001"]


class TestGeometryViolations:
    def test_clean_packing_no_findings(self):
        t = make_tenant("a")
        report = verify_packing(
            packing_of(Carve("a", 0, (0,), want=1)), BASE, {"a": t}
        )
        assert report.ok(strict=True)

    def test_double_granted_processor(self):
        a, b = make_tenant("a"), make_tenant("b")
        report = verify_packing(
            packing_of(Carve("a", 0, (0,), want=1), Carve("b", 0, (0,), want=1)),
            BASE,
            {"a": a, "b": b},
        )
        assert any("granted to both" in m for m in f001_messages(report))
        assert not report.ok()

    def test_node_capacity_overflow(self):
        a = make_tenant("a", width=2)
        b = make_tenant("b")
        report = verify_packing(
            packing_of(Carve("a", 0, (0, 1), want=2), Carve("b", 0, (2,), want=1)),
            BASE,
            {"a": a, "b": b},
        )
        msgs = f001_messages(report)
        # proc 2 lives on node 1, and node 0 would be over capacity.
        assert any("not the carve's node" in m for m in msgs)

    def test_overflow_against_alive_not_total(self):
        a = make_tenant("a", width=2)
        report = verify_packing(
            packing_of(Carve("a", 0, (0, 1), want=2)),
            BASE,
            {"a": a},
            dead_procs=[1],
        )
        msgs = f001_messages(report)
        assert any("dead but still carved" in m for m in msgs)
        assert any("alive processor(s)" in m for m in msgs)

    def test_processor_outside_cluster(self):
        a = make_tenant("a")
        report = verify_packing(
            packing_of(Carve("a", 0, (9,), want=1)), BASE, {"a": a}
        )
        assert any("outside the base cluster" in m for m in f001_messages(report))

    def test_unknown_tenant_carve(self):
        report = verify_packing(
            packing_of(Carve("ghost", 0, (0,), want=1)), BASE, {}
        )
        assert any("unknown tenant" in m for m in f001_messages(report))

    def test_admitted_without_carve_or_marker(self):
        a = make_tenant("a")
        report = verify_packing(packing_of(), BASE, {"a": a})
        assert any("neither a carve" in m for m in f001_messages(report))

    def test_unplaced_marker_is_accepted(self):
        a = make_tenant("a")
        a.granted, a.active = 0, None
        packing = packing_of()
        packing.unplaced.append("a")
        assert verify_packing(packing, BASE, {"a": a}).ok(strict=True)

    def test_carve_without_active_schedule(self):
        a = make_tenant("a")
        a.active = None
        report = verify_packing(
            packing_of(Carve("a", 0, (0,), want=1)), BASE, {"a": a}
        )
        assert any("no active schedule" in m for m in f001_messages(report))


class TestScheduleRecertification:
    def test_schedule_wider_than_carve_fails_s_rules(self):
        # The tenant's active schedule was built for width 2 (and, being
        # fork-join, genuinely uses both processors) but the carve only
        # grants one: the S-rule certificate must fail against the narrow
        # virtual sub-cluster.
        from repro.graph.builders import fork_join_graph

        spec = TenantSpec(
            name="fj",
            graph=fork_join_graph(0.02, [0.3, 0.3], 0.02, name="fj"),
            space=SPACE,
            initial=State(n_models=1),
            max_width=2,
        )
        a = Tenant(id="a", spec=spec, state=spec.initial, seq=1)
        a.granted = 2
        a.active = a.solution(width=2)
        report = verify_packing(
            packing_of(Carve("a", 0, (0,), want=2)), BASE, {"a": a}
        )
        assert not report.ok()
        assert any(f.rule.startswith("S") for f in report)

    def test_demoted_tenant_with_matching_schedule_passes(self):
        a = make_tenant("a", width=1)  # schedule built for the narrow width
        report = verify_packing(
            packing_of(Carve("a", 0, (0,), want=2)), BASE, {"a": a}
        )
        assert report.ok(strict=True)


class TestLiveFleet:
    def test_manager_verify_is_clean_under_contention(self):
        mgr = FleetManager(ClusterSpec(nodes=1, procs_per_node=3))
        spec = make_tenant("c").spec
        ids = [mgr.admit(spec, time=float(i)).tenant_id for i in range(3)]
        for i, tid in enumerate(ids):
            mgr.on_regime(tid, State(n_models=2), time=10.0 + i)
        report = mgr.verify(strict=True)
        assert report.ok(strict=True)

    def test_manager_verify_raises_on_planted_overflow(self):
        from repro.errors import AnalysisError

        mgr = FleetManager(ClusterSpec(nodes=1, procs_per_node=2))
        spec = make_tenant("c").spec
        tid = mgr.admit(spec, time=0.0).tenant_id
        carve = mgr.packing.carves[tid]
        mgr.packing.carves[tid] = Carve(tid, carve.node, (0, 0), want=2)
        with pytest.raises(AnalysisError):
            mgr.verify()
