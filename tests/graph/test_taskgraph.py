"""Unit tests for the task-graph container."""

from __future__ import annotations

import pytest

from repro.errors import (
    CycleError,
    DuplicateNameError,
    GraphError,
    UnknownNameError,
)
from repro.graph.channel import ChannelSpec
from repro.graph.task import Task
from repro.graph.taskgraph import TaskGraph
from repro.state import State


def two_task_graph() -> TaskGraph:
    g = TaskGraph("g")
    g.add_channel(ChannelSpec("c", item_bytes=64))
    g.add_task(Task("p", cost=1.0, outputs=["c"]))
    g.add_task(Task("q", cost=2.0, inputs=["c"]))
    return g


class TestConstruction:
    def test_duplicate_task_name(self):
        g = TaskGraph()
        g.add_task(Task("t", cost=1.0))
        with pytest.raises(DuplicateNameError):
            g.add_task(Task("t", cost=2.0))

    def test_task_channel_name_collision(self):
        g = TaskGraph()
        g.add_channel(ChannelSpec("x"))
        with pytest.raises(DuplicateNameError):
            g.add_task(Task("x", cost=1.0))

    def test_unknown_lookup(self):
        g = TaskGraph()
        with pytest.raises(UnknownNameError):
            g.task("nope")
        with pytest.raises(UnknownNameError):
            g.channel("nope")

    def test_remove_task(self):
        g = two_task_graph()
        g.remove_task("q")
        assert "q" not in g
        with pytest.raises(UnknownNameError):
            g.remove_task("q")

    def test_len_iter_contains(self):
        g = two_task_graph()
        assert len(g) == 2 and "p" in g
        assert [t.name for t in g] == ["p", "q"]


class TestValidation:
    def test_valid_graph_passes(self):
        two_task_graph().validate()

    def test_undeclared_channel(self):
        g = TaskGraph()
        g.add_task(Task("t", cost=1.0, outputs=["ghost"]))
        with pytest.raises(UnknownNameError):
            g.validate()

    def test_consumer_without_producer(self):
        g = TaskGraph()
        g.add_channel(ChannelSpec("c"))
        g.add_task(Task("q", cost=1.0, inputs=["c"]))
        with pytest.raises(GraphError):
            g.validate()

    def test_two_producers_rejected(self):
        g = TaskGraph()
        g.add_channel(ChannelSpec("c"))
        g.add_task(Task("a", cost=1.0, outputs=["c"]))
        g.add_task(Task("b", cost=1.0, outputs=["c"]))
        with pytest.raises(GraphError):
            g.validate()

    def test_static_channel_needs_no_producer(self):
        g = TaskGraph()
        g.add_channel(ChannelSpec("cfg", static=True))
        g.add_channel(ChannelSpec("c"))
        g.add_task(Task("p", cost=1.0, outputs=["c"]))
        g.add_task(Task("q", cost=1.0, inputs=["c", "cfg"]))
        g.validate()

    def test_cycle_detected(self):
        g = TaskGraph()
        g.add_channel(ChannelSpec("ab"))
        g.add_channel(ChannelSpec("ba"))
        g.add_task(Task("a", cost=1.0, inputs=["ba"], outputs=["ab"]))
        g.add_task(Task("b", cost=1.0, inputs=["ab"], outputs=["ba"]))
        with pytest.raises(CycleError):
            g.validate()


class TestConnectivity:
    def test_producers_consumers(self, tracker_graph):
        assert [t.name for t in tracker_graph.producers("frame")] == ["T1"]
        assert {t.name for t in tracker_graph.consumers("frame")} == {"T2", "T3", "T4"}

    def test_succ_pred(self, tracker_graph):
        assert set(tracker_graph.successors("T1")) == {"T2", "T3", "T4"}
        assert set(tracker_graph.predecessors("T4")) == {"T1", "T2", "T3"}
        assert tracker_graph.predecessors("T1") == []

    def test_static_channels_do_not_induce_precedence(self, tracker_graph):
        # color_model is static: nothing precedes T4 through it.
        for pred in tracker_graph.predecessors("T4"):
            assert pred != "color_model"

    def test_channels_between(self, tracker_graph):
        between = tracker_graph.channels_between("T1", "T4")
        assert [c.name for c in between] == ["frame"]
        assert tracker_graph.channels_between("T2", "T3") == []

    def test_comm_bytes(self):
        g = two_task_graph()
        assert g.comm_bytes("p", "q", State(n_models=1)) == 64

    def test_sources_and_sinks(self, tracker_graph):
        assert tracker_graph.source_tasks() == ["T1"]
        assert tracker_graph.sink_tasks() == ["T5"]


class TestAnalysis:
    def test_topo_order_respects_precedence(self, tracker_graph):
        order = tracker_graph.topo_order()
        assert order.index("T1") < order.index("T2")
        assert order.index("T2") < order.index("T4")
        assert order.index("T3") < order.index("T4")
        assert order.index("T4") < order.index("T5")

    def test_topo_order_stable(self, tracker_graph):
        assert tracker_graph.topo_order() == tracker_graph.topo_order()

    def test_serial_time(self, simple_chain, m1):
        assert simple_chain.serial_time(m1) == pytest.approx(6.0)

    def test_critical_path_chain(self, simple_chain, m1):
        assert simple_chain.critical_path(m1) == pytest.approx(6.0)

    def test_critical_path_diamond(self, diamond, m1):
        # 0.5 + max(1, 1) + 0.25
        assert diamond.critical_path(m1) == pytest.approx(1.75)

    def test_critical_path_with_variants(self, tracker_graph, m8):
        full = tracker_graph.critical_path(m8)
        best = tracker_graph.critical_path(m8, use_best_variants=True, max_workers=4)
        assert best < full  # T4's dp4 variant shortens the path

    def test_copy_shares_structure(self, tracker_graph):
        c = tracker_graph.copy("clone")
        assert c.task_names == tracker_graph.task_names
        assert c.name == "clone"
        c.remove_task("T5")
        assert "T5" in tracker_graph
