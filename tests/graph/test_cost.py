"""Unit and property tests for cost models."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import CostModelError
from repro.graph.cost import (
    CallableCost,
    ConstantCost,
    LinearCost,
    TableCost,
    ZeroCost,
    as_cost,
)
from repro.state import State


class TestZeroAndConstant:
    def test_zero(self):
        assert ZeroCost()(State(n_models=3)) == 0.0
        assert ZeroCost() == ZeroCost()

    def test_constant_ignores_state(self, m1, m8):
        c = ConstantCost(0.12)
        assert c(m1) == c(m8) == 0.12

    def test_constant_rejects_negative(self):
        with pytest.raises(CostModelError):
            ConstantCost(-0.1)

    def test_constant_equality(self):
        assert ConstantCost(1.0) == ConstantCost(1.0)
        assert ConstantCost(1.0) != ConstantCost(2.0)


class TestLinear:
    def test_paper_t4_shape(self):
        t4 = LinearCost(base=0.023, slope=0.853, variable="n_models")
        assert t4(State(n_models=1)) == pytest.approx(0.876)
        assert t4(State(n_models=8)) == pytest.approx(6.847)

    def test_missing_variable_raises(self):
        with pytest.raises(CostModelError):
            LinearCost(0.0, 1.0, "n_models")(State(other=1))

    def test_negative_params_rejected(self):
        with pytest.raises(CostModelError):
            LinearCost(-1.0, 1.0)
        with pytest.raises(CostModelError):
            LinearCost(1.0, -1.0)

    @given(
        base=st.floats(0, 10),
        slope=st.floats(0, 10),
        a=st.integers(1, 100),
        b=st.integers(1, 100),
    )
    def test_monotone_in_variable(self, base, slope, a, b):
        cost = LinearCost(base, slope)
        lo, hi = min(a, b), max(a, b)
        assert cost(State(n_models=lo)) <= cost(State(n_models=hi))


class TestTable:
    def test_exact_lookup(self):
        t = TableCost({State(n_models=1): 1.0, State(n_models=2): 3.0})
        assert t(State(n_models=2)) == 3.0

    def test_missing_raises_without_interpolation(self):
        t = TableCost({State(n_models=1): 1.0})
        with pytest.raises(CostModelError):
            t(State(n_models=2))

    def test_interpolation_midpoint(self):
        t = TableCost(
            {State(n_models=1): 1.0, State(n_models=3): 3.0}, interpolate=True
        )
        assert t(State(n_models=2)) == pytest.approx(2.0)

    def test_interpolation_clamps_at_ends(self):
        t = TableCost(
            {State(n_models=2): 2.0, State(n_models=4): 4.0}, interpolate=True
        )
        assert t(State(n_models=1)) == 2.0
        assert t(State(n_models=9)) == 4.0

    def test_empty_table_rejected(self):
        with pytest.raises(CostModelError):
            TableCost({})


class TestCallableAndCoercion:
    def test_callable_validates_output(self):
        bad = CallableCost(lambda s: -1.0, label="bad")
        with pytest.raises(CostModelError):
            bad(State(n_models=1))
        nan = CallableCost(lambda s: float("nan"))
        with pytest.raises(CostModelError):
            nan(State(n_models=1))

    def test_as_cost_number(self):
        c = as_cost(2.5)
        assert isinstance(c, ConstantCost) and c(State(x=1)) == 2.5

    def test_as_cost_passthrough(self):
        c = ConstantCost(1.0)
        assert as_cost(c) is c

    def test_as_cost_rejects_garbage(self):
        with pytest.raises(CostModelError):
            as_cost("fast")  # type: ignore[arg-type]
        with pytest.raises(CostModelError):
            as_cost(True)  # type: ignore[arg-type]
