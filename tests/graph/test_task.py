"""Unit and property tests for tasks and data-parallel variants."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import GraphError
from repro.graph.task import DataParallelSpec, Task, Variant
from repro.state import State


class TestTaskValidation:
    def test_basic_construction(self):
        t = Task("T4", cost=1.0, inputs=["a"], outputs=["b"])
        assert not t.is_source and not t.is_sink

    def test_source_and_sink_flags(self):
        assert Task("src", cost=0.1, outputs=["c"]).is_source
        assert Task("snk", cost=0.1, inputs=["c"]).is_sink

    def test_empty_name_rejected(self):
        with pytest.raises(GraphError):
            Task("", cost=1.0)

    def test_channel_in_both_directions_rejected(self):
        with pytest.raises(GraphError):
            Task("t", cost=1.0, inputs=["c"], outputs=["c"])

    def test_duplicate_channels_rejected(self):
        with pytest.raises(GraphError):
            Task("t", cost=1.0, inputs=["a", "a"])

    def test_nonpositive_period_rejected(self):
        with pytest.raises(GraphError):
            Task("t", cost=1.0, period=0.0)


class TestVariant:
    def test_area(self):
        assert Variant("t", 4, 2.0).area == 8.0

    def test_invalid_workers(self):
        with pytest.raises(GraphError):
            Variant("t", 0, 1.0)

    def test_invalid_duration(self):
        with pytest.raises(GraphError):
            Variant("t", 1, float("inf"))


class TestVariants:
    def test_serial_only_without_spec(self, m8):
        t = Task("t", cost=2.0)
        vs = t.variants(m8)
        assert len(vs) == 1 and vs[0].label == "serial" and vs[0].duration == 2.0

    def test_perfect_division_default(self, m8):
        spec = DataParallelSpec(worker_counts=[2, 4])
        t = Task("t", cost=8.0, data_parallel=spec)
        by_label = {v.label: v for v in t.variants(m8)}
        assert by_label["dp2"].duration == pytest.approx(4.0)
        assert by_label["dp4"].duration == pytest.approx(2.0)

    def test_max_workers_filters(self, m8):
        spec = DataParallelSpec(worker_counts=[2, 4, 8])
        t = Task("t", cost=8.0, data_parallel=spec)
        labels = {v.label for v in t.variants(m8, max_workers=4)}
        assert labels == {"serial", "dp2", "dp4"}

    def test_overheads_make_wide_variants_lose(self, m8):
        spec = DataParallelSpec(
            worker_counts=[2, 8], per_chunk_overhead=0.5, split_cost=1.0, join_cost=1.0
        )
        t = Task("t", cost=2.0, data_parallel=spec)
        assert t.best_variant(m8).label == "serial"

    def test_waves_model(self, m8):
        # 8 chunks on 2 workers -> 4 waves.
        spec = DataParallelSpec(
            worker_counts=[2], chunks_for=lambda s, w: 8,
            chunk_cost=lambda s, n: 1.0,
        )
        t = Task("t", cost=8.0, data_parallel=spec)
        dp2 = [v for v in t.variants(m8) if v.label == "dp2"][0]
        assert dp2.duration == pytest.approx(4.0)
        assert dp2.chunks == 8

    def test_best_variant_ties_prefer_fewer_workers(self, m8):
        spec = DataParallelSpec(worker_counts=[2], chunk_cost=lambda s, n: 2.0)
        t = Task("t", cost=2.0, data_parallel=spec)
        # serial = 2.0; dp2 = one wave of 2.0 chunks = 2.0 -> tie -> serial.
        assert t.best_variant(m8).workers == 1

    @given(
        cost=st.floats(0.1, 100),
        workers=st.integers(1, 16),
        chunks=st.integers(1, 64),
        overhead=st.floats(0, 1),
    )
    def test_duration_at_least_ideal(self, cost, workers, chunks, overhead):
        """The wave model never beats perfect division of total work."""
        spec = DataParallelSpec(
            worker_counts=[workers],
            chunks_for=lambda s, w: chunks,
            per_chunk_overhead=overhead,
        )
        t = Task("t", cost=cost, data_parallel=spec)
        dur = spec.duration(t, State(n_models=1), workers)
        ideal = cost / min(workers, chunks)
        assert dur >= ideal - 1e-9

    @given(workers=st.integers(2, 8), chunks=st.integers(1, 40))
    def test_duration_matches_wave_formula(self, workers, chunks):
        spec = DataParallelSpec(
            worker_counts=[workers],
            chunks_for=lambda s, w: chunks,
            chunk_cost=lambda s, n: 0.5,
            split_cost=0.1,
            join_cost=0.2,
        )
        t = Task("t", cost=1.0, data_parallel=spec)
        expected = 0.1 + math.ceil(chunks / workers) * 0.5 + 0.2
        assert spec.duration(t, State(n_models=1), workers) == pytest.approx(expected)


class TestDataParallelSpecValidation:
    def test_empty_worker_counts(self):
        with pytest.raises(GraphError):
            DataParallelSpec(worker_counts=[])

    def test_nonpositive_workers(self):
        with pytest.raises(GraphError):
            DataParallelSpec(worker_counts=[0, 2])

    def test_negative_overheads(self):
        with pytest.raises(GraphError):
            DataParallelSpec(worker_counts=[2], split_cost=-1.0)
