"""Unit tests for topology builders, channels, and rendering."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph.builders import chain_graph, fork_join_graph, tracker_shape_graph
from repro.graph.channel import ChannelSpec
from repro.graph.render import to_ascii, to_dot
from repro.state import State


class TestChannelSpec:
    def test_constant_size(self):
        assert ChannelSpec("c", item_bytes=100).item_size(State(n_models=1)) == 100

    def test_callable_size(self):
        c = ChannelSpec("c", item_bytes=lambda s: 10 * s.n_models)
        assert c.item_size(State(n_models=8)) == 80

    def test_bad_size_model_raises(self):
        c = ChannelSpec("c", item_bytes=lambda s: -5)
        with pytest.raises(GraphError):
            c.item_size(State(n_models=1))

    def test_invalid_capacity(self):
        with pytest.raises(GraphError):
            ChannelSpec("c", capacity=0)

    def test_with_capacity(self):
        c = ChannelSpec("c", item_bytes=1).with_capacity(5)
        assert c.capacity == 5 and c.name == "c"

    def test_empty_name(self):
        with pytest.raises(GraphError):
            ChannelSpec("")


class TestChain:
    def test_shape(self):
        g = chain_graph([1.0, 2.0, 3.0])
        assert g.topo_order() == ["t0", "t1", "t2"]
        assert g.source_tasks() == ["t0"] and g.sink_tasks() == ["t2"]

    def test_single_task(self):
        g = chain_graph([1.0])
        assert g.source_tasks() == ["t0"] and g.sink_tasks() == ["t0"]

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            chain_graph([])

    def test_period_applied_to_source_only(self):
        g = chain_graph([1.0, 1.0], period=0.5)
        assert g.task("t0").period == 0.5 and g.task("t1").period is None


class TestForkJoin:
    def test_shape(self):
        g = fork_join_graph(0.1, [1.0, 2.0, 3.0], 0.2)
        assert set(g.successors("source")) == {"branch0", "branch1", "branch2"}
        assert set(g.predecessors("sink")) == {"branch0", "branch1", "branch2"}

    def test_no_branches_rejected(self):
        with pytest.raises(GraphError):
            fork_join_graph(0.1, [], 0.2)


class TestTrackerShape:
    def test_figure2_topology(self, tracker_graph):
        g = tracker_graph
        assert g.topo_order() == ["T1", "T2", "T3", "T4", "T5"]
        assert set(g.successors("T1")) == {"T2", "T3", "T4"}
        assert g.successors("T4") == ["T5"]
        assert g.channel("color_model").static

    def test_missing_cost_rejected(self):
        with pytest.raises(GraphError):
            tracker_shape_graph({"T1": 1.0, "T2": 1.0})


class TestRender:
    def test_dot_contains_all_names(self, tracker_graph):
        dot = to_dot(tracker_graph)
        for name in (*tracker_graph.task_names, *tracker_graph.channel_names):
            assert name in dot
        assert dot.startswith("digraph")

    def test_ascii_topo_listing(self):
        text = to_ascii(chain_graph([1.0, 2.0]))
        assert "t0: [] -> [c0]" in text
        assert "t1: [c0] -> []" in text
