"""Unit and property tests for data-parallel expansion (Figure 9)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import DecompositionError
from repro.graph.builders import chain_graph
from repro.graph.dataparallel import (
    expand_data_parallel,
    expansion_latency,
    worker_chunk_counts,
)
from repro.graph.task import DataParallelSpec, Task
from repro.graph.channel import ChannelSpec
from repro.graph.taskgraph import TaskGraph
from repro.state import State


def dp_graph(cost=8.0, worker_counts=(2, 4), **spec_kw) -> TaskGraph:
    g = TaskGraph("dp")
    g.add_channel(ChannelSpec("in"))
    g.add_channel(ChannelSpec("out"))
    g.add_task(Task("src", cost=0.1, outputs=["in"]))
    g.add_task(
        Task(
            "work",
            cost=cost,
            inputs=["in"],
            outputs=["out"],
            data_parallel=DataParallelSpec(worker_counts=list(worker_counts), **spec_kw),
        )
    )
    g.add_task(Task("snk", cost=0.1, inputs=["out"]))
    g.validate()
    return g


class TestWorkerChunkCounts:
    def test_even(self):
        assert worker_chunk_counts(32, 4) == [8, 8, 8, 8]

    def test_uneven(self):
        assert worker_chunk_counts(5, 3) == [2, 2, 1]

    def test_fewer_chunks_than_workers(self):
        assert worker_chunk_counts(2, 4) == [1, 1, 0, 0]

    def test_invalid(self):
        with pytest.raises(DecompositionError):
            worker_chunk_counts(0, 2)

    @given(chunks=st.integers(1, 200), workers=st.integers(1, 32))
    def test_partition_properties(self, chunks, workers):
        counts = worker_chunk_counts(chunks, workers)
        assert sum(counts) == chunks
        assert len(counts) == workers
        assert max(counts) - min(counts) <= 1
        assert counts == sorted(counts, reverse=True)


class TestExpansion:
    def test_structure(self, m1):
        g = dp_graph()
        e = expand_data_parallel(g, "work", 4)
        names = set(e.task_names)
        assert "work" not in names
        assert {"work.split", "work.join"} <= names
        assert {f"work.w{i}" for i in range(4)} <= names
        # Boundary contract: splitter consumes the original inputs, joiner
        # produces the original outputs.
        assert e.task("work.split").inputs == ("in",)
        assert e.task("work.join").outputs == ("out",)
        e.validate()

    def test_unexpandable_task(self):
        g = chain_graph([1.0, 1.0])
        with pytest.raises(DecompositionError):
            expand_data_parallel(g, "t0", 2)

    def test_disallowed_worker_count(self):
        g = dp_graph(worker_counts=(2,))
        with pytest.raises(DecompositionError):
            expand_data_parallel(g, "work", 3)

    def test_worker_costs_divide_work(self, m1):
        g = dp_graph(cost=8.0)
        e = expand_data_parallel(g, "work", 4)
        for i in range(4):
            assert e.task(f"work.w{i}").cost(m1) == pytest.approx(2.0)

    def test_uneven_chunks_give_uneven_workers(self, m1):
        g = dp_graph(cost=6.0)
        e = expand_data_parallel(g, "work", 4, n_chunks=6)
        costs = [e.task(f"work.w{i}").cost(m1) for i in range(4)]
        # 6 chunks of 1.0 each over 4 workers: [2, 2, 1, 1].
        assert costs == pytest.approx([2.0, 2.0, 1.0, 1.0])

    def test_original_graph_untouched(self):
        g = dp_graph()
        expand_data_parallel(g, "work", 2)
        assert "work" in g and "work.split" not in g.task_names

    @given(workers=st.sampled_from([2, 4]), chunks=st.integers(1, 24))
    def test_expansion_latency_matches_variant_when_waves_exact(self, workers, chunks):
        """Critical path through the expansion == the Variant wave model
        whenever chunks divide evenly into waves; otherwise the variant
        model is a conservative upper bound (whole-wave rounding)."""
        state = State(n_models=1)
        spec_kw = dict(split_cost=0.25, join_cost=0.5, per_chunk_overhead=0.1)
        g = dp_graph(cost=7.0, worker_counts=(workers,), **spec_kw)
        task = g.task("work")
        spec = task.data_parallel
        assert spec is not None
        spec.chunks_for = lambda s, w: chunks
        exact = expansion_latency(g, "work", workers, state)
        variant = spec.duration(task, state, workers)
        if chunks % workers == 0:
            assert variant == pytest.approx(exact)
        else:
            assert variant >= exact - 1e-9
