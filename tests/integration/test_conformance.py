"""Cross-substrate conformance: sim, threaded and process runtimes agree.

The same tracker graph and the same schedule run on all three substrates
behind ``StaticExecutor(runtime=...)``; the STM item streams they produce
must be indistinguishable — identical per-channel put/consume/collect
counts, identical completed-frame sets, and (between the live
substrates) identical output values.  The process runtime runs twice,
with broker round-trip coalescing on and off — coalescing is a transport
optimization and must be invisible in the item streams.  Two schedules
are covered: a fully serial placement and a data-parallel one (T4 as
``dp2``), so the chunked execution path is held to the same contract.

The same contract is then applied to every :mod:`repro.workloads`
family (matmul, fusion, webinfer): serial and dp schedules, sim ==
threaded == process item streams, bitwise-identical live outputs.
"""

from __future__ import annotations

import os

import pytest

from repro.apps.tracker.graph import attach_kernels, build_tracker_graph
from repro.apps.video import VideoSource
from repro.core.schedule import IterationSchedule, PipelinedSchedule, Placement
from repro.runtime.static_exec import StaticExecutor
from repro.sim.cluster import SINGLE_NODE_SMP
from repro.state import State
from repro.workloads import get_family

pytestmark = pytest.mark.slow

N_FRAMES = 4
N_MODELS = 2
SUBSTRATES = ("sim", "threaded", "process", "process_uncoalesced")
LIVE = ("threaded", "process", "process_uncoalesced")


def _fresh_setup():
    """A new graph + video per run: T1/T2 kernels are stateful."""
    video = VideoSource(n_targets=N_MODELS, height=48, width=64, seed=23)
    graph = build_tracker_graph(frame_shape=(48, 64))
    live, statics = attach_kernels(graph, video)
    return live, statics


def serial_schedule(graph, state) -> PipelinedSchedule:
    """Every task sequentially on processor 0, starts at cost-model ends."""
    placements, t = [], 0.0
    for name in ("T1", "T2", "T3", "T4", "T5"):
        d = graph.task(name).cost(state)
        placements.append(Placement(name, (0,), t, d))
        t += d
    return PipelinedSchedule(
        IterationSchedule(placements), period=t, shift=0, n_procs=1
    )


def dp_schedule(graph, state) -> PipelinedSchedule:
    """T2/T3 in parallel, T4 as a two-worker data-parallel placement."""
    c = {name: graph.task(name).cost(state) for name in
         ("T1", "T2", "T3", "T4", "T5")}
    t4_start = c["T1"] + max(c["T2"], c["T3"])
    t4_dur = c["T4"] / 2 + 0.05  # two workers + split/join slack
    it = IterationSchedule([
        Placement("T1", (0,), 0.0, c["T1"]),
        Placement("T2", (1,), c["T1"], c["T2"]),
        Placement("T3", (2,), c["T1"], c["T3"]),
        Placement("T4", (2, 3), t4_start, t4_dur, variant="dp2"),
        Placement("T5", (0,), t4_start + t4_dur, c["T5"]),
    ])
    return PipelinedSchedule(
        it, period=t4_start + t4_dur + c["T5"], shift=0, n_procs=4
    )


def run_on(substrate: str, make_schedule) -> object:
    live, statics = _fresh_setup()
    state = State(n_models=N_MODELS)
    sched = make_schedule(live, state)
    runtime = substrate
    env_coalesce = None
    if substrate == "process_uncoalesced":
        runtime = "process"
        env_coalesce = os.environ.get("REPRO_COALESCE")
        os.environ["REPRO_COALESCE"] = "0"
    try:
        ex = StaticExecutor(
            live, state, SINGLE_NODE_SMP(4), sched,
            runtime=runtime, static_inputs=statics,
        )
        return ex.run(N_FRAMES)
    finally:
        if substrate == "process_uncoalesced":
            if env_coalesce is None:
                del os.environ["REPRO_COALESCE"]
            else:
                os.environ["REPRO_COALESCE"] = env_coalesce


@pytest.fixture(scope="module", params=["serial", "dp"])
def runs(request):
    make = serial_schedule if request.param == "serial" else dp_schedule
    return request.param, {sub: run_on(sub, make) for sub in SUBSTRATES}


def streaming_channels(result):
    g = result.graph
    return [
        spec.name for spec in g.channels
        if not spec.static and g.producers(spec.name)
    ]


def item_counts(result) -> dict[str, dict[str, int]]:
    """Per-streaming-channel put/consume counts, any substrate.

    The sim trace records put/get/consume item events but not GC sweeps,
    so "collected" is compared separately (live substrates against each
    other, and totals via ``gc_collected`` across all three).
    """
    chans = streaming_channels(result)
    if result.meta.get("substrate") in ("threaded", "process"):
        stats = result.meta["channel_stats"]
        return {
            ch: {k: stats[ch][k] for k in ("puts", "consumed")} for ch in chans
        }
    counts = {ch: {"puts": 0, "consumed": 0} for ch in chans}
    keymap = {"put": "puts", "consume": "consumed"}
    for ev in result.trace.items:
        if ev.channel in counts and ev.kind in keymap:
            counts[ev.channel][keymap[ev.kind]] += 1
    return counts


class TestItemStreams:
    def test_per_channel_counts_identical(self, runs):
        _, results = runs
        reference = item_counts(results["sim"])
        for sub in LIVE:
            assert item_counts(results[sub]) == reference, sub

    def test_live_channel_stats_identical(self, runs):
        """All live runs see the same full counter set — including the
        process runtime in both coalescing modes, so batching ops into
        step messages provably changes no put/get/consume/collect."""
        _, results = runs
        t_stats = results["threaded"].meta["channel_stats"]
        for sub in ("process", "process_uncoalesced"):
            p_stats = results[sub].meta["channel_stats"]
            for ch in streaming_channels(results["threaded"]):
                assert t_stats[ch] == p_stats[ch], (sub, ch)

    def test_every_frame_completes_everywhere(self, runs):
        _, results = runs
        for sub, res in results.items():
            assert res.completed == list(range(N_FRAMES)), sub
            assert set(res.digitize_times) == set(range(N_FRAMES)), sub

    def test_live_substrates_agree_on_values(self, runs):
        _, results = runs
        t_locs = results["threaded"].meta["outputs"]["model_locations"]
        for sub in ("process", "process_uncoalesced"):
            p_locs = results[sub].meta["outputs"]["model_locations"]
            for ts in range(N_FRAMES):
                assert t_locs[ts] == p_locs[ts], (sub, ts)

    def test_coalescing_modes_actually_differ(self, runs):
        """The two process runs took different transports (or the
        comparison above proved nothing): coalescing on uses step
        messages and strictly fewer round trips."""
        _, results = runs
        on = results["process"].meta
        off = results["process_uncoalesced"].meta
        assert on["coalesce"] is True
        assert off["coalesce"] is False
        assert "step" in on["broker_ops"]
        assert "step" not in off["broker_ops"]
        assert on["broker_roundtrips"] < off["broker_roundtrips"]

    def test_gc_reclaims_equally(self, runs):
        _, results = runs
        collected = {sub: res.gc_collected for sub, res in results.items()}
        assert len(set(collected.values())) == 1, collected


class TestLatencyInvariants:
    def test_sim_replays_with_zero_slips(self, runs):
        _, results = runs
        assert results["sim"].meta["slips"] == 0

    def test_live_latencies_positive_and_ordered(self, runs):
        _, results = runs
        for sub in LIVE:
            res = results[sub]
            for ts in res.completed:
                assert res.completion_times[ts] >= res.digitize_times[ts], (sub, ts)
                assert res.latency(ts) >= 0.0, (sub, ts)

    def test_dp_plan_reaches_process_runtime(self, runs):
        which, results = runs
        if which != "dp":
            pytest.skip("serial schedule has no dp placement")
        assert results["process"].meta["dp_plan"]["T4"] == (2, "dp2")


# ---------------------------------------------------------------------------
# The same contract for every workload family (repro.workloads)
# ---------------------------------------------------------------------------

WORKLOAD_FAMILIES = ("matmul", "fusion", "webinfer")
WL_FRAMES = 3
WL_SUBSTRATES = ("sim", "threaded", "process")


def _wl_serial_schedule(graph, state, cluster) -> PipelinedSchedule:
    """Every task sequentially on processor 0 (node 0), topo order."""
    speed = cluster.node_speeds[0]
    placements, t = [], 0.0
    for name in graph.topo_order():
        d = graph.task(name).cost(state) / speed
        placements.append(Placement(name, (0,), t, d))
        t += d
    period = max(t, _wl_source_period(graph) or 0.0)
    return PipelinedSchedule(
        IterationSchedule(placements), period=period, shift=0, n_procs=1
    )


def _wl_dp_schedule(graph, state, cluster, dp_task) -> PipelinedSchedule:
    """Serial chain except the family's dp task runs as ``dp2`` on (0, 1)."""
    speed = cluster.node_speeds[0]
    placements, t = [], 0.0
    for name in graph.topo_order():
        task = graph.task(name)
        if name == dp_task:
            d = task.data_parallel.duration(task, state, 2) / speed
            placements.append(Placement(name, (0, 1), t, d, variant="dp2"))
        else:
            d = task.cost(state) / speed
            placements.append(Placement(name, (0,), t, d))
        t += d
    period = max(t, _wl_source_period(graph) or 0.0)
    return PipelinedSchedule(
        IterationSchedule(placements), period=period, shift=0, n_procs=2
    )


def _wl_source_period(graph):
    for name in graph.source_tasks():
        if graph.task(name).period is not None:
            return graph.task(name).period
    return None


def wl_run_on(family_name: str, substrate: str, kind: str):
    """One fresh end-to-end run: new live graph + kernels per substrate."""
    fam = get_family(family_name)
    inst = fam.generate(0)
    cluster = fam.cluster(inst)
    state = list(fam.state_space(inst))[-1]  # densest regime: dp chunks > 1
    graph = fam.build_graph(inst)
    live, statics = fam.attach_kernels(graph, inst)
    if kind == "serial":
        sched = _wl_serial_schedule(live, state, cluster)
    else:
        sched = _wl_dp_schedule(live, state, cluster, fam.dp_task)
    ex = StaticExecutor(
        live, state, cluster, sched, runtime=substrate, static_inputs=statics
    )
    return ex.run(WL_FRAMES)


@pytest.fixture(
    scope="module",
    params=[(f, k) for f in WORKLOAD_FAMILIES for k in ("serial", "dp")],
    ids=[f"{f}-{k}" for f in WORKLOAD_FAMILIES for k in ("serial", "dp")],
)
def wl_runs(request):
    family, kind = request.param
    return family, kind, {
        sub: wl_run_on(family, sub, kind) for sub in WL_SUBSTRATES
    }


class TestWorkloadConformance:
    """sim == threaded == process for matmul, fusion and webinfer."""

    def test_item_streams_identical(self, wl_runs):
        _, _, results = wl_runs
        reference = item_counts(results["sim"])
        for sub in ("threaded", "process"):
            assert item_counts(results[sub]) == reference, sub

    def test_every_frame_completes_everywhere(self, wl_runs):
        _, _, results = wl_runs
        for sub, res in results.items():
            assert res.completed == list(range(WL_FRAMES)), sub

    def test_live_outputs_bitwise_identical(self, wl_runs):
        """threaded and process produce equal values on every terminal
        channel at every timestamp — the integer-exact kernel contract."""
        _, _, results = wl_runs
        t_out = results["threaded"].meta["outputs"]
        p_out = results["process"].meta["outputs"]
        assert set(t_out) == set(p_out)
        assert t_out, "no terminal channels collected"
        for ch in t_out:
            for ts in range(WL_FRAMES):
                assert t_out[ch][ts] == p_out[ch][ts], (ch, ts)

    def test_live_stats_identical(self, wl_runs):
        _, _, results = wl_runs
        t_stats = results["threaded"].meta["channel_stats"]
        p_stats = results["process"].meta["channel_stats"]
        for ch in streaming_channels(results["threaded"]):
            assert t_stats[ch] == p_stats[ch], ch

    def test_dp_plan_reaches_process_runtime(self, wl_runs):
        family, kind, results = wl_runs
        if kind != "dp":
            pytest.skip("serial schedule has no dp placement")
        dp_task = get_family(family).dp_task
        assert results["process"].meta["dp_plan"][dp_task] == (2, "dp2")

    def test_gc_reclaims_equally(self, wl_runs):
        _, _, results = wl_runs
        collected = {sub: res.gc_collected for sub, res in results.items()}
        assert len(set(collected.values())) == 1, collected
