"""Full-stack integration tests: every layer working together.

These chain the workflows a real user of the library would run:
calibrate -> build -> solve -> serialize -> reload -> execute -> measure,
plus cross-executor consistency checks and a 16-processor cluster run.
"""

from __future__ import annotations

import pytest

from repro.core.optimal import OptimalScheduler
from repro.core.serialize import table_from_json, table_to_json
from repro.core.table import ScheduleTable
from repro.metrics.latency import latency_stats
from repro.runtime.dynamic import DynamicExecutor
from repro.runtime.static_exec import StaticExecutor
from repro.sched.handtuned import with_source_period
from repro.sched.online import PthreadScheduler
from repro.sim.cluster import STAMPEDE_CLUSTER, SINGLE_NODE_SMP, ClusterSpec
from repro.sim.network import CommModel
from repro.state import State, StateSpace


class TestCalibrateToExecute:
    def test_calibrated_graph_schedules_and_runs(self):
        """Measure real kernels -> fit costs -> solve -> execute (sim)."""
        from repro.apps.tracker.calibrate import calibrate_kernels
        from repro.apps.tracker.graph import build_tracker_graph

        calib = calibrate_kernels(frame_shape=(32, 48), model_counts=(1, 4), repeats=1)
        graph = build_tracker_graph(costs=calib.as_costs())
        cluster = SINGLE_NODE_SMP(4)
        state = State(n_models=4)
        sol = OptimalScheduler(cluster).solve(graph, state)
        result = StaticExecutor(graph, state, cluster, sol).run(5)
        assert result.meta["slips"] == 0
        assert result.completed_count == 5


class TestSerializeReloadExecute:
    def test_offline_table_survives_round_trip_and_runs(self):
        from repro.apps.tracker.graph import build_tracker_graph

        graph = build_tracker_graph()
        cluster = SINGLE_NODE_SMP(4)
        table = ScheduleTable.build(
            graph, StateSpace.range("n_models", 1, 2), OptimalScheduler(cluster)
        )
        reloaded = table_from_json(table_to_json(table))
        for m in (1, 2):
            state = State(n_models=m)
            result = StaticExecutor(
                graph, state, cluster, reloaded.lookup(state)
            ).run(4)
            assert result.meta["slips"] == 0


class TestCrossExecutorConsistency:
    def test_dynamic_matches_static_when_uncontended(self, tracker_graph, m8):
        """With a slow digitizer and plenty of processors the dynamic
        executor's per-frame latency approaches the schedule-free lower
        bound: the serial critical path through T2/T3/T4/T5.

        (The dynamic baseline runs T4 serially — data parallelism is a
        schedule-level decision — so the bound uses serial costs.)"""
        cluster = SINGLE_NODE_SMP(8)
        tuned = with_source_period(tracker_graph, 10.0)
        result = DynamicExecutor(
            tuned, m8, cluster, PthreadScheduler(quantum=0.01)
        ).run(horizon=60.0)
        stats = latency_stats(result)
        serial_path = (
            tracker_graph.task("T2").cost(m8)
            + tracker_graph.task("T4").cost(m8)
            + tracker_graph.task("T5").cost(m8)
        )
        assert stats.mean == pytest.approx(serial_path, rel=0.05)

    def test_static_beats_dynamic_at_same_rate(self, tracker_graph, m8, smp4):
        """At the optimal schedule's own rate, the static execution has
        strictly lower latency than the dynamic baseline — Figure 3's
        core comparison at one operating point."""
        sol = OptimalScheduler(smp4).solve(tracker_graph, m8)
        static_result = StaticExecutor(tracker_graph, m8, smp4, sol).run(10)
        tuned = with_source_period(tracker_graph, sol.period)
        dynamic_result = DynamicExecutor(
            tuned, m8, smp4, PthreadScheduler(quantum=0.01)
        ).run(horizon=sol.period * 14)
        static_lat = latency_stats(static_result).mean
        dynamic_lat = latency_stats(dynamic_result).mean
        assert static_lat < dynamic_lat


class TestFullClusterRun:
    def test_tracker_on_stampede_cluster(self, tracker_graph, m8):
        """The paper's full platform: 4 nodes x 4 processors with realistic
        communication costs."""
        cluster = STAMPEDE_CLUSTER()
        comm = CommModel(cluster)
        sol = OptimalScheduler(cluster, comm=comm).solve(tracker_graph, m8)
        sol.iteration.validate(tracker_graph, m8, cluster, comm)
        result = StaticExecutor(tracker_graph, m8, cluster, sol, comm=comm).run(8)
        assert result.meta["slips"] == 0
        assert result.completed_count == 8

    def test_expensive_network_localizes_iteration(self, tracker_graph, m8):
        """§3.3: when inter-node transfers are slow relative to the tasks,
        the minimal-latency iteration retreats into a single node."""
        from repro.sim.network import CommCost

        cluster = ClusterSpec(nodes=2, procs_per_node=4)
        comm = CommModel(
            cluster,
            intra_node=CommCost(latency=0.0, bandwidth=float("inf")),
            inter_node=CommCost(latency=0.5, bandwidth=float("inf")),
        )
        sol = OptimalScheduler(cluster, comm=comm).solve(tracker_graph, m8)
        nodes = {cluster.node_of(p) for pl in sol.iteration for p in pl.procs}
        assert len(nodes) == 1

    def test_16_proc_throughput_scales(self, tracker_graph, m8):
        """More processors cannot make the pipelined rate worse."""
        sol4 = OptimalScheduler(SINGLE_NODE_SMP(4)).solve(tracker_graph, m8)
        sol16 = OptimalScheduler(ClusterSpec(1, 16)).solve(tracker_graph, m8)
        assert sol16.period <= sol4.period + 1e-9
        assert sol16.latency <= sol4.latency + 1e-9


class TestSTMInvariantsDuringExecution:
    def test_no_item_leaks_after_drain(self, tracker_graph, m8, smp4):
        """Every streaming item put during a full run is eventually
        collected (no space leak — the paper's 'reduced space
        requirement' benefit)."""
        sol = OptimalScheduler(smp4).solve(tracker_graph, m8)
        result = StaticExecutor(tracker_graph, m8, smp4, sol).run(6)
        puts = sum(1 for e in result.trace.items if e.kind == "put")
        assert result.gc_collected == puts

    def test_live_footprint_bounded_by_schedule(self, tracker_graph, m8, smp4):
        """'A fixed schedule determines the number of items in each
        channel': the high-water mark stays small and independent of run
        length."""
        sol = OptimalScheduler(smp4).solve(tracker_graph, m8)
        short = StaticExecutor(tracker_graph, m8, smp4, sol).run(4)
        long = StaticExecutor(tracker_graph, m8, smp4, sol).run(20)
        assert long.live_item_high_water <= short.live_item_high_water + 2
