"""Benchmark: regenerate Figure 4 (pthread schedule vs naive pipeline)."""

from __future__ import annotations

from repro.core.pipeline import naive_pipeline
from repro.experiments.figure4 import run_figure4
from repro.runtime.dynamic import DynamicExecutor
from repro.runtime.static_exec import StaticExecutor
from repro.sched.handtuned import with_source_period
from repro.sched.online import PthreadScheduler


def test_figure4_full_regeneration(benchmark):
    result = benchmark.pedantic(
        lambda: run_figure4(horizon=60.0, iterations=10), rounds=1, iterations=1
    )
    print()
    print(result.render(gantt_window=12.0))
    assert result.pipeline_beats_pthread()


def test_pthread_execution(benchmark, tracker_graph, smp4, m8):
    """Simulation cost of the dynamic baseline (60 simulated seconds)."""
    tuned = with_source_period(tracker_graph, 0.5)

    def run():
        return DynamicExecutor(
            tuned, m8, smp4, PthreadScheduler(quantum=0.01)
        ).run(horizon=60.0)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.completed_count > 0


def test_pipeline_execution(benchmark, tracker_graph, smp4, m8):
    """Simulation cost of the static pipeline (10 iterations)."""
    schedule = naive_pipeline(tracker_graph, m8, smp4)

    def run():
        return StaticExecutor(tracker_graph, m8, smp4, schedule).run(10)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.meta["slips"] == 0
