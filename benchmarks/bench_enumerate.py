"""Benchmark: the off-line phase accelerations, measured end to end.

Times cold vs. warm-started vs. cached table builds (tracker graph x
8-state space on a 2x4 cluster, plus the faults ShapeTable sweep), prints
explored-node counts, and emits a ``BENCH_enumerate.json`` summary next
to this file.

Timings are taken with ``time.perf_counter`` directly (not the
pytest-benchmark fixture), so the module runs — and keeps its assertions
— under a plain ``pytest`` invocation.  Set ``REPRO_BENCH_QUICK=1`` for
the CI smoke configuration (smaller state space, same assertions).

What is *asserted* vs. merely *recorded*:

* asserted — warm-start + dominance explores >= 3x fewer nodes on the
  tracker m=8 enumeration (communication-model configuration; the
  free-communication numbers are recorded too, where the optimum is
  massively degenerate — |S| = 56 on the 2x4 cluster — and every member
  of S must be visited no matter how sharp the pruning);
* asserted — tables serialize bitwise-identically across ``workers=1``
  and ``workers=2``, and across cache-cold and cache-warm builds;
* asserted — the second cached build hits on every state;
* recorded — wall-clock speedups.  Process-pool speedup in particular is
  reported honestly for whatever machine runs this: on a single-CPU
  container it will be <= 1 (pure overhead), and that number still
  belongs in the JSON.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from _schema import write_bench
from repro.core.cache import ScheduleCache
from repro.core.enumerate import enumerate_schedules
from repro.core.optimal import OptimalScheduler
from repro.core.serialize import table_to_json
from repro.core.table import ScheduleTable
from repro.faults.failover import ShapeTable
from repro.sim.cluster import ClusterSpec
from repro.sim.network import CommCost, CommModel
from repro.state import State, StateSpace

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
RESULTS: dict = {"quick": QUICK}


def _cluster() -> ClusterSpec:
    return ClusterSpec(nodes=2, procs_per_node=4)


def _comm(cluster: ClusterSpec) -> CommModel:
    """A realistic two-tier network: cheap intra-node, costly inter-node."""
    return CommModel(
        cluster,
        intra_node=CommCost(latency=0.0005, bandwidth=1e9),
        inter_node=CommCost(latency=0.002, bandwidth=1e8),
    )


def _space() -> StateSpace:
    return StateSpace.range("n_models", 1, 3 if QUICK else 8)


@pytest.fixture(scope="module", autouse=True)
def _emit_summary():
    yield
    out = write_bench(
        "enumerate", RESULTS, Path(__file__).with_name("BENCH_enumerate.json")
    )
    print(f"\nsummary written to {out}")


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0


def test_explored_reduction_tracker_m8(tracker_graph):
    """Warm start + dominance vs. the cold search, same L and same S."""
    cluster = _cluster()
    comm = _comm(cluster)
    state = State(n_models=8)
    rows = {}
    for label, cm in [("comm", comm), ("free_comm", None)]:
        cold = enumerate_schedules(
            tracker_graph, state, cluster, comm=cm,
            warm_start=False, dominance=False, max_solutions=4096,
        )
        warm = enumerate_schedules(
            tracker_graph, state, cluster, comm=cm,
            warm_start=True, dominance=False, max_solutions=4096,
        )
        fast = enumerate_schedules(
            tracker_graph, state, cluster, comm=cm, max_solutions=4096,
        )
        assert cold.latency == warm.latency == fast.latency
        keys = lambda r: {s.canonical_key() for s in r.schedules}
        assert keys(cold) == keys(warm) == keys(fast)
        rows[label] = {
            "latency": fast.latency,
            "optimal_count": fast.optimal_count,
            "explored_cold": cold.explored,
            "explored_warm": warm.explored,
            "explored_warm_dominance": fast.explored,
            "ratio": cold.explored / fast.explored,
            "pruned_bound": fast.pruned_bound,
            "pruned_dominance": fast.pruned_dominance,
            "elapsed_cold_s": cold.elapsed_s,
            "elapsed_fast_s": fast.elapsed_s,
        }
        print(
            f"\n  tracker m=8 2x4 [{label}]: cold={cold.explored} "
            f"warm={warm.explored} warm+dom={fast.explored} "
            f"({cold.explored / fast.explored:.2f}x fewer), "
            f"L={fast.latency:.4f} |S|={fast.optimal_count}"
        )
    RESULTS["explored_reduction"] = rows
    assert rows["comm"]["ratio"] >= 3.0


def test_table_build_sequential_vs_parallel(tracker_graph):
    """Bitwise-identical tables for every worker count; honest speedup."""
    cluster = _cluster()
    space = _space()
    scheduler = OptimalScheduler(cluster, comm=_comm(cluster))
    seq, t_seq = _timed(ScheduleTable.build, tracker_graph, space, scheduler)
    par, t_par = _timed(
        ScheduleTable.build, tracker_graph, space, scheduler, parallel=2
    )
    j_seq, j_par = table_to_json(seq), table_to_json(par)
    assert j_seq == j_par, "parallel build must serialize bitwise-identically"
    speedup = t_seq / t_par if t_par > 0 else float("inf")
    RESULTS["table_build"] = {
        "states": len(space),
        "sequential_s": t_seq,
        "parallel2_s": t_par,
        "speedup": speedup,
        "cpus": os.cpu_count(),
        "bitwise_identical": True,
    }
    print(
        f"\n  table build ({len(space)} states): seq={t_seq * 1e3:.1f}ms "
        f"parallel=2 {t_par * 1e3:.1f}ms -> {speedup:.2f}x "
        f"on {os.cpu_count()} CPU(s)"
    )


def test_table_build_cached_roundtrip(tracker_graph, tmp_path):
    """Second build over an unchanged space must hit on every state."""
    cluster = _cluster()
    space = _space()
    scheduler = OptimalScheduler(cluster, comm=_comm(cluster))
    reference = table_to_json(ScheduleTable.build(tracker_graph, space, scheduler))
    cache = ScheduleCache(tmp_path / "schedules")
    first, t_cold = _timed(
        ScheduleTable.build, tracker_graph, space, scheduler, cache=cache
    )
    assert cache.stats.misses == len(space) and cache.stats.stores == len(space)
    second, t_warm = _timed(
        ScheduleTable.build, tracker_graph, space, scheduler, cache=cache
    )
    assert cache.stats.hits == len(space), cache.stats.summary()
    assert table_to_json(first) == reference
    assert table_to_json(second) == reference, "cache round-trip must be lossless"
    RESULTS["cached_build"] = {
        "states": len(space),
        "cold_s": t_cold,
        "warm_s": t_warm,
        "speedup": t_cold / t_warm if t_warm > 0 else float("inf"),
        "stats": cache.stats.summary(),
    }
    print(
        f"\n  cached build: cold={t_cold * 1e3:.1f}ms warm={t_warm * 1e3:.1f}ms; "
        f"{cache.stats.summary()}"
    )


def test_shape_table_fault_sweep(tracker_graph, tmp_path):
    """The faults ShapeTable sweep: sequential vs. parallel vs. cached."""
    base = ClusterSpec(nodes=2, procs_per_node=2 if QUICK else 4)
    state = State(n_models=2)
    seq, t_seq = _timed(ShapeTable.build, tracker_graph, state, base)
    par, t_par = _timed(ShapeTable.build, tracker_graph, state, base, parallel=2)
    assert [s.summary() for s in seq.solutions()] == [
        s.summary() for s in par.solutions()
    ]
    cache = ScheduleCache(tmp_path / "shapes")
    ShapeTable.build(tracker_graph, state, base, cache=cache)
    cached, t_cached = _timed(
        ShapeTable.build, tracker_graph, state, base, cache=cache
    )
    assert cache.stats.hits > 0
    assert [s.summary() for s in cached.solutions()] == [
        s.summary() for s in seq.solutions()
    ]
    RESULTS["shape_table"] = {
        "shapes": len(seq),
        "sequential_s": t_seq,
        "parallel2_s": t_par,
        "cached_s": t_cached,
        "stats": cache.stats.summary(),
    }
    print(
        f"\n  shape sweep ({len(seq)} shapes): seq={t_seq * 1e3:.1f}ms "
        f"parallel=2 {t_par * 1e3:.1f}ms cached={t_cached * 1e3:.1f}ms"
    )
