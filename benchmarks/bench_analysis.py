"""Benchmark: the static verifier must be cheap next to what it verifies.

The ``verify=`` gates (ScheduleTable.build, ShapeTable.build, executor
startup) are only free to leave on when the analysis passes cost a small
fraction of the branch-and-bound work they certify.  This module times the
full gate — graph lint + schedule certificates + coverage + STM protocol —
against the table builds for the calibrated tracker, asserts the verifier
stays under 5% of the failover ShapeTable build (and under an absolute
per-state budget for the warm-started ScheduleTable build, whose prior
optimizations make a ratio there meaningless), and emits
``BENCH_analysis.json``.

Timings use ``time.perf_counter`` directly so the module runs under plain
``pytest``; set ``REPRO_BENCH_QUICK=1`` for the CI smoke configuration
(smaller cluster and state space, same assertions).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from _schema import write_bench
from repro.analysis import verify_schedule_table, verify_shape_table
from repro.core.optimal import OptimalScheduler
from repro.core.table import ScheduleTable
from repro.faults.failover import ShapeTable
from repro.sim.cluster import ClusterSpec
from repro.sim.network import CommCost, CommModel
from repro.state import State, StateSpace

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
RESULTS: dict = {"quick": QUICK}

#: The gate must cost at most this fraction of the build it certifies.
MAX_VERIFY_FRACTION = 0.05

#: Absolute ceiling on one state's schedule certificate (seconds).  The
#: warm-started, dominance-pruned ScheduleTable build is so fast that a
#: ratio there would punish the *build* optimizations, so the per-state
#: certificate is bounded absolutely instead (the ratio is still recorded).
MAX_CERTIFICATE_S = 0.05


@pytest.fixture(scope="module", autouse=True)
def _emit_summary():
    yield
    out = write_bench(
        "analysis", RESULTS, Path(__file__).with_name("BENCH_analysis.json")
    )
    print(f"\nsummary written to {out}")


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0


def test_schedule_table_verify_overhead(tracker_graph):
    """Per-state certificates for the tracker table, vs. building it.

    Uses the two-node cluster with a two-tier network — the configuration
    whose branch-and-bound is genuinely expensive — so the ratio compares
    the verifier against a build that earns its keep.
    """
    cluster = ClusterSpec(nodes=2, procs_per_node=4)
    comm = CommModel(
        cluster,
        intra_node=CommCost(latency=0.0005, bandwidth=1e9),
        inter_node=CommCost(latency=0.002, bandwidth=1e8),
    )
    space = StateSpace.range("n_models", 1, 3 if QUICK else 8)
    scheduler = OptimalScheduler(cluster, comm=comm)

    table, build_s = _timed(
        ScheduleTable.build, tracker_graph, space, scheduler
    )
    report, verify_s = _timed(
        verify_schedule_table, table, tracker_graph, space, cluster, comm=comm
    )
    assert not report.findings, report.summary()

    fraction = verify_s / build_s
    per_state = verify_s / len(table)
    RESULTS["schedule_table"] = {
        "states": len(table),
        "build_s": build_s,
        "verify_s": verify_s,
        "verify_fraction": fraction,
        "verify_per_state_s": per_state,
    }
    print(
        f"\nschedule table: build {build_s * 1e3:.1f}ms, "
        f"verify {verify_s * 1e3:.2f}ms ({fraction:.2%}, "
        f"{per_state * 1e3:.2f}ms/state)"
    )
    assert per_state < MAX_CERTIFICATE_S


def test_shape_table_verify_overhead(tracker_graph):
    """Failover coverage + certificates for the tracker shape table."""
    # Same cluster in quick mode: the per-shape sweep is the point of the
    # comparison, and at ~0.1s it is cheap enough for the CI smoke run.
    base = ClusterSpec(nodes=2, procs_per_node=4)
    state = State(n_models=2)

    table, build_s = _timed(ShapeTable.build, tracker_graph, state, base)
    report, verify_s = _timed(verify_shape_table, table, tracker_graph, base)
    assert not report.findings, report.summary()

    fraction = verify_s / build_s
    RESULTS["shape_table"] = {
        "shapes": len(table),
        "build_s": build_s,
        "verify_s": verify_s,
        "verify_fraction": fraction,
    }
    print(
        f"\nshape table: build {build_s * 1e3:.1f}ms, "
        f"verify {verify_s * 1e3:.2f}ms ({fraction:.2%})"
    )
    assert fraction < MAX_VERIFY_FRACTION


def test_model_check_overhead(tracker_graph):
    """Pass 5 (explicit-state model check) per shipped configuration.

    The model checker joined the ``verify=`` gates, so it lives under the
    same budget: one full ``check_model`` (exploration + per-channel
    minimal-capacity certificates) for every shipped configuration must
    stay inside the shape-table fraction the other gate passes are held
    to.  POR collapses the protocol's confluent interleavings to a single
    walk, which is what keeps the explored state counts (recorded below)
    in the tens rather than the exponential full product.
    """
    from repro.analysis import build_model, check_model
    from repro.workloads import FAMILIES, load_dataset

    base = ClusterSpec(nodes=2, procs_per_node=4)
    _table, build_s = _timed(
        ShapeTable.build, tracker_graph, State(n_models=2), base
    )

    configs = [("tracker", tracker_graph)]
    for name, fam in sorted(FAMILIES.items()):
        inst = load_dataset(name)[0]
        configs.append((name, fam.build_graph(inst)))

    per_config = {}
    total_s = 0.0
    for name, graph in configs:
        result = build_model(graph).explore()
        assert result.ok, f"{name}: {result.verdict}"
        report, check_s = _timed(check_model, graph)
        assert not [f for f in report.findings if f.severity.name == "ERROR"]
        total_s += check_s
        per_config[name] = {
            "states": result.states,
            "transitions": result.transitions,
            "horizon": result.horizon,
            "check_wall_s": check_s,
        }
        print(
            f"\nmodel check [{name}]: {result.states} states, "
            f"{result.transitions} transitions, {check_s * 1e3:.2f}ms"
        )

    fraction = total_s / build_s
    RESULTS["model_check"] = {
        "configs": per_config,
        "total_wall_s": total_s,
        "shape_build_s": build_s,
        "verify_fraction": fraction,
    }
    print(f"model check total: {total_s * 1e3:.2f}ms ({fraction:.2%} of build)")
    assert fraction < MAX_VERIFY_FRACTION
