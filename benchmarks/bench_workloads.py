"""Benchmark: the workload diversity suite across the solver ladder.

Every frozen feasible instance of every workload family is solved on the
exact, bounded (eps=0.5) and list rungs; every table is certified by the
method-independent W+S verifier with **zero findings asserted**, and
every rung's mean latency is scored against the online HEFT baseline
floor.  The deliberately infeasible dataset entries must be rejected
with exactly their recorded findings.

Model-derived metrics (``mean_latency``, ``baseline_latency``,
``latency_vs_baseline``) are deterministic, so the trajectory gate can
hold them to the +-10% band; solve times are recorded as
``build_seconds`` (not a gated pattern) because they are honest but
noisy.  Set ``REPRO_BENCH_QUICK=1`` for the CI smoke configuration
(first feasible instance per family, same assertions).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from _schema import write_bench
from repro.workloads import certify_instance, load_dataset, score_policy

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
RESULTS: dict = {"quick": QUICK}

FAMILIES = ("matmul", "fusion", "webinfer")
POLICIES = ("exact", "bounded:0.5", "list")
BOUNDED_EPS = 0.5


@pytest.fixture(scope="module", autouse=True)
def _emit_summary():
    yield
    out = write_bench(
        "workloads", RESULTS, Path(__file__).with_name("BENCH_workloads.json")
    )
    print(f"\nsummary written to {out}")


def test_policy_ladder_vs_baseline():
    """All three workloads x all three rungs: verified clean, scored vs HEFT."""
    ladder: dict = {}
    for family in FAMILIES:
        feasible = [i for i in load_dataset(family) if not i.expected_findings]
        if QUICK:
            feasible = feasible[:1]
        rows = []
        for inst in feasible:
            for policy in POLICIES:
                t0 = time.perf_counter()
                score = score_policy(inst, policy)
                build_seconds = time.perf_counter() - t0
                assert score.clean, (
                    f"{inst.name} on {policy}: verifier findings "
                    f"{score.finding_counts}"
                )
                # Exact cannot lose to a feasible point of its own search;
                # bounded certifies at most (1+eps) of the optimum, and the
                # baseline is at least the optimum.
                if policy == "exact":
                    assert score.ratio <= 1.0 + 1e-9
                else:
                    assert score.ratio <= 1.0 + BOUNDED_EPS + 1e-9
                key = policy.replace(":", "_").replace(".", "")
                rows.append({
                    "instance": inst.name,
                    "policy": key,
                    "mean_latency": score.mean_latency,
                    "baseline_latency": score.baseline_mean,
                    "latency_vs_baseline": score.ratio,
                    "build_seconds": build_seconds,
                })
                print(
                    f"\n  {inst.name} {policy}: L={score.mean_latency:.4f}s "
                    f"baseline={score.baseline_mean:.4f}s "
                    f"ratio={score.ratio:.3f} ({build_seconds * 1e3:.0f}ms)"
                )
        ladder[family] = rows
    RESULTS["policy_ladder"] = ladder


def test_infeasible_rejection():
    """Every broken dataset entry is rejected with its recorded findings."""
    rows = []
    for family in FAMILIES:
        for inst in load_dataset(family):
            if not inst.expected_findings:
                continue
            t0 = time.perf_counter()
            report = certify_instance(inst)
            certify_seconds = time.perf_counter() - t0
            got = sorted({f.rule for f in report.findings})
            assert set(inst.expected_findings) <= set(got), (
                f"{inst.name}: expected {inst.expected_findings}, got {got}"
            )
            assert not report.ok(), f"{inst.name} passed but must fail"
            rows.append({
                "instance": inst.name,
                "expected": list(inst.expected_findings),
                "found": got,
                "findings": report.counts()["error"],
                "certify_seconds": certify_seconds,
            })
            print(f"\n  {inst.name}: {got} (expected {inst.expected_findings})")
    assert len(rows) == len(FAMILIES)
    RESULTS["infeasible_rejection"] = {"rows": rows}
