"""Benchmark: regenerate the §3.4 regime-switching comparison + ablations.

Timings use ``time.perf_counter`` directly so the module runs under a
plain ``pytest`` invocation; results land in ``BENCH_regime.json`` via
the shared :mod:`_schema` envelope.  ``REPRO_BENCH_QUICK=1`` shrinks the
horizons/sweeps for CI smoke; all assertions survive either mode.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from _schema import write_bench
from repro.experiments.ablations import comm_cost, interpolation, switch_frequency
from repro.experiments.regime import run_regime

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
RESULTS: dict = {"quick": QUICK}

# 1200 s is the shortest horizon where switching still beats every fixed
# schedule (at 900 s a fixed schedule ties); the assertion holds in both.
HORIZON = 1200.0 if QUICK else 3600.0


@pytest.fixture(scope="module", autouse=True)
def _emit_summary():
    yield
    out = write_bench(
        "regime", RESULTS, Path(__file__).with_name("BENCH_regime.json")
    )
    print(f"\nsummary written to {out}")


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0


def test_regime_full_regeneration():
    result, wall = _timed(run_regime, horizon=HORIZON)
    print()
    print(result.render())
    assert result.switching_beats_all_fixed()
    RESULTS["regeneration"] = {
        "wall_s": wall,
        "horizon": HORIZON,
        "switching_beats_all_fixed": True,
    }


def test_switch_frequency_ablation():
    dwells = (60.0, 600.0)
    rows, wall = _timed(
        switch_frequency, dwells=dwells, horizon=600.0 if QUICK else 1200.0
    )
    print()
    for r in rows:
        print(f"  dwell={r.mean_dwell:.0f}s: switches={r.switches} "
              f"stall={r.stall_fraction:.2%} wins={r.switching_wins}")
    assert all(r.switching_wins for r in rows)
    RESULTS["switch_frequency"] = {
        "wall_s": wall,
        "rows": [
            {
                "mean_dwell": r.mean_dwell,
                "switches": r.switches,
                "stall_fraction": r.stall_fraction,
            }
            for r in rows
        ],
    }


def test_interpolation_ablation():
    rows, wall = _timed(interpolation)
    print()
    for r in rows:
        neigh = "inapplicable" if r.neighbour_latency is None else f"{r.neighbour_latency:.3f}s"
        print(f"  m={r.n_models}: exact={r.exact_latency:.3f}s neighbour={neigh}")
    assert any(r.neighbour_latency is None for r in rows)
    RESULTS["interpolation"] = {
        "wall_s": wall,
        "inapplicable_states": sum(
            1 for r in rows if r.neighbour_latency is None
        ),
        "states": len(rows),
    }


def test_comm_cost_ablation():
    rows, wall = _timed(comm_cost, latencies=(0.0, 1.0))
    print()
    for r in rows:
        print(f"  inter-node={r.inter_node_latency:.1f}s: L={r.latency:.3f}s "
              f"nodes={r.nodes_touched} II={r.period:.3f}s")
    assert rows[0].nodes_touched == 2 and rows[1].nodes_touched == 1
    RESULTS["comm_cost"] = {
        "wall_s": wall,
        "rows": [
            {
                "inter_node_latency": r.inter_node_latency,
                "latency": r.latency,
                "nodes_touched": r.nodes_touched,
                "period": r.period,
            }
            for r in rows
        ],
    }
