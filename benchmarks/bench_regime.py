"""Benchmark: regenerate the §3.4 regime-switching comparison + ablations."""

from __future__ import annotations

from repro.experiments.ablations import comm_cost, interpolation, switch_frequency
from repro.experiments.regime import run_regime


def test_regime_full_regeneration(benchmark):
    result = benchmark.pedantic(
        lambda: run_regime(horizon=3600.0), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.switching_beats_all_fixed()


def test_switch_frequency_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: switch_frequency(dwells=(60.0, 600.0), horizon=1200.0),
        rounds=1,
        iterations=1,
    )
    print()
    for r in rows:
        print(f"  dwell={r.mean_dwell:.0f}s: switches={r.switches} "
              f"stall={r.stall_fraction:.2%} wins={r.switching_wins}")
    assert all(r.switching_wins for r in rows)


def test_interpolation_ablation(benchmark):
    rows = benchmark.pedantic(interpolation, rounds=1, iterations=1)
    print()
    for r in rows:
        neigh = "inapplicable" if r.neighbour_latency is None else f"{r.neighbour_latency:.3f}s"
        print(f"  m={r.n_models}: exact={r.exact_latency:.3f}s neighbour={neigh}")
    assert any(r.neighbour_latency is None for r in rows)


def test_comm_cost_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: comm_cost(latencies=(0.0, 1.0)), rounds=1, iterations=1
    )
    print()
    for r in rows:
        print(f"  inter-node={r.inter_node_latency:.1f}s: L={r.latency:.3f}s "
              f"nodes={r.nodes_touched} II={r.period:.3f}s")
    assert rows[0].nodes_touched == 2 and rows[1].nodes_touched == 1
