"""Benchmark: regenerate Table 1 (decomposition latencies).

Times both the analytic cost model and the simulated Figure 9 execution
for every cell, and prints the reproduced table next to the paper's
numbers.
"""

from __future__ import annotations

import pytest

from repro.decomp.costmodel import TABLE1_CALIBRATION
from repro.decomp.strategies import Decomposition
from repro.experiments.table1 import PAPER_TABLE1, run_table1, simulate_decomposition


def test_table1_full_regeneration(benchmark):
    result = benchmark.pedantic(run_table1, rounds=3, iterations=1)
    print()
    print(result.render())
    assert result.shape_holds()


@pytest.mark.parametrize("fp,m,mp", sorted(PAPER_TABLE1))
def test_table1_cell_simulation(benchmark, fp, m, mp):
    """Per-cell DES cost: one frame through the decomposed task."""
    latency = benchmark(
        simulate_decomposition, TABLE1_CALIBRATION, Decomposition(fp, mp), m, 4
    )
    paper = PAPER_TABLE1[(fp, m, mp)]
    print(f"\n  FP={fp} m={m} MP={mp}: simulated={latency:.3f}s paper={paper:.3f}s")
    assert abs(latency - paper) / paper < 0.06


def test_table1_analytic_model(benchmark, m8):
    """The pure cost-model evaluation is microseconds — the point of
    pre-computing the decomposition table off-line."""

    def evaluate_all():
        return [
            TABLE1_CALIBRATION.latency(Decomposition(fp, mp), m)
            for (fp, m, mp) in PAPER_TABLE1
        ]

    values = benchmark(evaluate_all)
    assert len(values) == 6
