"""Shared fixtures for the benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``bench_*`` module regenerates one paper table or figure (printing the
reproduced rows/series) and times the code that produces it.
"""

from __future__ import annotations

import pytest

from repro.apps.tracker.graph import build_tracker_graph
from repro.sim.cluster import SINGLE_NODE_SMP
from repro.state import State


@pytest.fixture(scope="session")
def smp4():
    return SINGLE_NODE_SMP(4)


@pytest.fixture(scope="session")
def m8():
    return State(n_models=8)


@pytest.fixture(scope="session")
def tracker_graph():
    return build_tracker_graph()
