"""Benchmark: regenerate Figure 3 (tuning curve vs optimal schedule).

Prints the reproduced curve and times its two components: one hand-tuned
operating point under the on-line scheduler, and the optimal pre-computed
schedule (Figure 6 solve + pipelined execution).
"""

from __future__ import annotations

import pytest

from repro.core.optimal import OptimalScheduler
from repro.experiments.figure3 import expanded_tracker_for_tuning, run_figure3
from repro.runtime.static_exec import StaticExecutor
from repro.sched.handtuned import measure_point


def test_figure3_full_regeneration(benchmark):
    result = benchmark.pedantic(
        lambda: run_figure3(
            periods=(0.033, 1.0, 2.0, 3.0, 5.0), horizon=60.0, optimal_iterations=12
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    assert result.optimal_dominates_curve()
    assert result.halves_worst_latency()


@pytest.mark.parametrize("period", [0.033, 5.0])
def test_tuned_point(benchmark, smp4, m8, period):
    """Cost of measuring one operating point of the tuning curve."""
    graph = expanded_tracker_for_tuning(8, 4)

    def run():
        point, _ = measure_point(
            graph, m8, smp4, period, horizon=60.0,
            input_policy="inorder", channel_capacity=2,
        )
        return point

    point = benchmark.pedantic(run, rounds=2, iterations=1)
    print(f"\n  period={period}: latency={point.latency:.2f}s thr={point.throughput:.3f}/s")


def test_optimal_point(benchmark, tracker_graph, smp4, m8):
    """Cost of the full optimal path: Figure 6 solve + 12 iterations."""

    def run():
        sol = OptimalScheduler(smp4).solve(tracker_graph, m8)
        return StaticExecutor(tracker_graph, m8, smp4, sol).run(12)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.meta["slips"] == 0
