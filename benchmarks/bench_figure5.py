"""Benchmark: regenerate Figure 5 and time the Figure 6 scheduler itself.

The paper argues exhaustive enumeration is affordable because "the
resulting schedule will be operating for months"; these benchmarks put a
number on "affordable" — and compare it against the HEFT-style heuristic,
§3.4's alternative for filling the table.
"""

from __future__ import annotations

import pytest

from repro.core.enumerate import enumerate_schedules
from repro.core.optimal import OptimalScheduler
from repro.experiments.figure5 import run_figure5
from repro.sched.listsched import list_schedule
from repro.state import State


def test_figure5_full_regeneration(benchmark):
    result = benchmark.pedantic(lambda: run_figure5(iterations=8), rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.latency_ordering_holds()


@pytest.mark.parametrize("n_models", [1, 4, 8])
def test_enumerate_cost_per_state(benchmark, tracker_graph, smp4, n_models):
    """Steps 1-2 of Figure 6: exhaustive L and S for one state."""
    state = State(n_models=n_models)
    res = benchmark(enumerate_schedules, tracker_graph, state, smp4)
    print(f"\n  m={n_models}: L={res.latency:.3f}s |S|={res.optimal_count} "
          f"explored={res.explored}")


def test_full_solve_cost(benchmark, tracker_graph, smp4, m8):
    """All three Figure 6 steps (enumeration + pipelining)."""
    sched = OptimalScheduler(smp4)
    sol = benchmark(sched.solve, tracker_graph, m8)
    assert sol.latency > 0


def test_heuristic_vs_exhaustive(benchmark, tracker_graph, smp4, m8):
    """The HEFT-style heuristic: how much cheaper, how close?"""
    heur = benchmark(list_schedule, tracker_graph, m8, smp4)
    opt = OptimalScheduler(smp4).solve(tracker_graph, m8)
    gap = heur.latency / opt.latency - 1.0
    print(f"\n  heuristic L={heur.latency:.3f}s vs optimal L={opt.latency:.3f}s "
          f"(gap {gap:.1%})")
    assert heur.latency >= opt.latency - 1e-9


def test_schedule_table_build_cost(benchmark, tracker_graph, smp4):
    """Off-line cost of the whole per-state table (states 1..5)."""
    from repro.core.table import ScheduleTable
    from repro.state import StateSpace

    table = benchmark.pedantic(
        lambda: ScheduleTable.build(
            tracker_graph, StateSpace.range("n_models", 1, 5), OptimalScheduler(smp4)
        ),
        rounds=2,
        iterations=1,
    )
    assert len(table) == 5
