"""Micro-benchmarks for the substrates: DES engine, STM, kernels.

Not a paper figure — these establish that the simulation substrate is fast
enough for the experiment scales the figures use, and give a baseline for
profiling regressions (the guides' "no optimization without measuring").

The substrate-comparison test at the end races the threaded and process
runtimes on the same data-parallel tracker schedule and emits a
``BENCH_substrates.json`` summary next to this file.  The wall-clock
speedup assertion only fires on machines with >= 4 usable cores; a
single-CPU container reports its honest <= 1x number instead of failing
and marks the summary with ``"skipped": "insufficient_cores"`` so
artifact consumers never mistake an unasserted run for a passing one.
``REPRO_BENCH_QUICK=1`` shrinks the frame count for CI.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from _schema import usable_cpus, write_bench
from repro.apps.colormodel import color_histogram
from repro.apps.tracker import kernels
from repro.apps.video import VideoSource
from repro.sim.engine import Simulator
from repro.stm.channel import STMChannel
from repro.stm.gc import collect_channel

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
RESULTS: dict = {"quick": QUICK}


def test_event_throughput(benchmark):
    """Fire 10k chained timeout events."""

    def run():
        sim = Simulator()

        def ticker(sim, n):
            for _ in range(n):
                yield sim.timeout(0.001)

        sim.process(ticker(sim, 10_000))
        sim.run()
        return sim.now

    now = benchmark.pedantic(run, rounds=3, iterations=1)
    assert now == pytest.approx(10.0)


def test_stm_put_get_consume_cycle(benchmark):
    """One full STM item lifecycle x 1000, including GC."""

    def run():
        chan = STMChannel("bench")
        out = chan.attach_output("p")
        inp = chan.attach_input("q")
        for ts in range(1000):
            chan.put(out, ts, ts)
            chan.get(inp, ts)
            chan.consume(inp, ts)
            collect_channel(chan)
        return chan.total_collected

    collected = benchmark.pedantic(run, rounds=3, iterations=1)
    assert collected == 1000


def test_target_detection_kernel(benchmark):
    """The real T4 kernel on a 120x160 frame with 8 models."""
    video = VideoSource(n_targets=8, height=120, width=160, seed=0)
    frame = video.frame(0)
    models = [color_histogram(video.model_patch(i)) for i in range(8)]
    fh = kernels.frame_histogram(frame)
    mask = kernels.change_detection(frame, video.frame(1))

    planes = benchmark(kernels.target_detection, frame, models, fh, mask)
    assert planes.shape == (8, 120, 160)


def test_change_detection_kernel(benchmark):
    video = VideoSource(n_targets=1, height=120, width=160, seed=0)
    a, b = video.frame(0), video.frame(1)
    mask = benchmark(kernels.change_detection, a, b)
    assert mask.dtype == bool


def test_histogram_kernel(benchmark):
    frame = VideoSource(n_targets=1, height=120, width=160, seed=0).frame(0)
    h = benchmark(kernels.frame_histogram, frame)
    assert h.sum() == pytest.approx(1.0)


@pytest.fixture(scope="module", autouse=True)
def _emit_summary():
    yield
    if "substrates" in RESULTS:
        out = write_bench(
            "substrates", RESULTS, Path(__file__).with_name("BENCH_substrates.json")
        )
        print(f"\nsummary written to {out}")


def test_substrate_comparison_tracker_dp(smp4):
    """Threaded vs. process substrate on the same dp4 tracker schedule.

    The schedule fans T4 over four workers; on the process substrate the
    chunks execute on a real process pool, so with >= 4 cores the run must
    beat the GIL-serialized threaded runtime by > 1.5x wall-clock.  T4's
    compute is scaled (``t4_work_scale``) so its cost/byte ratio matches
    the paper's Table 1 hardware — vanilla vectorized NumPy finishes the
    scan in ~1 ms, where transport overhead would measure nothing.
    """
    from repro.apps.tracker.graph import attach_kernels, build_tracker_graph
    from repro.core.schedule import IterationSchedule, PipelinedSchedule, Placement
    from repro.runtime.static_exec import StaticExecutor
    from repro.state import State

    frames = 4 if QUICK else 10
    n_models = 6
    work_scale = 250 if QUICK else 400  # ~0.35s / ~0.55s serial T4 per frame
    state = State(n_models=n_models)

    def setup():
        video = VideoSource(n_targets=n_models, height=120, width=160, seed=42)
        return attach_kernels(build_tracker_graph(), video,
                              t4_work_scale=work_scale)

    it = IterationSchedule([
        Placement("T1", (0,), 0.0, 0.002),
        Placement("T2", (1,), 0.002, 0.120),
        Placement("T3", (2,), 0.002, 0.080),
        Placement("T4", (0, 1, 2, 3), 0.122, 2.0, variant="dp4"),
        Placement("T5", (0,), 2.122, 0.07),
    ])
    sched = PipelinedSchedule(it, period=2.2, shift=0, n_procs=4)

    runs: dict[str, dict] = {}
    outputs: dict[str, dict] = {}
    for substrate in ("threaded", "process"):
        live, statics = setup()
        ex = StaticExecutor(live, state, smp4, sched, runtime=substrate,
                            static_inputs=statics)
        t0 = time.perf_counter()
        result = ex.run(frames)
        wall = time.perf_counter() - t0
        assert result.completed_count == frames
        latencies = [result.latency(ts) for ts in result.completed]
        runs[substrate] = {
            "wall_s": wall,
            "runtime_wall_s": result.meta["wall_time"],
            "mean_frame_latency_s": sum(latencies) / len(latencies),
        }
        outputs[substrate] = result.meta["outputs"]["model_locations"]

    for ts in range(frames):  # same schedule, same answers
        assert outputs["threaded"][ts] == outputs["process"][ts]

    cpus = usable_cpus()
    speedup = runs["threaded"]["runtime_wall_s"] / runs["process"]["runtime_wall_s"]
    RESULTS["substrates"] = {
        "frames": frames,
        "n_models": n_models,
        "t4_work_scale": work_scale,
        "schedule": "dp4",
        "cpus": cpus,
        "threaded": runs["threaded"],
        "process": runs["process"],
        "speedup_process_over_threaded": speedup,
        "skipped": None if cpus >= 4 else "insufficient_cores",
    }
    print(
        f"\n  {frames} frames, m={n_models}, dp4 on {cpus} cpu(s): "
        f"threaded={runs['threaded']['runtime_wall_s']:.2f}s "
        f"process={runs['process']['runtime_wall_s']:.2f}s "
        f"speedup={speedup:.2f}x"
    )
    if cpus >= 4:
        assert speedup > 1.5, (
            f"process substrate only {speedup:.2f}x over threaded on {cpus} cores"
        )


def test_dynamic_executor_simulation_rate(benchmark, tracker_graph, smp4, m8):
    """Simulated-seconds-per-wall-second of the dynamic executor."""
    from repro.runtime.dynamic import DynamicExecutor
    from repro.sched.handtuned import with_source_period
    from repro.sched.online import PthreadScheduler

    tuned = with_source_period(tracker_graph, 1.0)

    def run():
        return DynamicExecutor(
            tuned, m8, smp4, PthreadScheduler(quantum=0.01)
        ).run(horizon=30.0)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.emitted >= 29
