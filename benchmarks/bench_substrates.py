"""Micro-benchmarks for the substrates: DES engine, STM, kernels.

Not a paper figure — these establish that the simulation substrate is fast
enough for the experiment scales the figures use, and give a baseline for
profiling regressions (the guides' "no optimization without measuring").

The scaling ladder at the end races the threaded runtime against the
process runtime across 1/2/4(/8)-worker data-parallel tracker schedules,
and the round-trip test measures the broker messages per frame saved by
operation coalescing; both emit into the ``BENCH_substrates.json``
summary next to this file.  Wall-clock speedup assertions only fire on
rungs the host can actually parallelize (``cpus >= workers``); a
single-CPU container reports its honest <= 1x numbers instead of failing
and marks the summary with ``"skipped": "insufficient_cores"`` so
artifact consumers never mistake an unasserted run for a passing one.
The round-trip reduction assertion runs everywhere — message counts
don't depend on core count.  ``REPRO_BENCH_QUICK=1`` shrinks the frame
count for CI, and ``trajectory.py`` strings successive summaries into a
regression-gated history.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from _schema import usable_cpus, write_bench
from repro.apps.colormodel import color_histogram
from repro.apps.tracker import kernels
from repro.apps.video import VideoSource
from repro.sim.engine import Simulator
from repro.stm.channel import STMChannel
from repro.stm.gc import collect_channel

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
RESULTS: dict = {"quick": QUICK}


def test_event_throughput(benchmark):
    """Fire 10k chained timeout events."""

    def run():
        sim = Simulator()

        def ticker(sim, n):
            for _ in range(n):
                yield sim.timeout(0.001)

        sim.process(ticker(sim, 10_000))
        sim.run()
        return sim.now

    now = benchmark.pedantic(run, rounds=3, iterations=1)
    assert now == pytest.approx(10.0)


def test_stm_put_get_consume_cycle(benchmark):
    """One full STM item lifecycle x 1000, including GC."""

    def run():
        chan = STMChannel("bench")
        out = chan.attach_output("p")
        inp = chan.attach_input("q")
        for ts in range(1000):
            chan.put(out, ts, ts)
            chan.get(inp, ts)
            chan.consume(inp, ts)
            collect_channel(chan)
        return chan.total_collected

    collected = benchmark.pedantic(run, rounds=3, iterations=1)
    assert collected == 1000


def test_target_detection_kernel(benchmark):
    """The real T4 kernel on a 120x160 frame with 8 models."""
    video = VideoSource(n_targets=8, height=120, width=160, seed=0)
    frame = video.frame(0)
    models = [color_histogram(video.model_patch(i)) for i in range(8)]
    fh = kernels.frame_histogram(frame)
    mask = kernels.change_detection(frame, video.frame(1))

    planes = benchmark(kernels.target_detection, frame, models, fh, mask)
    assert planes.shape == (8, 120, 160)


def test_change_detection_kernel(benchmark):
    video = VideoSource(n_targets=1, height=120, width=160, seed=0)
    a, b = video.frame(0), video.frame(1)
    mask = benchmark(kernels.change_detection, a, b)
    assert mask.dtype == bool


def test_histogram_kernel(benchmark):
    frame = VideoSource(n_targets=1, height=120, width=160, seed=0).frame(0)
    h = benchmark(kernels.frame_histogram, frame)
    assert h.sum() == pytest.approx(1.0)


@pytest.fixture(scope="module", autouse=True)
def _emit_summary():
    yield
    if "substrates" in RESULTS:
        out = write_bench(
            "substrates", RESULTS, Path(__file__).with_name("BENCH_substrates.json")
        )
        print(f"\nsummary written to {out}")


def _tracker_dp_schedule(width: int):
    """T4 fanned over ``width`` workers, the other tasks on procs 0-2."""
    from repro.core.schedule import IterationSchedule, PipelinedSchedule, Placement

    t4 = Placement("T4", tuple(range(width)), 0.122, 2.0,
                   variant=f"dp{width}" if width > 1 else "serial")
    it = IterationSchedule([
        Placement("T1", (0,), 0.0, 0.002),
        Placement("T2", (1,), 0.002, 0.120),
        Placement("T3", (2,), 0.002, 0.080),
        t4,
        Placement("T5", (0,), 2.122, 0.07),
    ])
    return PipelinedSchedule(it, period=2.2, shift=0,
                             n_procs=max(4, width))


def test_substrate_scaling_ladder():
    """Threaded vs. process substrate across a 1/2/4(/8)-worker ladder.

    Each rung fans T4 over ``w`` workers; on the process substrate the
    chunks execute on a real process pool, so with enough cores the dp4
    rung must beat the GIL-serialized threaded runtime by > 1.5x
    wall-clock.  T4's compute is scaled (``t4_work_scale``) so its
    cost/byte ratio matches the paper's Table 1 hardware — vanilla
    vectorized NumPy finishes the scan in ~1 ms, where transport overhead
    would measure nothing.  The 8-worker rung only runs on hosts with
    >= 8 usable cores, and speedup is asserted only for rungs the host
    can actually run in parallel (``cpus >= workers``); smaller hosts
    report their honest numbers with ``"skipped": "insufficient_cores"``.
    """
    from repro.apps.tracker.graph import attach_kernels, build_tracker_graph
    from repro.runtime.static_exec import StaticExecutor
    from repro.sim.cluster import SINGLE_NODE_SMP
    from repro.state import State

    frames = 4 if QUICK else 10
    n_models = 6
    work_scale = 250 if QUICK else 400  # ~0.35s / ~0.55s serial T4 per frame
    cpus = usable_cpus()
    rungs = [1, 2, 4, 8]

    def run_once(substrate: str, width: int) -> tuple[dict, dict]:
        video = VideoSource(n_targets=n_models, height=120, width=160, seed=42)
        live, statics = attach_kernels(build_tracker_graph(), video,
                                       t4_work_scale=work_scale)
        ex = StaticExecutor(
            live, State(n_models=n_models), SINGLE_NODE_SMP(max(4, width)),
            _tracker_dp_schedule(width), runtime=substrate,
            static_inputs=statics,
        )
        t0 = time.perf_counter()
        result = ex.run(frames)
        wall = time.perf_counter() - t0
        assert result.completed_count == frames
        latencies = [result.latency(ts) for ts in result.completed]
        row = {
            "wall_s": wall,
            "runtime_wall_s": result.meta["wall_time"],
            "mean_frame_latency_s": sum(latencies) / len(latencies),
        }
        if substrate == "process":
            row["broker_roundtrips"] = result.meta["broker_roundtrips"]
            row["broker_ops"] = result.meta["broker_ops"]
        return row, result.meta["outputs"]["model_locations"]

    # One GIL-serialized baseline: thread wall time is width-insensitive.
    threaded, t_out = run_once("threaded", 4)
    ladder: dict[int, dict] = {}
    for width in rungs:
        if width > 4 and cpus < width:
            # Not even worth running: record the gap explicitly so the
            # CI step summary counts this rung as skipped instead of the
            # ladder silently shrinking on small hosts.
            ladder[width] = {"asserted": False, "skipped": "insufficient_cores"}
            print(f"\n  dp{width} on {cpus} cpu(s): skipped (insufficient cores)")
            continue
        row, p_out = run_once("process", width)
        for ts in range(frames):  # same schedule family, same answers
            assert t_out[ts] == p_out[ts], (width, ts)
        row["speedup_over_threaded"] = (
            threaded["runtime_wall_s"] / row["runtime_wall_s"]
        )
        row["asserted"] = width >= 4 and cpus >= width
        # Rungs meant to assert (>= 4 workers) that the host cannot
        # parallelize report their honest numbers but carry the reason.
        row["skipped"] = (
            "insufficient_cores" if width >= 4 and cpus < width else None
        )
        ladder[width] = row
        print(
            f"\n  dp{width} on {cpus} cpu(s): "
            f"threaded={threaded['runtime_wall_s']:.2f}s "
            f"process={row['runtime_wall_s']:.2f}s "
            f"speedup={row['speedup_over_threaded']:.2f}x "
            f"roundtrips={row['broker_roundtrips']}"
        )

    ran = [w for w, row in ladder.items() if "speedup_over_threaded" in row]
    RESULTS["substrates"] = {
        "frames": frames,
        "n_models": n_models,
        "t4_work_scale": work_scale,
        "cpus": cpus,
        "threaded": threaded,
        "ladder": {str(w): row for w, row in ladder.items()},
        "speedup_process_over_threaded":
            ladder[max(ran)]["speedup_over_threaded"],
        "skipped": None if cpus >= 4 else "insufficient_cores",
    }
    for width, row in ladder.items():
        if row["asserted"]:
            assert row["speedup_over_threaded"] > 1.5, (
                f"process substrate only {row['speedup_over_threaded']:.2f}x "
                f"over threaded at dp{width} on {cpus} cores"
            )


def test_broker_roundtrip_coalescing():
    """Marginal broker round trips per frame: coalesced vs per-op.

    Runs the real tracker graph at work_scale=1 (transport-dominated)
    for 4 and 8 frames in both coalescing modes; the *marginal* rate
    ``(rt(8) - rt(4)) / 4`` excludes one-time costs (static gets, the
    final flush), so it is the steady-state queue crossings per frame.
    Coalescing must cut it by >= 3x — this holds on any host, CPU count
    is irrelevant to message counts.
    """
    from repro.apps.tracker.graph import attach_kernels, build_tracker_graph
    from repro.runtime.process import ProcessRuntime
    from repro.state import State

    n_models = 2
    rates: dict[str, float] = {}
    detail: dict[str, dict] = {}
    for coalesce in (True, False):
        per_frames: dict[int, int] = {}
        ops: dict[int, dict] = {}
        for frames in (4, 8):
            video = VideoSource(n_targets=n_models, height=48, width=64,
                                seed=23)
            live, statics = attach_kernels(
                build_tracker_graph(frame_shape=(48, 64)), video
            )
            rt = ProcessRuntime(live, State(n_models=n_models),
                                static_inputs=statics, coalesce=coalesce)
            res = rt.run(frames)
            per_frames[frames] = res.meta["broker_roundtrips"]
            ops[frames] = res.meta["broker_ops"]
        key = "coalesced" if coalesce else "per_op"
        rates[key] = (per_frames[8] - per_frames[4]) / 4
        detail[key] = {
            "roundtrips": {str(f): n for f, n in per_frames.items()},
            "ops_at_8_frames": ops[8],
            "marginal_roundtrips_per_frame": rates[key],
        }
    ratio = rates["per_op"] / rates["coalesced"]
    RESULTS["broker_roundtrips"] = {**detail, "reduction_ratio": ratio}
    print(
        f"\n  per-frame round trips: per-op={rates['per_op']:.1f} "
        f"coalesced={rates['coalesced']:.1f} ({ratio:.1f}x fewer)"
    )
    assert ratio >= 3.0, (
        f"coalescing only cut round trips {ratio:.2f}x (need >= 3x)"
    )


def test_dynamic_executor_simulation_rate(benchmark, tracker_graph, smp4, m8):
    """Simulated-seconds-per-wall-second of the dynamic executor."""
    from repro.runtime.dynamic import DynamicExecutor
    from repro.sched.handtuned import with_source_period
    from repro.sched.online import PthreadScheduler

    tuned = with_source_period(tracker_graph, 1.0)

    def run():
        return DynamicExecutor(
            tuned, m8, smp4, PthreadScheduler(quantum=0.01)
        ).run(horizon=30.0)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.emitted >= 29
