"""Micro-benchmarks for the substrates: DES engine, STM, kernels.

Not a paper figure — these establish that the simulation substrate is fast
enough for the experiment scales the figures use, and give a baseline for
profiling regressions (the guides' "no optimization without measuring").
"""

from __future__ import annotations

import pytest

from repro.apps.colormodel import color_histogram
from repro.apps.tracker import kernels
from repro.apps.video import VideoSource
from repro.sim.engine import Simulator
from repro.stm.channel import STMChannel
from repro.stm.gc import collect_channel


def test_event_throughput(benchmark):
    """Fire 10k chained timeout events."""

    def run():
        sim = Simulator()

        def ticker(sim, n):
            for _ in range(n):
                yield sim.timeout(0.001)

        sim.process(ticker(sim, 10_000))
        sim.run()
        return sim.now

    now = benchmark.pedantic(run, rounds=3, iterations=1)
    assert now == pytest.approx(10.0)


def test_stm_put_get_consume_cycle(benchmark):
    """One full STM item lifecycle x 1000, including GC."""

    def run():
        chan = STMChannel("bench")
        out = chan.attach_output("p")
        inp = chan.attach_input("q")
        for ts in range(1000):
            chan.put(out, ts, ts)
            chan.get(inp, ts)
            chan.consume(inp, ts)
            collect_channel(chan)
        return chan.total_collected

    collected = benchmark.pedantic(run, rounds=3, iterations=1)
    assert collected == 1000


def test_target_detection_kernel(benchmark):
    """The real T4 kernel on a 120x160 frame with 8 models."""
    video = VideoSource(n_targets=8, height=120, width=160, seed=0)
    frame = video.frame(0)
    models = [color_histogram(video.model_patch(i)) for i in range(8)]
    fh = kernels.frame_histogram(frame)
    mask = kernels.change_detection(frame, video.frame(1))

    planes = benchmark(kernels.target_detection, frame, models, fh, mask)
    assert planes.shape == (8, 120, 160)


def test_change_detection_kernel(benchmark):
    video = VideoSource(n_targets=1, height=120, width=160, seed=0)
    a, b = video.frame(0), video.frame(1)
    mask = benchmark(kernels.change_detection, a, b)
    assert mask.dtype == bool


def test_histogram_kernel(benchmark):
    frame = VideoSource(n_targets=1, height=120, width=160, seed=0).frame(0)
    h = benchmark(kernels.frame_histogram, frame)
    assert h.sum() == pytest.approx(1.0)


def test_dynamic_executor_simulation_rate(benchmark, tracker_graph, smp4, m8):
    """Simulated-seconds-per-wall-second of the dynamic executor."""
    from repro.runtime.dynamic import DynamicExecutor
    from repro.sched.handtuned import with_source_period
    from repro.sched.online import PthreadScheduler

    tuned = with_source_period(tracker_graph, 1.0)

    def run():
        return DynamicExecutor(
            tuned, m8, smp4, PthreadScheduler(quantum=0.01)
        ).run(horizon=30.0)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.emitted >= 29
