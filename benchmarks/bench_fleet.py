"""Benchmark: fleet capacity scaling and re-pack latency.

Two questions the fleet layer must answer with numbers rather than
design prose:

1. **How many concurrent tenants does a cluster sustain?**  Seeded kiosk
   waves are driven through :func:`repro.experiments.fleet_exp.run_fleet`
   over a ladder of cluster sizes; per size we record the peak
   concurrency, admission rate, utilization and the per-wave schedule
   cache hit rates (the cross-tenant amortization claim).
2. **What does one re-pack cost?**  Every fleet event (arrival,
   departure, regime change) triggers a full fair-share re-pack; its
   wall-clock latency must stay in the milliseconds so churn handling is
   negligible next to the table builds it reuses.

Timings use ``time.perf_counter`` inside the experiment driver so the
module runs under plain ``pytest``; set ``REPRO_BENCH_QUICK=1`` for the
CI smoke configuration.  Results land in ``BENCH_fleet.json`` via the
shared :mod:`_schema` envelope (this module is its first user).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from _schema import write_bench
from repro.experiments.fleet_exp import run_fleet
from repro.sim.cluster import ClusterSpec

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
RESULTS: dict = {"quick": QUICK}

#: (nodes, procs_per_node) ladder; quick keeps CI under a few seconds.
LADDER = [(2, 4), (4, 4)] if QUICK else [(4, 4), (8, 4), (16, 4)]


@pytest.fixture(scope="module", autouse=True)
def _emit_summary():
    yield
    if "scaling" in RESULTS:
        out = write_bench(
            "fleet", RESULTS, Path(__file__).with_name("BENCH_fleet.json")
        )
        print(f"\nsummary written to {out}")


def _run(nodes: int, procs: int):
    scale = max(1, (nodes * procs) // 8)
    return run_fleet(
        cluster=ClusterSpec(nodes=nodes, procs_per_node=procs),
        wave_sizes=(6 * scale, 4 * scale) if QUICK else (8 * scale, 5 * scale),
        wave_gap=120.0,
        mean_dwell=200.0,
        seed=7,
    )


def test_fleet_scaling_ladder():
    """Peak concurrency grows with the cluster; packings stay certified."""
    rows = []
    prev_peak = 0
    for nodes, procs in LADDER:
        r = _run(nodes, procs)
        assert r.findings_errors == 0, "packing failed F001/S-rule verification"
        assert r.waves[1].cache_hits > 0, "wave 2 must reuse cached schedules"
        rows.append({
            "cluster": f"{nodes}x{procs}",
            "capacity": r.capacity,
            "offered": r.offered,
            "admitted": r.admitted,
            "admission_rate": r.admission_rate,
            "peak_concurrent": r.peak_concurrent,
            "mean_utilization": r.mean_utilization,
            "repacks": r.repacks,
            "repack_latency_mean_s": r.repack_latency_mean_s,
            "repack_latency_max_s": r.repack_latency_max_s,
            "wave_hit_rates": [w.hit_rate for w in r.waves],
        })
        assert r.peak_concurrent >= prev_peak, (
            "a bigger cluster must sustain at least as many tenants"
        )
        prev_peak = r.peak_concurrent
        print(
            f"\n  {nodes}x{procs}: peak={r.peak_concurrent} "
            f"admit={r.admission_rate:.2f} util={r.mean_utilization:.2f} "
            f"repack_mean={r.repack_latency_mean_s * 1e3:.2f}ms"
        )
    RESULTS["scaling"] = rows


def test_repack_latency_budget():
    """Churn handling must be cheap: mean re-pack under 50 ms.

    The bound is deliberately loose (CI containers are slow and single
    core); the recorded distribution is the real artifact.
    """
    nodes, procs = LADDER[-1]
    r = _run(nodes, procs)
    RESULTS["repack_latency"] = {
        "cluster": f"{nodes}x{procs}",
        "repacks": r.repacks,
        "mean_s": r.repack_latency_mean_s,
        "max_s": r.repack_latency_max_s,
    }
    assert r.repacks > 0
    assert r.repack_latency_mean_s < 0.05, (
        f"mean repack latency {r.repack_latency_mean_s * 1e3:.1f}ms exceeds budget"
    )
