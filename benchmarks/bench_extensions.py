"""Benchmarks for the extension features (beyond the paper's figures).

* the latency/throughput frontier (the [13]-style trade-off curve),
* cost-error sensitivity of the optimal schedule,
* schedule-table serialization round trip,
* the live splitter/worker/joiner pool on the real T4 kernel.
"""

from __future__ import annotations

import pytest

from repro.core.frontier import latency_throughput_frontier
from repro.core.optimal import OptimalScheduler
from repro.core.sensitivity import sensitivity_profile
from repro.core.serialize import table_from_json, table_to_json
from repro.core.table import ScheduleTable
from repro.state import State, StateSpace


def test_frontier_computation(benchmark, tracker_graph, smp4, m8):
    front = benchmark(
        latency_throughput_frontier, tracker_graph, m8, smp4,
        comm=None, latency_slack=3.0,
    )
    print()
    for p in front:
        print(f"  L={p.latency:.3f}s  throughput={p.throughput:.3f}/s  "
              f"II={p.period:.3f}s")
    lats = [p.latency for p in front]
    assert lats == sorted(lats)


@pytest.mark.parametrize("error", [0.1, 0.4])
def test_sensitivity_profile(benchmark, tracker_graph, smp4, m8, error):
    sol = OptimalScheduler(smp4).solve(tracker_graph, m8)
    profile = benchmark.pedantic(
        lambda: sensitivity_profile(
            sol.iteration, tracker_graph, m8, smp4,
            error_level=error, trials=10, seed=0,
        ),
        rounds=2,
        iterations=1,
    )
    print(f"\n  error ±{error:.0%}: mean regret {profile.mean_regret:.2%}, "
          f"structure stable {profile.structure_stable_fraction:.0%}")


def test_table_serialization_round_trip(benchmark, tracker_graph, smp4):
    table = ScheduleTable.build(
        tracker_graph, StateSpace.range("n_models", 1, 5), OptimalScheduler(smp4)
    )

    def round_trip():
        return table_from_json(table_to_json(table))

    restored = benchmark(round_trip)
    assert len(restored) == 5


def test_sjw_pool_on_real_kernel(benchmark):
    """Live Figure 9 machinery: split/farm/join the real T4 kernel."""
    from repro.apps.colormodel import color_histogram
    from repro.apps.tracker.kernels import (
        change_detection,
        frame_histogram,
        target_detection_chunk,
    )
    from repro.apps.video import VideoSource
    from repro.decomp.sjw import SplitJoinPool
    from repro.decomp.strategies import Decomposition

    video = VideoSource(n_targets=4, height=96, width=128, seed=0)
    frame = video.frame(1)
    mask = change_detection(frame, video.frame(0))
    fh = frame_histogram(frame)
    models = [color_histogram(video.model_patch(i)) for i in range(4)]
    decomp = Decomposition(2, 2)

    def split(state, inputs):
        return [
            (chunk, {}) for chunk in decomp.chunks(frame.shape[0], 4)
        ]

    def work(state, chunk, chunk_inputs):
        return target_detection_chunk(frame, chunk, models, fh, mask)

    def join(state, results):
        return {"planes": results}

    with SplitJoinPool(4, split, work, join) as pool:
        out = benchmark(pool.compute, State(n_models=4), {})
        assert len(out["planes"]) == decomp.n_chunks
