"""One schema for every ``BENCH_*.json`` the benchmark harness emits.

Each ``bench_*`` module used to hand-roll its own ``json.dumps`` with its
own top-level keys, which made the CI artifacts impossible to consume
uniformly.  All emitters now go through :func:`write_bench`, which wraps
the module's results in a fixed envelope::

    {
      "bench": "fleet",             # which bench_ module produced this
      "schema_version": 1,
      "host": {"platform": ..., "python": ..., "cpus": ...},
      "results": { ... }            # the module's own payload, unchanged
    }

Consumers key on ``bench`` + ``schema_version`` and never need to guess a
module's layout to find the metadata.  Bump ``SCHEMA_VERSION`` when the
envelope (not a module payload) changes shape.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

SCHEMA_VERSION = 1

__all__ = ["SCHEMA_VERSION", "host_info", "usable_cpus", "write_bench"]


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def host_info() -> dict:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": usable_cpus(),
    }


def write_bench(bench: str, results: dict, path: Path) -> Path:
    """Write ``results`` to ``path`` under the shared envelope.

    ``bench`` is the short module name ("fleet", "substrates", ...);
    ``path`` is the target ``BENCH_<bench>.json``.  Returns ``path``.
    """
    payload = {
        "bench": bench,
        "schema_version": SCHEMA_VERSION,
        "host": host_info(),
        "results": results,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
