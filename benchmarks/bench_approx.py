"""Benchmark: the repro.approx solver ladder vs exact enumeration.

The enumeration cliff is real: an 8-task random DAG on a 2x4 cluster
already costs seconds of exact branch-and-bound, and one more task can
cost minutes.  This module measures what the ladder buys on the way up
that cliff:

* **time-to-solve** — exact vs ``bounded:eps`` vs ``list`` on random
  DAGs of growing size; the acceptance claim is a >= 2x median
  solve-time reduction at eps=0.5 on the 8-task search (in practice the
  static lower bound is tight on these DAGs and the reduction is
  orders of magnitude);
* **realized gap** — every served schedule carries a
  :class:`~repro.core.optimal.GapCertificate`; the realized gap must
  stay within the promised eps for every rung and every state, checked
  both directly and through the S013 analysis rule;
* **lazy fill** — serving one state from a
  :class:`~repro.approx.LazyScheduleTable` vs eagerly building the full
  table.

Timings are taken with ``time.perf_counter`` directly so the module runs
— and keeps its assertions — under a plain ``pytest`` invocation, and
results land in ``BENCH_approx.json`` via the shared :mod:`_schema`
envelope (the trajectory gate picks up its ``wall_s``/``speedup``
metrics automatically).  Set ``REPRO_BENCH_QUICK=1`` for the CI smoke
configuration (fewer seeds/sizes, same assertions).
"""

from __future__ import annotations

import os
import statistics
import time
from pathlib import Path

import pytest

from _schema import write_bench
from repro.analysis.schedverify import verify_solution
from repro.apps.tracker.graph import TRACKER_STATES, build_tracker_graph
from repro.approx import LazyScheduleTable, resolve_policy
from repro.core.optimal import OptimalScheduler
from repro.core.serialize import table_to_json
from repro.core.table import ScheduleTable
from repro.graph.builders import random_dag
from repro.sim.cluster import ClusterSpec
from repro.state import State

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
RESULTS: dict = {"quick": QUICK}

#: random-DAG sizes x seeds for the time-to-solve ladder.  Every cell's
#: exact solve completes in seconds on the 2x4 cluster; n=9 already does
#: not (tens of seconds to node-limit blowups) — that is the cliff this
#: subsystem exists for, and it is deliberately *not* in the grid.
SIZES = (6, 8) if QUICK else (6, 7, 8)
SEEDS = (1,) if QUICK else (1, 2, 3)
EPSILONS = (0.0, 0.1, 0.5)

CLIFF_SIZE = 8  # the acceptance row: >= 2x median reduction at eps=0.5


@pytest.fixture(scope="module", autouse=True)
def _emit_summary():
    yield
    out = write_bench(
        "approx", RESULTS, Path(__file__).with_name("BENCH_approx.json")
    )
    print(f"\nsummary written to {out}")


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0


def _cluster() -> ClusterSpec:
    return ClusterSpec(nodes=2, procs_per_node=4)


def test_solve_time_ladder():
    """Exact vs bounded vs list on growing random DAGs, all certified."""
    cluster = _cluster()
    scheduler = OptimalScheduler(cluster)
    state = State(n_models=4)
    rows = []
    speedups_at_cliff = []
    for n in SIZES:
        for seed in SEEDS:
            graph = random_dag(n, seed=seed, dp_prob=0.3)
            cell = {"tasks": n, "seed": seed}
            exact, t_exact = _timed(
                resolve_policy("exact").solve, graph, state, scheduler
            )
            cell["exact_wall_s"] = t_exact
            cell["exact_latency"] = exact.latency
            for spec in ("bounded:0.5", "list"):
                sol, t_sol = _timed(
                    resolve_policy(spec).solve, graph, state, scheduler
                )
                key = spec.replace(":", "_").replace(".", "")
                cell[f"{key}_wall_s"] = t_sol
                cell[f"{key}_gap_realized"] = sol.latency / exact.latency - 1
                cell[f"{key}_gap_certified"] = sol.certificate.gap_bound
                # The bounded rung's promise, checked against the truth
                # this bench happens to know (the exact optimum).
                if spec == "bounded:0.5":
                    assert sol.latency <= exact.latency * 1.5 + 1e-9
                    speedup = t_exact / t_sol if t_sol > 0 else float("inf")
                    cell["speedup"] = speedup
                    if n == CLIFF_SIZE:
                        speedups_at_cliff.append(speedup)
                # ...and the claim every consumer relies on: S013 holds.
                report = verify_solution(sol, graph, cluster)
                assert report.ok(strict=True), report.summary()
            rows.append(cell)
            print(
                f"\n  n={n} seed={seed}: exact={t_exact * 1e3:.1f}ms "
                f"bounded:0.5={cell['bounded_05_wall_s'] * 1e3:.1f}ms "
                f"({cell.get('speedup', 0):.0f}x) "
                f"list={cell['list_wall_s'] * 1e3:.1f}ms"
            )
    median = statistics.median(speedups_at_cliff)
    RESULTS["solve_time_ladder"] = {
        "rows": rows,
        "cliff_tasks": CLIFF_SIZE,
        "median_speedup_eps05": median,
    }
    assert median >= 2.0, (
        f"bounded:0.5 must cut median solve time >= 2x on the "
        f"{CLIFF_SIZE}-task search; got {median:.2f}x"
    )


def test_realized_gap_across_epsilons():
    """Full tracker-space tables per rung: gap <= eps, eps=0 bitwise exact."""
    graph = build_tracker_graph()
    cluster = _cluster()
    scheduler = OptimalScheduler(cluster)
    exact_table, t_exact = _timed(
        ScheduleTable.build, graph, TRACKER_STATES, scheduler
    )
    reference = table_to_json(exact_table)
    rows = []
    for eps in EPSILONS:
        table, t_build = _timed(
            ScheduleTable.build, graph, TRACKER_STATES, scheduler,
            policy=f"bounded:{eps}",
        )
        worst = 0.0
        for state in TRACKER_STATES:
            sol = table.lookup(state)
            exact = exact_table.lookup(state)
            realized = sol.latency / exact.latency - 1
            assert realized <= eps + 1e-9, (
                f"eps={eps} {state}: realized gap {realized:.4f}"
            )
            assert sol.certificate.gap_bound <= eps + 1e-9
            worst = max(worst, realized)
        if eps == 0.0:
            assert table_to_json(table) == reference, (
                "eps=0 must be bitwise-identical to exact"
            )
        rows.append({
            "epsilon": eps,
            "build_wall_s": t_build,
            "worst_realized_gap": worst,
        })
        print(f"\n  eps={eps}: build={t_build * 1e3:.1f}ms "
              f"worst realized gap={worst:.4f}")
    RESULTS["realized_gap"] = {
        "exact_build_wall_s": t_exact,
        "states": len(TRACKER_STATES),
        "rows": rows,
    }


def test_lazy_fill_vs_eager_build():
    """Serving one state lazily beats building all of them eagerly."""
    graph = build_tracker_graph()
    cluster = _cluster()
    _, t_eager = _timed(
        ScheduleTable.build, graph, TRACKER_STATES, OptimalScheduler(cluster)
    )
    lazy = LazyScheduleTable(
        graph, TRACKER_STATES, OptimalScheduler(cluster)
    )
    _, t_first = _timed(lazy.lookup, State(n_models=2))
    _, t_hit = _timed(lazy.lookup, State(n_models=2))
    assert t_first < t_eager, "one lazy fill must beat the eager full build"
    RESULTS["lazy_fill"] = {
        "states": len(TRACKER_STATES),
        "eager_build_wall_s": t_eager,
        "lazy_first_lookup_wall_s": t_first,
        "lazy_hit_wall_s": t_hit,
        "reduction_ratio": t_eager / t_first if t_first > 0 else float("inf"),
    }
    print(
        f"\n  eager {len(TRACKER_STATES)} states: {t_eager * 1e3:.1f}ms; "
        f"lazy first lookup {t_first * 1e3:.1f}ms "
        f"({t_eager / t_first:.1f}x less up-front), "
        f"hit {t_hit * 1e6:.0f}us"
    )
