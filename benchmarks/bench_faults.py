"""Benchmark: the fault-tolerance sweep — failure rate x transition policy.

Regenerates the §3.4-style amortization table for failures-as-regime-changes
and asserts its qualitative shape: a fault-free run is lossless, low
failure rates amortize the transition stall for every policy, and at high
rates the work-preserving policies (drain, checkpoint) blow the stall
budget while immediate stays cheap by abandoning in-flight frames.

Timings are taken with ``time.perf_counter`` directly so the module runs
— and keeps its assertions — under a plain ``pytest`` invocation, and the
results land in ``BENCH_faults.json`` via the shared :mod:`_schema`
envelope.  ``REPRO_BENCH_QUICK`` is recorded for trajectory comparability
but does not shrink the sweep: the assertions key on specific failure
rates (a rate-0.01 run must crash at least once), which needs the full
iteration count either way.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from _schema import write_bench
from repro.experiments.faults_exp import run_faults

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
RESULTS: dict = {"quick": QUICK}

ITERATIONS = 40


@pytest.fixture(scope="module", autouse=True)
def _emit_summary():
    yield
    out = write_bench(
        "faults", RESULTS, Path(__file__).with_name("BENCH_faults.json")
    )
    print(f"\nsummary written to {out}")


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0


def _row_record(r) -> dict:
    return {
        "rate": r.rate,
        "policy": r.policy,
        "stall_fraction": r.stall_fraction,
        "availability": r.recovery.availability,
        "crashes": r.recovery.crashes,
        "frames_lost_transition": r.recovery.frames_lost_transition,
        "frames_replayed": r.recovery.frames_replayed,
        "amortization_holds": r.amortization_holds,
    }


def test_faults_sweep_regeneration():
    result, wall = _timed(run_faults, iterations=ITERATIONS)
    print()
    print(result.render())

    healthy = [r for r in result.rows if r.rate == 0.0]
    assert all(r.completed == r.emitted for r in healthy)
    assert all(r.recovery.availability == 1.0 for r in healthy)
    assert all(r.amortization_holds for r in healthy)

    low = [r for r in result.rows if r.rate == 0.01]
    assert all(r.recovery.crashes >= 1 for r in low)
    assert all(r.amortization_holds for r in low)

    # The §3.4 argument breaks for work-preserving policies at high rate.
    assert result.breaking_rate("drain") == 0.08
    assert result.breaking_rate("checkpoint") == 0.08
    assert result.breaking_rate("immediate") is None

    RESULTS["sweep"] = {
        "wall_s": wall,
        "iterations": ITERATIONS,
        "rows": [_row_record(r) for r in result.rows],
    }


def test_policy_trade_under_failures():
    result, wall = _timed(run_faults, rates=(0.08,), iterations=ITERATIONS)
    rows = {r.policy: r for r in result.rows}
    drain, imm, chk = rows["drain"], rows["immediate"], rows["checkpoint"]

    # Immediate buys its short stall with abandoned frames...
    assert imm.stall_fraction < drain.stall_fraction
    assert imm.recovery.frames_lost_transition > 0
    assert drain.recovery.frames_lost_transition == 0
    # ...while checkpoint converts transition losses into replays.
    assert chk.recovery.frames_lost_transition == 0
    assert chk.recovery.frames_replayed > 0

    # Every policy pays the same detection latency (same plan, same
    # detector); what differs is what the transition does afterwards.
    assert drain.recovery.detection_latency_mean > 0

    RESULTS["policy_trade"] = {
        "wall_s": wall,
        "rate": 0.08,
        "stall_fraction": {p: rows[p].stall_fraction for p in rows},
        "detection_latency_mean": drain.recovery.detection_latency_mean,
    }
