"""Benchmark: the fault-tolerance sweep — failure rate x transition policy.

Regenerates the §3.4-style amortization table for failures-as-regime-changes
and asserts its qualitative shape: a fault-free run is lossless, low
failure rates amortize the transition stall for every policy, and at high
rates the work-preserving policies (drain, checkpoint) blow the stall
budget while immediate stays cheap by abandoning in-flight frames.
"""

from __future__ import annotations

from repro.experiments.faults_exp import run_faults


def test_faults_sweep_regeneration(benchmark):
    result = benchmark.pedantic(run_faults, rounds=1, iterations=1)
    print()
    print(result.render())

    healthy = [r for r in result.rows if r.rate == 0.0]
    assert all(r.completed == r.emitted for r in healthy)
    assert all(r.recovery.availability == 1.0 for r in healthy)
    assert all(r.amortization_holds for r in healthy)

    low = [r for r in result.rows if r.rate == 0.01]
    assert all(r.recovery.crashes >= 1 for r in low)
    assert all(r.amortization_holds for r in low)

    # The §3.4 argument breaks for work-preserving policies at high rate.
    assert result.breaking_rate("drain") == 0.08
    assert result.breaking_rate("checkpoint") == 0.08
    assert result.breaking_rate("immediate") is None


def test_policy_trade_under_failures(benchmark):
    result = benchmark.pedantic(
        lambda: run_faults(rates=(0.08,)), rounds=1, iterations=1
    )
    rows = {r.policy: r for r in result.rows}
    drain, imm, chk = rows["drain"], rows["immediate"], rows["checkpoint"]

    # Immediate buys its short stall with abandoned frames...
    assert imm.stall_fraction < drain.stall_fraction
    assert imm.recovery.frames_lost_transition > 0
    assert drain.recovery.frames_lost_transition == 0
    # ...while checkpoint converts transition losses into replays.
    assert chk.recovery.frames_lost_transition == 0
    assert chk.recovery.frames_replayed > 0

    # Every policy pays the same detection latency (same plan, same
    # detector); what differs is what the transition does afterwards.
    assert drain.recovery.detection_latency_mean > 0
