"""Performance trajectory: append bench summaries, flag regressions.

Every CI bench run produces ``BENCH_*.json`` envelopes (see
:mod:`_schema`).  Those are snapshots — useful alone, but silent about
*drift*.  This CLI strings them into a ``BENCH_trajectory.json`` history
and turns the history into a gate::

    python benchmarks/trajectory.py append     # record current BENCH_*.json
    python benchmarks/trajectory.py check      # fail on >10% regression

``append`` collects every envelope in the benchmarks directory into one
trajectory entry (host info + flattened numeric metrics per bench) and
appends it to ``BENCH_trajectory.json``.  ``check`` compares the newest
entry against the most recent *comparable* previous entry — same
platform/CPU fingerprint and same quick-mode flag, so a laptop run never
gates against a CI runner — and exits non-zero when a lower-is-better
metric (wall seconds, latency, round trips) grew by more than the
tolerance, or a higher-is-better metric (speedup, reduction ratio)
shrank by more than it.

Only steady metrics gate: keys matching :data:`GATED_PATTERNS` below.
Raw wall-clock numbers from ladder rungs the host could not parallelize
(``asserted: false``) are recorded but never compared.
"""

from __future__ import annotations

import argparse
import json
import sys
from datetime import datetime, timezone
from pathlib import Path

from _schema import SCHEMA_VERSION, host_info

__all__ = [
    "append_entry",
    "check_regression",
    "collect_benches",
    "flatten_metrics",
    "load_trajectory",
]

TRAJECTORY_NAME = "BENCH_trajectory.json"

#: (substring, direction) — a metric participates in the regression gate
#: iff its flattened dotted path contains one of these substrings.
#: ``"lower"`` fails when the value grows, ``"higher"`` when it shrinks.
GATED_PATTERNS: tuple[tuple[str, str], ...] = (
    ("wall_s", "lower"),
    ("latency", "lower"),
    ("roundtrips_per_frame", "lower"),
    ("reduction_ratio", "higher"),
    ("speedup", "higher"),
)


def _direction(path: str) -> str | None:
    for needle, direction in GATED_PATTERNS:
        if needle in path:
            return direction
    return None


def flatten_metrics(results: dict, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a results payload as ``dotted.path -> value``.

    Booleans and non-numeric leaves are dropped; subtrees whose own
    ``asserted`` flag is false (an unasserted ladder rung) are dropped
    wholesale — their timings are honest but not comparable.
    """
    flat: dict[str, float] = {}
    if results.get("asserted") is False:
        return flat
    for key, value in results.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(flatten_metrics(value, prefix=f"{path}."))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            flat[path] = float(value)
    return flat


def collect_benches(bench_dir: Path) -> dict[str, dict]:
    """Read every ``BENCH_*.json`` envelope into trajectory bench records."""
    benches: dict[str, dict] = {}
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        if path.name == TRAJECTORY_NAME:
            continue
        try:
            envelope = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        name = envelope.get("bench")
        results = envelope.get("results")
        if not name or not isinstance(results, dict):
            continue
        benches[name] = {
            "quick": bool(results.get("quick", False)),
            "skipped": results.get("skipped")
            or (results.get("substrates") or {}).get("skipped"),
            "metrics": flatten_metrics(results),
        }
    return benches


def load_trajectory(path: Path) -> list[dict]:
    if not path.exists():
        return []
    data = json.loads(path.read_text())
    entries = data.get("entries", []) if isinstance(data, dict) else data
    return entries if isinstance(entries, list) else []


def append_entry(bench_dir: Path, out_path: Path | None = None) -> dict:
    """Record the current envelopes as one trajectory entry; returns it."""
    out_path = out_path or bench_dir / TRAJECTORY_NAME
    benches = collect_benches(bench_dir)
    if not benches:
        raise SystemExit(f"no BENCH_*.json envelopes found in {bench_dir}")
    entry = {
        "schema_version": SCHEMA_VERSION,
        "recorded_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "host": host_info(),
        "benches": benches,
    }
    entries = load_trajectory(out_path)
    entries.append(entry)
    out_path.write_text(
        json.dumps({"schema_version": SCHEMA_VERSION, "entries": entries},
                   indent=2) + "\n"
    )
    return entry


def _fingerprint(entry: dict) -> tuple:
    host = entry.get("host", {})
    return (host.get("platform"), host.get("cpus"))


def check_regression(
    path: Path, tolerance: float = 0.10
) -> list[str]:
    """Regression messages for the newest entry vs its comparable past.

    Empty list means pass.  An entry with no comparable predecessor
    passes vacuously (first run on a host seeds the baseline).
    """
    entries = load_trajectory(path)
    if not entries:
        raise SystemExit(f"no trajectory entries in {path}; run append first")
    current = entries[-1]
    fingerprint = _fingerprint(current)
    failures: list[str] = []
    for name, bench in current["benches"].items():
        previous = None
        for old in reversed(entries[:-1]):
            old_bench = old.get("benches", {}).get(name)
            if (
                old_bench is not None
                and _fingerprint(old) == fingerprint
                and old_bench.get("quick") == bench.get("quick")
            ):
                previous = old_bench
                break
        if previous is None:
            continue
        for metric, value in bench["metrics"].items():
            direction = _direction(metric)
            if direction is None or metric not in previous["metrics"]:
                continue
            base = previous["metrics"][metric]
            if base <= 0:
                continue
            if direction == "lower" and value > base * (1 + tolerance):
                failures.append(
                    f"{name}:{metric} regressed {value:.4g} vs {base:.4g} "
                    f"(+{(value / base - 1) * 100:.1f}% > "
                    f"{tolerance * 100:.0f}%)"
                )
            elif direction == "higher" and value < base * (1 - tolerance):
                failures.append(
                    f"{name}:{metric} regressed {value:.4g} vs {base:.4g} "
                    f"(-{(1 - value / base) * 100:.1f}% > "
                    f"{tolerance * 100:.0f}%)"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("command", choices=("append", "check"))
    parser.add_argument(
        "--dir", type=Path, default=Path(__file__).parent,
        help="directory holding the BENCH_*.json envelopes",
    )
    parser.add_argument(
        "--trajectory", type=Path, default=None,
        help=f"trajectory file (default <dir>/{TRAJECTORY_NAME})",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.10,
        help="relative regression tolerance for check (default 0.10)",
    )
    args = parser.parse_args(argv)
    trajectory = args.trajectory or args.dir / TRAJECTORY_NAME
    if args.command == "append":
        entry = append_entry(args.dir, trajectory)
        names = ", ".join(sorted(entry["benches"]))
        print(f"appended entry #{len(load_trajectory(trajectory))} "
              f"({names}) to {trajectory}")
        return 0
    failures = check_regression(trajectory, tolerance=args.tolerance)
    if failures:
        for line in failures:
            print(f"REGRESSION {line}", file=sys.stderr)
        return 1
    print("trajectory check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
